//! # kgtosa — Task-Oriented GNN Training on Large Knowledge Graphs
//!
//! A from-scratch Rust reproduction of **KG-TOSA** (Abdallah, Afandi,
//! Kalnis, Mansour — ICDE 2024): automating the extraction of
//! *task-oriented subgraphs* (TOSGs) so heterogeneous GNNs train faster,
//! smaller and at least as accurately on large knowledge graphs.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`kg`] | `kgtosa-kg` | KG data model, CSR adjacency, quality statistics |
//! | [`rdf`] | `kgtosa-rdf` | hexastore indices, SPARQL subset, paginated endpoint |
//! | [`tensor`] | `kgtosa-tensor` | dense matrices, Adam, initializers |
//! | [`nn`] | `kgtosa-nn` | RGCN layer, losses, metrics — explicit backprop |
//! | [`sampler`] | `kgtosa-sampler` | URW/BRW walks, PPR, IBS, ego sampling |
//! | [`core`] | `kgtosa-core` | **the paper**: graph pattern, Algorithms 1-3, pipeline |
//! | [`models`] | `kgtosa-models` | the six evaluated HGNN methods |
//! | [`datagen`] | `kgtosa-datagen` | the Table I/II benchmark, scaled |
//!
//! ## Quickstart
//!
//! ```
//! use kgtosa::core::{extract_sparql, ExtractionTask, GraphPattern};
//! use kgtosa::kg::KnowledgeGraph;
//! use kgtosa::rdf::{FetchConfig, RdfStore};
//!
//! // A toy KG: papers cite papers, authors write papers.
//! let mut g = KnowledgeGraph::new();
//! g.add_triple_terms("p1", "Paper", "cites", "p2", "Paper");
//! g.add_triple_terms("a1", "Author", "writes", "p1", "Paper");
//!
//! // Extract the task-oriented subgraph for a Paper-targeted task.
//! let targets = g.nodes_of_class(g.find_class("Paper").unwrap());
//! let task = ExtractionTask::node_classification("demo", "Paper", targets);
//! let store = RdfStore::new(&g);
//! let tosg = extract_sparql(&store, &task, &GraphPattern::D1H1,
//!                           &FetchConfig::default()).unwrap();
//! assert!(tosg.subgraph.kg.num_triples() <= g.num_triples());
//! ```

pub use kgtosa_core as core;
pub use kgtosa_datagen as datagen;
pub use kgtosa_kg as kg;
pub use kgtosa_models as models;
pub use kgtosa_nn as nn;
pub use kgtosa_rdf as rdf;
pub use kgtosa_sampler as sampler;
pub use kgtosa_tensor as tensor;
