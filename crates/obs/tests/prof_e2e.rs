//! End-to-end profiler contract: real nested spans → JSONL trace →
//! self-time attribution that telescopes to the root wall, an HTML run
//! report, and a collapsed-stack → SVG flamegraph round trip.
//!
//! Single `#[test]` on purpose: the trace sink is a process-global
//! one-shot, so the whole pipeline is exercised in one pass.

use std::time::Duration;

use kgtosa_obs::{
    render_flame_svg, render_html_report, self_times, span, summarize_jsonl, write_folded,
};

fn busy(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

#[test]
fn trace_to_report_and_flamegraph() {
    let dir = std::env::temp_dir().join(format!("kgtosa-prof-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("run.jsonl");
    kgtosa_obs::init_trace_to(trace_path.to_str().unwrap()).expect("init trace");

    // A realistic shape: one root covering extraction + training phases,
    // with leaf work under each. Sleeps are the "work" so wall times are
    // large relative to span bookkeeping noise.
    {
        let _root = span("pipeline");
        {
            let _e = span("extract");
            {
                let _f = span("fetch");
                busy(30);
            }
            {
                let _s = span("sample");
                busy(20);
            }
            busy(10); // self time of extract
        }
        {
            let _t = span("train");
            for _ in 0..3 {
                let _ep = span("epoch");
                busy(10);
            }
        }
        busy(10); // self time of pipeline
    }

    kgtosa_obs::shutdown();
    let trace = std::fs::read_to_string(&trace_path).expect("read trace");
    assert!(trace.contains("\"span\""), "trace has span events:\n{trace}");

    // Self-times must telescope: summing self_s over every span recovers
    // the wall time of the roots, exactly up to f64 rounding.
    let aggs = summarize_jsonl(&trace).expect("summarize trace");
    assert!(aggs.len() >= 5, "expected the nested spans, got {aggs:?}");
    let rows = self_times(&aggs);
    let self_sum: f64 = rows.iter().map(|r| r.self_s).sum();
    let root_wall: f64 = rows.iter().filter(|r| r.parent.is_none()).map(|r| r.total_s).sum();
    assert!(root_wall > 0.1, "root wall should cover the sleeps: {root_wall}");
    let drift = (self_sum - root_wall).abs();
    assert!(
        drift <= root_wall * 0.01 + 1e-6,
        "self-times must sum to root wall: sum={self_sum} root={root_wall} drift={drift}"
    );
    // Leaf spans keep all their time; parents keep only what children
    // did not cover.
    let extract = rows.iter().find(|r| r.name.ends_with("extract")).unwrap();
    assert!(extract.self_s < extract.total_s, "extract has children: {extract:?}");

    // HTML report: self-contained, carries the headline sections.
    let html = render_html_report(&trace, "prof_e2e").expect("render report");
    for needle in [
        "<!doctype html>",
        "Cost breakdown",
        "Hot spans",
        "Span tree",
        "<svg",
    ] {
        assert!(html.contains(needle), "report missing {needle:?}");
    }
    assert!(!html.contains("<script"), "report must be script-free");

    // Collapsed stacks (from the registry aggregates, sampler off) round-
    // trip through the SVG renderer.
    let folded_path = dir.join("run.folded");
    write_folded(folded_path.to_str().unwrap()).expect("write folded");
    let folded = std::fs::read_to_string(&folded_path).expect("read folded");
    assert!(!folded.trim().is_empty(), "folded output is empty");
    for line in folded.lines() {
        let (_stack, count) = line.rsplit_once(' ').expect("`frames count` shape");
        count.parse::<u64>().expect("count is integral");
    }
    let svg = render_flame_svg(&folded, "prof_e2e").expect("render svg");
    assert!(svg.starts_with("<svg") || svg.starts_with("<?xml"), "svg header");
    assert!(svg.contains("pipeline"), "flamegraph shows the root frame");

    std::fs::remove_dir_all(&dir).ok();
}
