//! Embedded metrics HTTP server (std-only, no framework).
//!
//! `serve_metrics("127.0.0.1:9464")` binds a listener and answers on a
//! background thread:
//!
//! * `GET /metrics`  — the live registry in Prometheus text exposition
//!   format ([`crate::render_prometheus`]),
//! * `GET /spans`    — per-span aggregates as JSON,
//! * `GET /progress` — progress tasks with rate and ETA as JSON,
//! * `GET /prof`     — profiler state: self-time attribution over the
//!   live registry plus accumulated sampler stacks,
//! * `GET /contexts` — every live telemetry context's scoped span tree,
//!   counters, gauges, and recorded SLO violations as JSON,
//! * `GET /healthz`  — readiness JSON: `200` while no live context has an
//!   SLO violation, `503` otherwise,
//! * `GET /`         — a plain-text index of the routes.
//!
//! The server exists for *introspection of long runs* (scrape cadence:
//! seconds), so one accept loop handling requests sequentially is the
//! right weight — there is no worker pool to interfere with the
//! deterministic kernels being measured.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

use crate::httpd::{builtin_route, read_request, write_response, HttpResponse, MAX_HEAD_BYTES};
use crate::registry;

static BOUND: OnceLock<SocketAddr> = OnceLock::new();

/// Where the metrics server is listening, if it was started.
pub fn serve_addr() -> Option<SocketAddr> {
    BOUND.get().copied()
}

/// Binds `addr` (e.g. `127.0.0.1:9464`; port `0` picks a free port) and
/// serves metrics on a detached background thread. Returns the bound
/// address. Idempotent: a second call returns the first server's address.
pub fn serve_metrics(addr: &str) -> std::io::Result<SocketAddr> {
    if let Some(existing) = serve_addr() {
        return Ok(existing);
    }
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let _ = BOUND.set(local);
    register_core_metrics();
    std::thread::Builder::new()
        .name("kgtosa-metrics".into())
        .spawn(move || {
            for stream in listener.incoming().flatten() {
                let _ = handle_connection(stream);
            }
        })?;
    Ok(local)
}

/// Starts the server from `KGTOSA_METRICS_ADDR` when set and non-empty.
/// Bind failures are reported on stderr, not fatal: a long job should not
/// die because its observer port is taken.
pub fn init_serve_from_env() -> Option<SocketAddr> {
    match std::env::var("KGTOSA_METRICS_ADDR") {
        Ok(addr) if !addr.is_empty() => match serve_metrics(&addr) {
            Ok(local) => {
                crate::info!("metrics server listening on http://{local}/metrics");
                Some(local)
            }
            Err(e) => {
                eprintln!("kgtosa-obs: cannot bind KGTOSA_METRICS_ADDR={addr}: {e}");
                None
            }
        },
        _ => None,
    }
}

/// Pre-registers the pipeline's cross-crate instruments so `/metrics`
/// exports them from the first scrape, not only after their first
/// update: the cache counters and byte gauge (kgtosa-cache), the
/// parallel-runtime queue depth (kgtosa-par), and the derived cache hit
/// ratio. Registration is idempotent, so the owning crates' own lookups
/// return these same instruments.
pub fn register_core_metrics() {
    for name in ["cache.hits", "cache.misses", "cache.stale", "cache.corrupt", "cache.evictions"] {
        let _ = registry::counter(name);
    }
    let _ = registry::gauge("cache.bytes");
    let _ = registry::gauge("par.queue_depth");
    let _ = registry::gauge_f64("cache.hit_ratio");
    let _ = registry::counter("slo.violations");
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let req = match read_request(&mut stream, MAX_HEAD_BYTES, 8192) {
        Ok(req) => req,
        Err(_) => return Ok(()),
    };
    let response = if req.method != "GET" {
        HttpResponse::text(405, "method not allowed\n")
    } else if let Some(builtin) = builtin_route(&req) {
        builtin
    } else if req.path == "/" {
        HttpResponse::text(
            200,
            "kgtosa metrics server\nroutes: /metrics /spans /progress /prof /contexts /healthz\n",
        )
    } else {
        HttpResponse::text(404, "not found\n")
    };
    write_response(&mut stream, &response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::io::{Read, Write};

    fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        let content_type = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Type: "))
            .unwrap_or("")
            .to_string();
        (status, content_type, body.to_string())
    }

    #[test]
    fn serves_metrics_spans_progress() {
        crate::counter("test.serve.hits").add(2);
        let p = crate::progress_task("test.serve.task", Some(5));
        p.advance(1);
        crate::span("test_serve_span").finish();
        let addr = serve_metrics("127.0.0.1:0").expect("bind loopback");
        // Idempotent: second start returns the same address.
        assert_eq!(serve_metrics("127.0.0.1:0").unwrap(), addr);
        assert_eq!(serve_addr(), Some(addr));

        let (status, ctype, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(ctype.contains("version=0.0.4"), "{ctype}");
        assert!(body.contains("kgtosa_test_serve_hits_total 2"), "{body}");
        assert!(body.contains("# TYPE kgtosa_test_serve_hits_total counter"));

        let (status, ctype, body) = http_get(addr, "/spans");
        assert_eq!(status, 200);
        assert!(ctype.contains("application/json"));
        let json = Json::parse(&body).expect("spans is valid JSON");
        assert!(json.get("spans").unwrap().get("test_serve_span").is_some());

        let (status, _, body) = http_get(addr, "/progress");
        assert_eq!(status, 200);
        let json = Json::parse(&body).expect("progress is valid JSON");
        let tasks = match json.get("tasks") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected tasks array, got {other:?}"),
        };
        assert!(tasks
            .iter()
            .any(|t| t.get("name").and_then(Json::as_str) == Some("test.serve.task")));

        let (status, _, _) = http_get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _, body) = http_get(addr, "/");
        assert_eq!(status, 200);
        assert!(body.contains("/metrics"));
        assert!(body.contains("/prof"));

        // Core cross-crate instruments are pre-registered on bind, so the
        // very first scrape already exports them.
        let (_, _, body) = http_get(addr, "/metrics");
        for family in [
            "kgtosa_cache_hits_total",
            "kgtosa_cache_misses_total",
            "kgtosa_cache_bytes",
            "kgtosa_par_queue_depth",
            "kgtosa_cache_hit_ratio",
        ] {
            assert!(body.contains(family), "missing {family} in first scrape:\n{body}");
        }

        let (status, ctype, body) = http_get(addr, "/prof");
        assert_eq!(status, 200);
        assert!(ctype.contains("application/json"));
        let json = Json::parse(&body).expect("prof is valid JSON");
        assert!(json.get("enabled").is_some());
        let spans = match json.get("spans") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected spans array, got {other:?}"),
        };
        assert!(spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("test_serve_span")));
        assert!(spans.iter().all(|s| s.get("self_s").is_some()));
    }

    #[test]
    fn serves_contexts_and_healthz() {
        let addr = serve_metrics("127.0.0.1:0").expect("bind loopback");
        let ctx = crate::TelemetryContext::new("serve.test.request");
        {
            let _g = ctx.enter();
            crate::counter("serve.test.lookups").add(4);
            crate::span("serve_test.work").finish();
        }
        ctx.finish();

        let (status, ctype, body) = http_get(addr, "/contexts");
        assert_eq!(status, 200);
        assert!(ctype.contains("application/json"));
        let json = Json::parse(&body).expect("contexts is valid JSON");
        let items = match json.get("contexts") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected contexts array, got {other:?}"),
        };
        let mine = items
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some("serve.test.request"))
            .expect("live context listed");
        assert_eq!(
            mine.get("counters")
                .and_then(|c| c.get("serve.test.lookups"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
        assert!(mine
            .get("spans")
            .and_then(|s| s.get("serve_test.work"))
            .is_some());

        // Healthy with no SLO rules installed.
        let (status, ctype, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(ctype.contains("application/json"));
        let json = Json::parse(&body).expect("healthz is valid JSON");
        assert_eq!(json.get("ready").and_then(Json::as_bool), Some(true));
        assert!(json.get("active_contexts").and_then(Json::as_f64).unwrap() >= 1.0);

        // Arm a rule only this test's context can break (every other
        // context keeps the probe counter at 0 and so satisfies `<=0`),
        // sweep, and readiness must flip to 503 while the context lives.
        {
            let _g = ctx.enter();
            crate::counter("serve.test.healthz.probe").inc();
        }
        let rules = crate::parse_slo_spec("counter:serve.test.healthz.probe<=0").unwrap();
        crate::install_slo_rules(rules);
        assert!(crate::evaluate_slo_now() >= 1, "probe rule must fire");
        let (status, _, body) = http_get(addr, "/healthz");
        assert_eq!(status, 503, "violating context flips readiness: {body}");
        let json = Json::parse(&body).unwrap();
        assert_eq!(json.get("ready").and_then(Json::as_bool), Some(false));
        assert!(json.get("slo_violations").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(!ctx.violations().is_empty());

        // Disarm so sibling tests see a rule-free process again.
        crate::install_slo_rules(Vec::new());
        let (status, _, _) = http_get(addr, "/healthz");
        assert_eq!(status, 200);
    }
}
