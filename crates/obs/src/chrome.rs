//! Chrome-trace / Perfetto JSON exporter.
//!
//! Armed with `--chrome-out PATH` (or `KGTOSA_CHROME_TRACE`), every
//! completed span is buffered as a timed interval and rendered at
//! shutdown into the Chrome trace-event JSON format (`chrome://tracing`,
//! <https://ui.perfetto.dev>): `pid` = telemetry context id (0 for
//! uncontexted work), `tid` = a small stable per-OS-thread id, spans as
//! paired `B`/`E` duration events, plus `C` counter tracks sampled from
//! the global registry by the heartbeat thread and once at shutdown.
//!
//! The renderer re-establishes exact telescoping before emitting: span
//! intervals come from independent `Instant` reads, so float rounding can
//! make a child end a hair after its parent. A per-track clamp pass
//! (children bounded by the enclosing interval, zero-width spans nudged
//! open) guarantees the emitted stream honours `B`/`E` stack discipline —
//! which [`validate_chrome_trace`] (and the CI gate built on it) then
//! verifies from the serialized text alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Hard caps so a runaway run cannot hold unbounded buffers; beyond them
/// events are counted as dropped, not silently lost.
const MAX_SPAN_EVENTS: usize = 1 << 18;
const MAX_COUNTER_EVENTS: usize = 1 << 16;

/// Minimum rendered span width in microseconds: a zero-width interval
/// would serialize `B` and `E` at the same timestamp and render invisibly.
const MIN_SPAN_US: f64 = 1e-3;

#[derive(Debug, Clone)]
struct SpanEv {
    pid: u64,
    tid: u64,
    name: String,
    t0_us: f64,
    t1_us: f64,
}

#[derive(Debug, Clone)]
struct CounterEv {
    name: String,
    t_us: f64,
    value: f64,
}

#[derive(Debug, Clone)]
struct ProcEv {
    pid: u64,
    name: String,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);

#[derive(Default)]
struct Buffers {
    spans: Vec<SpanEv>,
    counters: Vec<CounterEv>,
    procs: Vec<ProcEv>,
}

fn buffers() -> MutexGuard<'static, Buffers> {
    static BUF: OnceLock<Mutex<Buffers>> = OnceLock::new();
    BUF.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Time zero for the exported trace, pinned when the exporter is armed.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Arms the exporter. Spans completing from here on are buffered; spans
/// already open keep their real end time and clamp their start to the
/// arming instant.
pub fn arm_chrome() {
    epoch();
    ARMED.store(true, Ordering::Relaxed);
}

#[inline]
pub(crate) fn chrome_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn to_us(s: f64) -> f64 {
    s * 1e6
}

/// Buffers one completed span interval. Called from the span layer only
/// when [`chrome_armed`] — one relaxed load on the disarmed path.
pub(crate) fn on_span_complete(pid: u64, tid: u64, path: &str, start: Instant, wall_s: f64) {
    let t0 = start.checked_duration_since(epoch()).map_or(0.0, |d| d.as_secs_f64());
    let mut buf = buffers();
    if buf.spans.len() >= MAX_SPAN_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    buf.spans.push(SpanEv {
        pid,
        tid,
        name: path.to_string(),
        t0_us: to_us(t0),
        t1_us: to_us(t0 + wall_s.max(0.0)),
    });
}

/// Names the `pid` track after the context (Chrome `process_name`
/// metadata). No-op while disarmed.
pub(crate) fn on_context_created(id: u64, name: &str) {
    if !chrome_armed() {
        return;
    }
    let mut buf = buffers();
    if !buf.procs.iter().any(|p| p.pid == id) {
        buf.procs.push(ProcEv { pid: id, name: name.to_string() });
    }
}

/// Samples every registry counter and gauge into `C` counter-track
/// events. The heartbeat thread calls this each tick; shutdown takes a
/// final sample so short runs still get at least one point per track.
pub fn sample_counter_tracks() {
    if !chrome_armed() {
        return;
    }
    let t_us = to_us(epoch().elapsed().as_secs_f64());
    let mut rows: Vec<(String, f64)> = crate::registry::counter_values()
        .into_iter()
        .map(|(k, v)| (k, v as f64))
        .collect();
    rows.extend(crate::registry::gauge_values().into_iter().map(|(k, v)| (k, v as f64)));
    rows.extend(crate::registry::gauge_f64_values());
    let mut buf = buffers();
    for (name, value) in rows {
        if buf.counters.len() >= MAX_COUNTER_EVENTS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            break;
        }
        if value.is_finite() {
            buf.counters.push(CounterEv { name, t_us, value });
        }
    }
}

/// Per-track clamp pass: sorts spans into opening order and bounds each
/// interval by its enclosing one, so the emitted `B`/`E` stream nests
/// exactly (rounding can otherwise let a child outlive its parent by
/// nanoseconds).
fn clamp_track(spans: &mut [SpanEv]) {
    spans.sort_by(|a, b| {
        a.t0_us
            .total_cmp(&b.t0_us)
            .then(b.t1_us.total_cmp(&a.t1_us))
    });
    let mut open: Vec<f64> = Vec::new();
    for s in spans.iter_mut() {
        while open.last().is_some_and(|&end| s.t0_us >= end) {
            open.pop();
        }
        if let Some(&end) = open.last() {
            s.t1_us = s.t1_us.min(end);
        }
        if s.t1_us <= s.t0_us {
            let ceiling = open.last().copied().unwrap_or(f64::INFINITY);
            s.t1_us = (s.t0_us + MIN_SPAN_US).min(ceiling).max(s.t0_us);
        }
        open.push(s.t1_us);
    }
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

/// Renders the buffered events as a Chrome trace-event JSON document.
pub fn render_chrome_trace() -> String {
    let (mut spans, counters, procs) = {
        let buf = buffers();
        (buf.spans.clone(), buf.counters.clone(), buf.procs.clone())
    };

    let mut events: Vec<Json> = Vec::new();
    // Process metadata first: name each context's pid track, plus the
    // catch-all track for uncontexted work.
    let mut named: Vec<ProcEv> = vec![ProcEv { pid: 0, name: "global".into() }];
    named.extend(procs);
    for p in &named {
        events.push(Json::Obj(vec![
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), num(p.pid as f64)),
            ("tid".into(), num(0.0)),
            ("name".into(), Json::Str("process_name".into())),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(p.name.clone()))]),
            ),
        ]));
    }

    // Clamp per (pid, tid) track, then serialize as B/E pairs in a strict
    // total order: ts, E-before-B on ties, outermost B first (longest
    // duration), innermost E first (shortest duration), buffer index as
    // the final mirrored tie-break.
    spans.sort_by_key(|s| (s.pid, s.tid));
    let mut i = 0;
    while i < spans.len() {
        let j = (i..spans.len())
            .find(|&k| (spans[k].pid, spans[k].tid) != (spans[i].pid, spans[i].tid))
            .unwrap_or(spans.len());
        clamp_track(&mut spans[i..j]);
        i = j;
    }
    // (ts, class, dur_key, idx_key): class E=0 < B=1; B opens longest
    // first (-dur), E closes shortest first (+dur); mirrored index keys
    // keep equal-duration pairs properly nested.
    let mut keyed: Vec<(f64, u8, f64, i64, Json)> = Vec::with_capacity(spans.len() * 2);
    for (idx, s) in spans.iter().enumerate() {
        let dur = s.t1_us - s.t0_us;
        keyed.push((
            s.t0_us,
            1,
            -dur,
            idx as i64,
            Json::Obj(vec![
                ("ph".into(), Json::Str("B".into())),
                ("pid".into(), num(s.pid as f64)),
                ("tid".into(), num(s.tid as f64)),
                ("ts".into(), num(s.t0_us)),
                ("name".into(), Json::Str(s.name.clone())),
            ]),
        ));
        keyed.push((
            s.t1_us,
            0,
            dur,
            -(idx as i64),
            Json::Obj(vec![
                ("ph".into(), Json::Str("E".into())),
                ("pid".into(), num(s.pid as f64)),
                ("tid".into(), num(s.tid as f64)),
                ("ts".into(), num(s.t1_us)),
                ("name".into(), Json::Str(s.name.clone())),
            ]),
        ));
    }
    keyed.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(a.1.cmp(&b.1))
            .then(a.2.total_cmp(&b.2))
            .then(a.3.cmp(&b.3))
    });
    events.extend(keyed.into_iter().map(|(_, _, _, _, ev)| ev));

    let mut counters = counters;
    counters.sort_by(|a, b| a.t_us.total_cmp(&b.t_us).then(a.name.cmp(&b.name)));
    for c in counters {
        events.push(Json::Obj(vec![
            ("ph".into(), Json::Str("C".into())),
            ("pid".into(), num(0.0)),
            ("tid".into(), num(0.0)),
            ("ts".into(), num(c.t_us)),
            ("name".into(), Json::Str(c.name.clone())),
            (
                "args".into(),
                Json::Obj(vec![("value".into(), num(c.value))]),
            ),
        ]));
    }

    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("dropped".into(), num(DROPPED.load(Ordering::Relaxed) as f64)),
    ])
    .to_string()
}

/// Final counter sample + render + write. Called once at CLI shutdown.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    sample_counter_tracks();
    std::fs::write(path, render_chrome_trace())
}

/// Shape statistics proven by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Completed spans (`B` events; `E`s are checked to pair off exactly).
    pub span_events: usize,
    pub counter_events: usize,
    /// Distinct `pid` tracks carrying span events.
    pub pids: usize,
    /// Deepest `B` nesting across all tracks.
    pub max_depth: usize,
}

fn field_f64(ev: &Json, key: &str, i: usize) -> Result<f64, String> {
    ev.get(key)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("event {i}: missing or non-finite {key:?}"))
}

/// Structural validation of a serialized Chrome trace: JSON parses, every
/// event has a known phase and its required fields, and per `(pid, tid)`
/// track the `B`/`E` stream honours stack discipline — monotone
/// timestamps, each `E` closing the innermost open `B` of the same name,
/// and every track balanced at end of stream. This is what
/// `kgtosa trace-validate` and the CI artifact gate run.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("missing traceEvents array".into()),
    };
    let mut stacks: std::collections::HashMap<(u64, u64), (Vec<String>, f64)> =
        std::collections::HashMap::new();
    let mut stats = ChromeTraceStats {
        span_events: 0,
        counter_events: 0,
        pids: 0,
        max_depth: 0,
    };
    let mut pids = std::collections::HashSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        match ph {
            "M" => {
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: metadata without name"))?;
            }
            "C" => {
                field_f64(ev, "pid", i)?;
                field_f64(ev, "ts", i)?;
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: counter without name"))?;
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: counter without args.value"))?;
                stats.counter_events += 1;
            }
            "B" | "E" => {
                let pid = field_f64(ev, "pid", i)? as u64;
                let tid = field_f64(ev, "tid", i)? as u64;
                let ts = field_f64(ev, "ts", i)?;
                let (stack, last_ts) = stacks.entry((pid, tid)).or_insert((Vec::new(), f64::MIN));
                if ts < *last_ts {
                    return Err(format!(
                        "event {i}: ts {ts} goes backwards on track ({pid},{tid})"
                    ));
                }
                *last_ts = ts;
                if ph == "B" {
                    let name = ev
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("event {i}: B without name"))?;
                    stack.push(name.to_string());
                    stats.max_depth = stats.max_depth.max(stack.len());
                    stats.span_events += 1;
                    pids.insert(pid);
                } else {
                    let open = stack
                        .pop()
                        .ok_or_else(|| format!("event {i}: E with no open span on ({pid},{tid})"))?;
                    if let Some(name) = ev.get("name").and_then(Json::as_str) {
                        if name != open {
                            return Err(format!(
                                "event {i}: E({name:?}) closes B({open:?}) on ({pid},{tid})"
                            ));
                        }
                    }
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for ((pid, tid), (stack, _)) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unbalanced track ({pid},{tid}): {open:?} never closed"));
        }
    }
    stats.pids = pids.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_restores_telescoping_and_nudges_zero_width() {
        let mut track = vec![
            SpanEv { pid: 1, tid: 1, name: "parent".into(), t0_us: 0.0, t1_us: 100.0 },
            // Rounding let the child outlive the parent by a hair.
            SpanEv { pid: 1, tid: 1, name: "child".into(), t0_us: 50.0, t1_us: 100.1 },
            SpanEv { pid: 1, tid: 1, name: "instant".into(), t0_us: 60.0, t1_us: 60.0 },
        ];
        clamp_track(&mut track);
        let child = track.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child.t1_us, 100.0, "child clamped to parent end");
        let instant = track.iter().find(|s| s.name == "instant").unwrap();
        assert!(instant.t1_us > instant.t0_us, "zero-width span nudged open");
        assert!(instant.t1_us <= 100.0, "nudge stays inside the parent");
    }

    #[test]
    fn rendered_trace_validates_with_real_spans() {
        arm_chrome();
        let ctx = crate::TelemetryContext::new("chrome.test.req");
        {
            let _g = ctx.enter();
            let _outer = crate::span("chrome_test.outer");
            {
                let _inner = crate::span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        crate::counter("chrome.test.counter").add(3);
        sample_counter_tracks();

        let text = render_chrome_trace();
        let stats = validate_chrome_trace(&text).expect("rendered trace must validate");
        assert!(stats.span_events >= 2, "both spans present: {stats:?}");
        assert!(stats.counter_events >= 1, "counter track sampled: {stats:?}");
        assert!(stats.max_depth >= 2, "nesting preserved: {stats:?}");
        assert!(
            text.contains("chrome.test.req"),
            "context name appears as process metadata"
        );

        // Telescoping: the inner span's interval sits inside the outer's.
        let doc = Json::parse(&text).unwrap();
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(e)) => e,
            _ => unreachable!(),
        };
        let interval = |name: &str| -> (f64, f64) {
            let ts = |ph: &str| {
                events
                    .iter()
                    .find(|e| {
                        e.get("ph").and_then(Json::as_str) == Some(ph)
                            && e.get("name").and_then(Json::as_str) == Some(name)
                    })
                    .and_then(|e| e.get("ts"))
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("missing {ph} for {name}"))
            };
            (ts("B"), ts("E"))
        };
        let (ob, oe) = interval("chrome_test.outer");
        let (ib, ie) = interval("chrome_test.outer.inner");
        assert!(ob <= ib && ie <= oe, "inner [{ib},{ie}] outside outer [{ob},{oe}]");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"foo\": 1}").is_err());
        // E without a matching B.
        let crossed = r#"{"traceEvents":[
            {"ph":"E","pid":1,"tid":1,"ts":5,"name":"x"}
        ]}"#;
        assert!(validate_chrome_trace(crossed).is_err());
        // Unbalanced B.
        let open = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"ts":5,"name":"x"}
        ]}"#;
        assert!(validate_chrome_trace(open).is_err());
        // Mismatched close name.
        let wrong = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"ts":1,"name":"a"},
            {"ph":"E","pid":1,"tid":1,"ts":2,"name":"b"}
        ]}"#;
        assert!(validate_chrome_trace(wrong).is_err());
        // Backwards time on one track.
        let back = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"ts":5,"name":"a"},
            {"ph":"E","pid":1,"tid":1,"ts":4,"name":"a"}
        ]}"#;
        assert!(validate_chrome_trace(back).is_err());
        // Minimal valid document.
        let ok = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"req"}},
            {"ph":"B","pid":1,"tid":1,"ts":1,"name":"a"},
            {"ph":"C","pid":0,"tid":0,"ts":2,"name":"n","args":{"value":3}},
            {"ph":"E","pid":1,"tid":1,"ts":3,"name":"a"}
        ]}"#;
        let stats = validate_chrome_trace(ok).unwrap();
        assert_eq!(stats.span_events, 1);
        assert_eq!(stats.counter_events, 1);
        assert_eq!(stats.pids, 1);
        assert_eq!(stats.max_depth, 1);
    }
}
