//! kgtosa-prof: cost attribution on top of the span machinery.
//!
//! Two layers, both std-only:
//!
//! * **Self-time attribution** — [`self_times`] turns per-span aggregates
//!   (from the live registry or a parsed trace) into a tree where every
//!   span carries its *self* time: wall time minus the wall time of its
//!   direct children. Summed over a tree, self times telescope back to
//!   the root's wall time, which is what makes them a valid cost
//!   breakdown (the paper's Table IV decomposition, but computed instead
//!   of transcribed).
//! * **Sampling profiler** — [`enable_prof`] arms a timer thread that
//!   snapshots every instrumented thread's live span stack at
//!   `KGTOSA_PROF_HZ` (default 97 Hz, deliberately co-prime with common
//!   periodic work). Samples accumulate as collapsed stacks, giving long
//!   leaf spans interior attribution over time even when no child span
//!   ever opens. When profiling is off, the span hot path pays a single
//!   relaxed atomic load — the stack mirror and sampler cost nothing.
//!
//! The collapsed-stack output ([`write_folded`] / [`samples_folded`]) is
//! the `stack;stack;stack count` format consumed by every flamegraph
//! tool, including the dependency-free renderer in [`crate::flame`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::json::Json;
use crate::registry;
use crate::summary::SpanAgg;

static PROF_ON: AtomicBool = AtomicBool::new(false);
static SAMPLER_STARTED: AtomicBool = AtomicBool::new(false);
static SAMPLER_STOP: AtomicBool = AtomicBool::new(false);
/// Sampler ticks completed (one tick snapshots every live thread).
static TICKS: AtomicU64 = AtomicU64::new(0);
/// Active sampling rate in milli-Hz (0 = sampler not running).
static MILLI_HZ: AtomicU64 = AtomicU64::new(0);

/// Whether stack mirroring / sampling is armed. The only cost the span
/// path pays when this is false.
pub fn prof_enabled() -> bool {
    PROF_ON.load(Ordering::Relaxed)
}

/// One thread's mirrored span stack, shared with the sampler thread.
/// Entries are full dotted paths, outermost first (same invariant as the
/// thread-local span stack).
struct ThreadStack {
    frames: Mutex<Vec<String>>,
}

fn thread_registry() -> &'static Mutex<Vec<Weak<ThreadStack>>> {
    static REG: OnceLock<Mutex<Vec<Weak<ThreadStack>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

fn samples() -> &'static Mutex<HashMap<String, u64>> {
    static SAMPLES: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    SAMPLES.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    static MY_STACK: RefCell<Option<Arc<ThreadStack>>> = const { RefCell::new(None) };
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Mirrors a span push into this thread's shared stack (no-op unless
/// profiling is on). Called by [`crate::span`] after the thread-local
/// push.
pub(crate) fn on_span_push(path: &str) {
    if !prof_enabled() {
        return;
    }
    let _ = MY_STACK.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        let stack = slot.get_or_insert_with(|| {
            let stack = Arc::new(ThreadStack { frames: Mutex::new(Vec::new()) });
            lock(thread_registry()).push(Arc::downgrade(&stack));
            stack
        });
        lock(&stack.frames).push(path.to_string());
    });
}

/// Mirrors a span pop: truncates to `depth - 1` entries, matching the
/// thread-local stack's leak-tolerant pop.
pub(crate) fn on_span_pop(depth: usize) {
    if !prof_enabled() {
        return;
    }
    let _ = MY_STACK.try_with(|cell| {
        if let Some(stack) = cell.borrow().as_ref() {
            let mut frames = lock(&stack.frames);
            let keep = depth.saturating_sub(1).min(frames.len());
            frames.truncate(keep);
        }
    });
}

/// Collapses a live stack (full dotted paths, outermost first) into a
/// `frame;frame;frame` string of *relative* frame names. A nested path
/// always extends its parent's, so the relative name is the suffix past
/// the parent path plus the joining dot; entries that do not extend
/// their predecessor (cannot happen via `span()`, but tolerated) keep
/// their full path.
pub fn fold_stack(frames: &[String]) -> String {
    let mut out = String::new();
    let mut prev: Option<&str> = None;
    for frame in frames {
        if !out.is_empty() {
            out.push(';');
        }
        let rel = prev
            .and_then(|p| frame.strip_prefix(p))
            .and_then(|s| s.strip_prefix('.'))
            .unwrap_or(frame);
        // ';' is the folded-format separator; a span name containing one
        // would corrupt the line.
        for c in rel.chars() {
            out.push(if c == ';' { ':' } else { c });
        }
        prev = Some(frame.as_str());
    }
    out
}

fn sample_once() {
    TICKS.fetch_add(1, Ordering::Relaxed);
    let stacks: Vec<Arc<ThreadStack>> = {
        let mut reg = lock(thread_registry());
        reg.retain(|w| w.strong_count() > 0);
        reg.iter().filter_map(Weak::upgrade).collect()
    };
    for stack in stacks {
        let folded = {
            let frames = lock(&stack.frames);
            if frames.is_empty() {
                continue;
            }
            fold_stack(&frames)
        };
        *lock(samples()).entry(folded).or_insert(0) += 1;
    }
}

/// Arms stack mirroring and, when `hz > 0`, starts the sampler thread.
/// Idempotent; the first caller's rate wins.
pub fn enable_prof(hz: f64) {
    PROF_ON.store(true, Ordering::Relaxed);
    if hz <= 0.0 || SAMPLER_STARTED.swap(true, Ordering::SeqCst) {
        return;
    }
    MILLI_HZ.store((hz * 1000.0).round() as u64, Ordering::Relaxed);
    let period = std::time::Duration::from_secs_f64(1.0 / hz);
    let _ = std::thread::Builder::new()
        .name("kgtosa-prof".into())
        .spawn(move || loop {
            if SAMPLER_STOP.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(period);
            sample_once();
        });
}

/// Default sampling rate (Hz) when `KGTOSA_PROF_HZ` is unset. 97 is
/// prime, so the tick never phase-locks with second- or
/// millisecond-aligned periodic work.
pub const DEFAULT_PROF_HZ: f64 = 97.0;

/// Reads `KGTOSA_PROF_HZ` (default [`DEFAULT_PROF_HZ`]; `0` disables the
/// sampler but keeps self-time attribution) and arms the profiler.
pub fn enable_prof_from_env() {
    let hz = std::env::var("KGTOSA_PROF_HZ")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|hz| hz.is_finite() && *hz >= 0.0)
        .unwrap_or(DEFAULT_PROF_HZ);
    enable_prof(hz);
}

/// Signals the sampler thread to exit (called by [`crate::shutdown`]).
pub(crate) fn stop_sampler() {
    SAMPLER_STOP.store(true, Ordering::Relaxed);
}

/// Sampler ticks completed so far.
pub fn sample_ticks() -> u64 {
    TICKS.load(Ordering::Relaxed)
}

/// Accumulated samples as `(collapsed stack, count)`, sorted by stack
/// for stable output.
pub fn samples_folded() -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> =
        lock(samples()).iter().map(|(k, v)| (k.clone(), *v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Clears accumulated samples and tick count (tests).
pub fn reset_prof_samples() {
    lock(samples()).clear();
    TICKS.store(0, Ordering::Relaxed);
}

/// One span's position in the attribution tree.
#[derive(Debug, Clone)]
pub struct SelfTime {
    /// Full dotted path as recorded.
    pub name: String,
    /// Index into the result of the direct parent, when one was recorded.
    pub parent: Option<usize>,
    /// Nesting depth under its recorded root (0 = root).
    pub depth: usize,
    /// Cumulative wall time (the span and everything under it).
    pub total_s: f64,
    /// Wall time attributed to the span itself: total minus direct
    /// children, clamped at zero (clock noise can make children sum past
    /// their parent by nanoseconds).
    pub self_s: f64,
    /// Allocations attributed to the span itself (total minus children,
    /// clamped — the allocator counters are process-global, so this is
    /// attribution by containment, not by thread).
    pub self_allocs: u64,
    pub count: u64,
    pub peak_max_bytes: usize,
}

/// Computes self-time attribution over per-span aggregates. The parent
/// of a span is the *longest* other span name that prefixes it at a dot
/// boundary — exactly how `span()` builds nested paths. Input order is
/// preserved in the output; the result is a forest when several roots
/// were recorded (e.g. spans from spawned threads).
pub fn self_times(aggs: &[SpanAgg]) -> Vec<SelfTime> {
    let mut rows: Vec<SelfTime> = aggs
        .iter()
        .map(|a| SelfTime {
            name: a.name.clone(),
            parent: None,
            depth: 0,
            total_s: a.total_s,
            self_s: a.total_s,
            self_allocs: a.allocs,
            count: a.count,
            peak_max_bytes: a.peak_max_bytes,
        })
        .collect();
    for (i, row) in rows.iter_mut().enumerate() {
        let mut best: Option<usize> = None;
        for (j, cand) in aggs.iter().enumerate() {
            if i == j || row.name.len() <= cand.name.len() {
                continue;
            }
            let is_parent = row
                .name
                .strip_prefix(&cand.name)
                .is_some_and(|rest| rest.starts_with('.'));
            if is_parent && best.is_none_or(|b| aggs[b].name.len() < cand.name.len()) {
                best = Some(j);
            }
        }
        row.parent = best;
    }
    // Depth by walking parent links (paths are acyclic by construction).
    for i in 0..rows.len() {
        let mut depth = 0;
        let mut at = rows[i].parent;
        while let Some(p) = at {
            depth += 1;
            at = rows[p].parent;
        }
        rows[i].depth = depth;
    }
    // Subtract each span's total from its direct parent's self time.
    for i in 0..rows.len() {
        if let Some(p) = rows[i].parent {
            rows[p].self_s = (rows[p].self_s - rows[i].total_s).max(0.0);
            rows[p].self_allocs = rows[p].self_allocs.saturating_sub(aggs[i].allocs);
        }
    }
    rows
}

/// Self-time-weighted collapsed stacks from span aggregates: one line
/// per span whose self time rounds to at least one millisecond, weighted
/// in milliseconds. This is the samplerless fallback for flamegraphs —
/// structurally exact, but with no interior detail inside leaf spans.
pub fn folded_from_aggs(aggs: &[SpanAgg]) -> Vec<(String, u64)> {
    let rows = self_times(aggs);
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let weight = (row.self_s * 1000.0).round() as u64;
        if weight == 0 {
            continue;
        }
        // Reconstruct the frame chain root→self as full paths, then fold.
        let mut chain_idx = vec![i];
        let mut at = row.parent;
        while let Some(p) = at {
            chain_idx.push(p);
            at = rows[p].parent;
        }
        chain_idx.reverse();
        let chain: Vec<String> = chain_idx.iter().map(|&j| rows[j].name.clone()).collect();
        out.push((fold_stack(&chain), weight));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Registry span aggregates in [`SpanAgg`] form (bridging the live
/// registry into the attribution/report pipeline).
pub fn registry_aggs() -> Vec<SpanAgg> {
    registry::span_stats()
        .into_iter()
        .map(|(name, s)| SpanAgg {
            name,
            count: s.count,
            total_s: s.total_s,
            mean_s: if s.count == 0 { 0.0 } else { s.total_s / s.count as f64 },
            p95_s: s.max_s,
            max_s: s.max_s,
            peak_max_bytes: s.peak_delta_max,
            allocs: s.allocs,
        })
        .collect()
}

/// Serializes folded lines in the collapsed-stack text format.
pub fn render_folded(rows: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, count) in rows {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// Writes the profiler's collapsed stacks to `path`: the sampler's
/// stacks when any tick landed, otherwise the self-time-derived fallback
/// from the live registry (so `--prof-out` is never empty after an
/// instrumented run).
pub fn write_folded(path: &str) -> std::io::Result<()> {
    let samples = samples_folded();
    let rows = if samples.is_empty() { folded_from_aggs(&registry_aggs()) } else { samples };
    std::fs::write(path, render_folded(&rows))
}

/// The `/prof` payload: sampler state plus live self-time attribution.
pub fn prof_json() -> Json {
    let rows = self_times(&registry_aggs());
    let spans: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("name".into(), Json::Str(r.name.clone())),
                ("depth".into(), Json::Num(r.depth as f64)),
                ("total_s".into(), Json::Num(r.total_s)),
                ("self_s".into(), Json::Num(r.self_s)),
                ("self_allocs".into(), Json::Num(r.self_allocs as f64)),
                ("count".into(), Json::Num(r.count as f64)),
            ])
        })
        .collect();
    let samples: Vec<Json> = samples_folded()
        .into_iter()
        .map(|(stack, count)| {
            Json::Obj(vec![
                ("stack".into(), Json::Str(stack)),
                ("count".into(), Json::Num(count as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("enabled".into(), Json::Bool(prof_enabled())),
        (
            "hz".into(),
            Json::Num(MILLI_HZ.load(Ordering::Relaxed) as f64 / 1000.0),
        ),
        ("ticks".into(), Json::Num(sample_ticks() as f64)),
        ("spans".into(), Json::Arr(spans)),
        ("samples".into(), Json::Arr(samples)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(name: &str, total_s: f64, allocs: u64) -> SpanAgg {
        SpanAgg {
            name: name.to_string(),
            count: 1,
            total_s,
            mean_s: total_s,
            p95_s: total_s,
            max_s: total_s,
            peak_max_bytes: 0,
            allocs,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let aggs = vec![
            agg("root", 10.0, 1000),
            agg("root.a", 6.0, 600),
            agg("root.a.x", 2.0, 100),
            agg("root.b", 3.0, 50),
        ];
        let rows = self_times(&aggs);
        let by = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        // root self = 10 - (6 + 3); root.a self = 6 - 2; leaves keep all.
        assert!((by("root").self_s - 1.0).abs() < 1e-12);
        assert!((by("root.a").self_s - 4.0).abs() < 1e-12);
        assert!((by("root.a.x").self_s - 2.0).abs() < 1e-12);
        assert!((by("root.b").self_s - 3.0).abs() < 1e-12);
        assert_eq!(by("root").depth, 0);
        assert_eq!(by("root.a.x").depth, 2);
        assert_eq!(by("root").self_allocs, 1000 - 600 - 50);
    }

    #[test]
    fn self_times_telescope_to_root_wall() {
        let aggs = vec![
            agg("r", 5.0, 0),
            agg("r.a", 2.0, 0),
            agg("r.a.i", 0.5, 0),
            agg("r.b", 1.5, 0),
        ];
        let rows = self_times(&aggs);
        let sum: f64 = rows.iter().map(|r| r.self_s).sum();
        assert!((sum - 5.0).abs() < 1e-9, "self times must sum to the root wall: {sum}");
    }

    #[test]
    fn dotted_names_are_not_confused_with_nesting() {
        // "extract.brw" is a single span name; it only nests under
        // "extract" if a span literally named "extract" was recorded.
        let aggs = vec![agg("extract.brw", 2.0, 0), agg("pipeline", 1.0, 0)];
        let rows = self_times(&aggs);
        assert!(rows.iter().all(|r| r.parent.is_none()));
        // With the parent recorded, the longest prefix wins.
        let aggs = vec![
            agg("p", 9.0, 0),
            agg("p.q", 5.0, 0),
            agg("p.q.r", 1.0, 0),
        ];
        let rows = self_times(&aggs);
        assert_eq!(rows[2].parent, Some(1), "longest prefix, not just any");
    }

    #[test]
    fn clamps_noise_below_zero() {
        // Children's totals can exceed the parent's by clock noise.
        let aggs = vec![agg("n", 1.0, 10), agg("n.c", 1.0000001, 20)];
        let rows = self_times(&aggs);
        assert_eq!(rows[0].self_s, 0.0);
        assert_eq!(rows[0].self_allocs, 0);
    }

    #[test]
    fn fold_relative_frames() {
        let frames = vec![
            "pipeline".to_string(),
            "pipeline.extract.brw".to_string(),
            "pipeline.extract.brw.walk".to_string(),
        ];
        assert_eq!(fold_stack(&frames), "pipeline;extract.brw;walk");
        assert_eq!(fold_stack(&["solo".to_string()]), "solo");
        // A frame that doesn't extend its parent keeps its full path.
        let odd = vec!["a".to_string(), "b.c".to_string()];
        assert_eq!(fold_stack(&odd), "a;b.c");
    }

    #[test]
    fn folded_from_aggs_weights_by_self_ms() {
        let aggs = vec![agg("w", 0.010, 0), agg("w.in", 0.004, 0), agg("tiny", 0.0001, 0)];
        let rows = folded_from_aggs(&aggs);
        // "tiny" rounds to 0 ms and is dropped.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("w".to_string(), 6));
        assert_eq!(rows[1], ("w;in".to_string(), 4));
        let text = render_folded(&rows);
        assert_eq!(text, "w 6\nw;in 4\n");
    }

    #[test]
    fn sampler_sees_live_span_stacks() {
        enable_prof(0.0); // mirror on, no background thread
        reset_prof_samples();
        {
            let _outer = crate::span("prof_test.outer");
            let _inner = crate::span("work");
            sample_once();
            sample_once();
        }
        sample_once(); // stack empty again: no new sample
        let samples = samples_folded();
        let hit = samples
            .iter()
            .find(|(stack, _)| stack == "prof_test.outer;work")
            .expect("sampled the nested stack");
        assert_eq!(hit.1, 2);
        assert_eq!(sample_ticks(), 3);
    }
}
