//! Declarative SLO rules and the watchdog that enforces them.
//!
//! ## Rule grammar
//!
//! A spec (`--slo` or `KGTOSA_SLO`) is `rule(';'rule)*`, each rule a
//! *requirement* of the form `signal op number`:
//!
//! ```text
//! latency_s<120; retries<=10; giveups==0; completeness_milli>=950; cache_hit_ratio>0.5
//! ```
//!
//! Operators: `<` `<=` `>` `>=` `==` `!=`. Signals are evaluated
//! **per telemetry context**, against that context's scoped deltas:
//!
//! | signal | source |
//! |---|---|
//! | `latency_s` | context wall time (frozen by `finish`) |
//! | `retries` / `giveups` | `rdf.retries` / `rdf.giveups` counter deltas |
//! | `completeness_milli` | `extract.quality.completeness_milli` gauge (skipped until written) |
//! | `cache_hit_ratio` | derived from the context's own `cache.*` counter deltas (skipped before the first lookup) |
//! | `counter:NAME` | any counter delta (0 when never bumped) |
//! | `gauge:NAME` | any integer or f64 gauge (skipped until written) |
//!
//! A rule **violates** when its signal is present and the comparison does
//! not hold. Gauge-backed signals that were never written are skipped
//! rather than treated as zero, so a rule like `completeness_milli>=950`
//! cannot fire on a context that never ran an extraction.
//!
//! ## Watchdog
//!
//! [`start_slo_watchdog`] spawns a background thread that sweeps every
//! live context each interval (`KGTOSA_SLO_MS`, default 200 ms). New
//! violations are edge-triggered per `(context, rule)`: each emits one
//! structured `slo.violation` trace event, bumps the `slo.violations`
//! counter, and flips `/healthz` to 503 while the offending context
//! lives. `--strict-slo` batch mode turns any violation into exit code 3.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::context::{live_contexts, TelemetryContext};
use crate::json::Json;

/// Default watchdog sweep interval in milliseconds.
pub const DEFAULT_SLO_MS: u64 = 200;

#[derive(Debug, Clone, PartialEq)]
enum Signal {
    LatencyS,
    Retries,
    Giveups,
    CompletenessMilli,
    CacheHitRatio,
    Counter(String),
    Gauge(String),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl Op {
    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Op::Lt => value < threshold,
            Op::Le => value <= threshold,
            Op::Gt => value > threshold,
            Op::Ge => value >= threshold,
            Op::Eq => value == threshold,
            Op::Ne => value != threshold,
        }
    }
}

/// One parsed requirement. `raw` is the normalized rule text, used both
/// for display and as the edge-trigger key.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    raw: String,
    signal: Signal,
    op: Op,
    threshold: f64,
}

impl SloRule {
    pub fn raw(&self) -> &str {
        &self.raw
    }
}

/// A rule that failed for a context, with the observed signal value.
#[derive(Debug, Clone, PartialEq)]
pub struct SloViolation {
    pub rule: String,
    pub value: f64,
}

fn parse_signal(name: &str) -> Result<Signal, String> {
    if let Some(rest) = name.strip_prefix("counter:") {
        if rest.is_empty() {
            return Err("empty counter name".into());
        }
        return Ok(Signal::Counter(rest.to_string()));
    }
    if let Some(rest) = name.strip_prefix("gauge:") {
        if rest.is_empty() {
            return Err("empty gauge name".into());
        }
        return Ok(Signal::Gauge(rest.to_string()));
    }
    match name {
        "latency_s" => Ok(Signal::LatencyS),
        "retries" => Ok(Signal::Retries),
        "giveups" => Ok(Signal::Giveups),
        "completeness_milli" => Ok(Signal::CompletenessMilli),
        "cache_hit_ratio" => Ok(Signal::CacheHitRatio),
        other => Err(format!(
            "unknown signal {other:?} (expected latency_s, retries, giveups, \
             completeness_milli, cache_hit_ratio, counter:NAME, or gauge:NAME)"
        )),
    }
}

/// Parses a full `--slo` / `KGTOSA_SLO` spec into rules. Empty rules
/// (from trailing `;`) are skipped; an empty spec yields no rules.
pub fn parse_slo_spec(spec: &str) -> Result<Vec<SloRule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // Two-character operators first, so `<=` doesn't parse as `<`.
        const OPS: [(&str, Op); 6] = [
            ("<=", Op::Le),
            (">=", Op::Ge),
            ("==", Op::Eq),
            ("!=", Op::Ne),
            ("<", Op::Lt),
            (">", Op::Gt),
        ];
        let (idx, tok, op) = OPS
            .iter()
            .filter_map(|&(tok, op)| part.find(tok).map(|i| (i, tok, op)))
            .min_by_key(|&(i, tok, _)| (i, std::cmp::Reverse(tok.len())))
            .ok_or_else(|| format!("rule {part:?}: no comparison operator"))?;
        let signal = parse_signal(part[..idx].trim())
            .map_err(|e| format!("rule {part:?}: {e}"))?;
        let rhs = part[idx + tok.len()..].trim();
        let threshold: f64 = rhs
            .parse()
            .map_err(|_| format!("rule {part:?}: threshold {rhs:?} is not a number"))?;
        if !threshold.is_finite() {
            return Err(format!("rule {part:?}: threshold must be finite"));
        }
        rules.push(SloRule {
            raw: format!("{}{}{}", part[..idx].trim(), tok, rhs),
            signal,
            op,
            threshold,
        });
    }
    Ok(rules)
}

/// The signal's current value for a context, or `None` when the signal is
/// absent (rule skipped).
fn signal_value(ctx: &TelemetryContext, signal: &Signal) -> Option<f64> {
    match signal {
        Signal::LatencyS => Some(ctx.wall_s()),
        Signal::Retries => Some(ctx.counter_delta("rdf.retries") as f64),
        Signal::Giveups => Some(ctx.counter_delta("rdf.giveups") as f64),
        Signal::CompletenessMilli => ctx
            .gauge_value("extract.quality.completeness_milli")
            .map(|v| v as f64),
        Signal::CacheHitRatio => ctx.cache_hit_ratio(),
        Signal::Counter(name) => Some(ctx.counter_delta(name) as f64),
        Signal::Gauge(name) => ctx
            .gauge_value(name)
            .map(|v| v as f64)
            .or_else(|| ctx.gauge_f64_value(name)),
    }
}

/// Pure evaluation: which rules does this context violate *right now*?
/// No events, no global state — the watchdog and tests share this.
pub fn evaluate_slo_rules(ctx: &TelemetryContext, rules: &[SloRule]) -> Vec<SloViolation> {
    rules
        .iter()
        .filter_map(|rule| {
            let value = signal_value(ctx, &rule.signal)?;
            (!rule.op.holds(value, rule.threshold)).then(|| SloViolation {
                rule: rule.raw.clone(),
                value,
            })
        })
        .collect()
}

fn installed_rules() -> &'static RwLock<Vec<SloRule>> {
    static RULES: OnceLock<RwLock<Vec<SloRule>>> = OnceLock::new();
    RULES.get_or_init(|| RwLock::new(Vec::new()))
}

static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Installs the process-wide rule set (replacing any previous one),
/// pre-registers the `slo.violations` counter, and announces the armed
/// rules with a `slo.armed` trace event.
pub fn install_slo_rules(rules: Vec<SloRule>) {
    crate::counter("slo.violations");
    let raws: Vec<Json> = rules.iter().map(|r| Json::Str(r.raw.clone())).collect();
    crate::emit_event(
        "slo.armed",
        vec![
            ("rules".into(), Json::Num(rules.len() as f64)),
            ("spec".into(), Json::Arr(raws)),
        ],
    );
    *installed_rules()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = rules;
}

/// Number of rules currently installed.
pub fn slo_rules_installed() -> usize {
    installed_rules()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len()
}

/// Total violations recorded since the rules were armed.
pub fn slo_violation_count() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// Sweeps every live context against the installed rules. New violations
/// (edge-triggered per context × rule) each emit a `slo.violation` event
/// and bump the counters; returns how many were new this sweep. The
/// watchdog calls this periodically; batch mode calls it once more after
/// the run context finishes, so even sub-interval runs get a verdict.
pub fn evaluate_slo_now() -> usize {
    let rules = installed_rules()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if rules.is_empty() {
        return 0;
    }
    let mut new = 0;
    for ctx in live_contexts() {
        for v in evaluate_slo_rules(&ctx, &rules) {
            if !ctx.record_violation(&v.rule) {
                continue;
            }
            new += 1;
            VIOLATIONS.fetch_add(1, Ordering::Relaxed);
            crate::counter("slo.violations").inc();
            crate::emit_event(
                "slo.violation",
                vec![
                    ("ctx".into(), Json::Num(ctx.id() as f64)),
                    ("context".into(), Json::Str(ctx.name().to_string())),
                    ("rule".into(), Json::Str(v.rule.clone())),
                    ("value".into(), Json::Num(v.value)),
                ],
            );
            crate::info!(
                "SLO violation: context {} ({}) breaks {} (value {:.6})",
                ctx.id(),
                ctx.name(),
                v.rule,
                v.value
            );
        }
    }
    new
}

/// `/healthz` readiness: true when no *live* context has a recorded
/// violation (and trivially true with no rules installed). A violating
/// context flips readiness until it is dropped, after which the process
/// recovers — batch exit codes use [`slo_violation_count`] instead, which
/// is sticky.
pub fn slo_ready() -> bool {
    if slo_rules_installed() == 0 {
        return true;
    }
    live_contexts().iter().all(|c| c.violations().is_empty())
}

static WATCHDOG_STARTED: AtomicBool = AtomicBool::new(false);
static WATCHDOG_STOP: AtomicBool = AtomicBool::new(false);

fn watchdog_handle() -> &'static Mutex<Option<JoinHandle<()>>> {
    static HANDLE: OnceLock<Mutex<Option<JoinHandle<()>>>> = OnceLock::new();
    HANDLE.get_or_init(|| Mutex::new(None))
}

/// Starts the watchdog thread (idempotent). Sleeps are sliced so
/// [`stop_watchdog`] joins promptly.
pub fn start_slo_watchdog(interval_ms: u64) {
    if WATCHDOG_STARTED.swap(true, Ordering::SeqCst) {
        return;
    }
    let interval_ms = interval_ms.max(10);
    let handle = std::thread::Builder::new()
        .name("kgtosa-slo".into())
        .spawn(move || loop {
            let mut slept = 0;
            while slept < interval_ms {
                if WATCHDOG_STOP.load(Ordering::Relaxed) {
                    return;
                }
                let slice = (interval_ms - slept).min(50);
                std::thread::sleep(Duration::from_millis(slice));
                slept += slice;
            }
            evaluate_slo_now();
        })
        .ok();
    *watchdog_handle()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = handle;
}

/// Watchdog interval from `KGTOSA_SLO_MS`, defaulting to
/// [`DEFAULT_SLO_MS`].
pub fn slo_interval_from_env() -> u64 {
    std::env::var("KGTOSA_SLO_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SLO_MS)
}

/// Stops and joins the watchdog thread. Called by [`crate::shutdown`].
pub fn stop_watchdog() {
    WATCHDOG_STOP.store(true, Ordering::SeqCst);
    let handle = watchdog_handle()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some(h) = handle {
        let _ = h.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_all_operators_and_signals() {
        let rules = parse_slo_spec(
            "latency_s<120; retries<=10; giveups==0; completeness_milli>=950; \
             cache_hit_ratio>0.5; counter:rdf.requests!=0; gauge:par.utilization>=0;",
        )
        .unwrap();
        assert_eq!(rules.len(), 7);
        assert_eq!(rules[0].raw(), "latency_s<120");
        assert_eq!(rules[1].op, Op::Le);
        assert_eq!(rules[2].op, Op::Eq);
        assert_eq!(rules[5].signal, Signal::Counter("rdf.requests".into()));
        assert_eq!(rules[6].signal, Signal::Gauge("par.utilization".into()));
        assert!(parse_slo_spec("").unwrap().is_empty());
        assert!(parse_slo_spec("  ;  ").unwrap().is_empty());
    }

    #[test]
    fn spec_rejects_malformed_rules() {
        assert!(parse_slo_spec("latency_s").is_err(), "no operator");
        assert!(parse_slo_spec("bogus<1").is_err(), "unknown signal");
        assert!(parse_slo_spec("latency_s<abc").is_err(), "non-numeric threshold");
        assert!(parse_slo_spec("counter:<1").is_err(), "empty counter name");
        assert!(parse_slo_spec("latency_s<inf").is_err(), "non-finite threshold");
    }

    #[test]
    fn rules_are_requirements_evaluated_per_context() {
        let ctx = TelemetryContext::new("slo.test.eval");
        {
            let _g = ctx.enter();
            crate::counter("rdf.retries").add(3);
            crate::counter("cache.hits").add(1);
            crate::counter("cache.misses").add(3);
        }
        ctx.finish();

        let rules = parse_slo_spec("retries<=10; giveups==0; cache_hit_ratio>0.5").unwrap();
        let violations = evaluate_slo_rules(&ctx, &rules);
        // retries=3 and giveups=0 satisfy their requirements; hit ratio
        // 0.25 breaks the >0.5 requirement.
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "cache_hit_ratio>0.5");
        assert_eq!(violations[0].value, 0.25);

        let tight = parse_slo_spec("retries<3").unwrap();
        let v = evaluate_slo_rules(&ctx, &tight);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].value, 3.0);
    }

    #[test]
    fn absent_gauge_signals_are_skipped_not_zero() {
        let ctx = TelemetryContext::new("slo.test.absent");
        // Neither completeness nor hit ratio exists on an idle context:
        // requirements on them must not fire.
        let rules =
            parse_slo_spec("completeness_milli>=950; cache_hit_ratio>0.9; gauge:never.set>1")
                .unwrap();
        assert!(evaluate_slo_rules(&ctx, &rules).is_empty());
        // Counters are genuinely zero when untouched, so counter
        // requirements do apply.
        let counter_rule = parse_slo_spec("counter:slo.test.absent.c>0").unwrap();
        let v = evaluate_slo_rules(&ctx, &counter_rule);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].value, 0.0);
    }

    #[test]
    fn latency_rule_uses_frozen_wall_time() {
        let ctx = TelemetryContext::new("slo.test.latency");
        std::thread::sleep(Duration::from_millis(3));
        ctx.finish();
        let strict = parse_slo_spec("latency_s<0.000001").unwrap();
        assert_eq!(evaluate_slo_rules(&ctx, &strict).len(), 1, "3ms run breaks 1µs budget");
        let lenient = parse_slo_spec("latency_s<60").unwrap();
        assert!(evaluate_slo_rules(&ctx, &lenient).is_empty());
    }
}
