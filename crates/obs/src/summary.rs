//! Trace aggregation: turns a JSONL event stream (or the live registry)
//! into per-span tables — the Rust analogue of the paper's Table IV cost
//! rows.

use crate::json::Json;
use crate::registry;

/// Aggregate over all events sharing one span name.
#[derive(Debug, Clone)]
pub struct SpanAgg {
    pub name: String,
    pub count: u64,
    pub total_s: f64,
    pub mean_s: f64,
    pub p95_s: f64,
    pub max_s: f64,
    /// Largest peak-heap value seen (span growth or epoch peak).
    pub peak_max_bytes: usize,
    pub allocs: u64,
}

/// Parses a JSONL trace and aggregates `span` and `train.epoch` events
/// per name. Epoch events aggregate as `train.epoch[<method>]` with the
/// per-epoch wall time as their duration. Blank lines are skipped;
/// malformed lines are an error (the stream is machine-generated) —
/// except on the *final* line, where a parse failure is treated as a
/// crash- or kill-truncated write and the line is dropped, so traces of
/// interrupted runs stay summarizable up to the last complete event.
pub fn summarize_jsonl(text: &str) -> Result<Vec<SpanAgg>, String> {
    struct Acc {
        durations: Vec<f64>,
        peak_max: usize,
        allocs: u64,
    }
    let mut by_name: Vec<(String, Acc)> = Vec::new();
    fn find(by_name: &mut Vec<(String, Acc)>, name: String) -> usize {
        if let Some(i) = by_name.iter().position(|(n, _)| *n == name) {
            i
        } else {
            by_name.push((name, Acc { durations: Vec::new(), peak_max: 0, allocs: 0 }));
            by_name.len() - 1
        }
    }

    let line_count = text.lines().count();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = match Json::parse(line) {
            Ok(event) => event,
            // Tolerate a truncated final line (interrupted mid-write).
            Err(_) if lineno + 1 == line_count => continue,
            Err(e) => return Err(format!("line {}: {e}", lineno + 1)),
        };
        let kind = event
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing 'ev'", lineno + 1))?;
        let num = |key: &str| event.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        match kind {
            "span" => {
                let name = event
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: span without name", lineno + 1))?
                    .to_string();
                let i = find(&mut by_name, name);
                let acc = &mut by_name[i].1;
                acc.durations.push(num("wall_s"));
                acc.peak_max = acc.peak_max.max(num("peak_delta_bytes") as usize);
                acc.allocs += num("allocs") as u64;
            }
            "train.epoch" => {
                let method = event.get("method").and_then(Json::as_str).unwrap_or("?");
                let i = find(&mut by_name, format!("train.epoch[{method}]"));
                let acc = &mut by_name[i].1;
                acc.durations.push(num("epoch_s"));
                acc.peak_max = acc.peak_max.max(num("peak_bytes") as usize);
            }
            _ => {}
        }
    }

    let mut rows: Vec<SpanAgg> = by_name
        .into_iter()
        .map(|(name, mut acc)| {
            acc.durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let count = acc.durations.len() as u64;
            let total: f64 = acc.durations.iter().sum();
            let p95_idx =
                ((0.95 * count as f64).ceil() as usize).clamp(1, count as usize) - 1;
            SpanAgg {
                name,
                count,
                total_s: total,
                mean_s: if count == 0 { 0.0 } else { total / count as f64 },
                p95_s: acc.durations.get(p95_idx).copied().unwrap_or(0.0),
                max_s: acc.durations.last().copied().unwrap_or(0.0),
                peak_max_bytes: acc.peak_max,
                allocs: acc.allocs,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_s
            .partial_cmp(&a.total_s)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(rows)
}

/// Renders the aggregate rows as an aligned text table.
pub fn render_trace_table(rows: &[SpanAgg]) -> String {
    let mut out = String::new();
    let headers = ["span", "count", "total(s)", "mean(s)", "p95(s)", "max(s)", "peak", "allocs"];
    let mut cells: Vec<[String; 8]> = vec![headers.map(str::to_string)];
    for r in rows {
        cells.push([
            r.name.clone(),
            r.count.to_string(),
            format!("{:.4}", r.total_s),
            format!("{:.4}", r.mean_s),
            format!("{:.4}", r.p95_s),
            format!("{:.4}", r.max_s),
            kgtosa_memtrack::format_bytes(r.peak_max_bytes),
            r.allocs.to_string(),
        ]);
    }
    let mut widths = [0usize; 8];
    for row in &cells {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    for (i, row) in cells.iter().enumerate() {
        for (j, (cell, width)) in row.iter().zip(widths).enumerate() {
            if j == 0 {
                out.push_str(&format!("{cell:<width$}"));
            } else {
                out.push_str(&format!("  {cell:>width$}"));
            }
        }
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders the live registry's span aggregates as an indented tree plus
/// a flat list of counters — the human-readable stderr sink.
pub fn render_summary_tree() -> String {
    let stats = registry::span_stats();
    let mut out = String::new();
    if stats.is_empty() {
        return out;
    }
    out.push_str("span summary (wall time · count · max peak growth · allocs)\n");
    for (path, stat) in &stats {
        let depth = path.matches('.').count();
        let label = path.rsplit('.').next().unwrap_or(path);
        out.push_str(&"  ".repeat(depth + 1));
        out.push_str(&format!(
            "{label:<24} {:>9.4}s ×{:<4} peak +{:<10} allocs {}\n",
            stat.total_s,
            stat.count,
            kgtosa_memtrack::format_bytes(stat.peak_delta_max),
            stat.allocs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        r#"{"ev":"log","t":0.0,"msg":"hi"}"#, "\n",
        r#"{"ev":"span","t":0.1,"name":"pipeline.transform","wall_s":0.5,"live_bytes":100,"peak_delta_bytes":2048,"allocs":10}"#, "\n",
        r#"{"ev":"span","t":0.2,"name":"pipeline.transform","wall_s":1.5,"live_bytes":100,"peak_delta_bytes":1024,"allocs":5}"#, "\n",
        "\n",
        r#"{"ev":"train.epoch","t":0.3,"method":"rgcn","epoch":0,"epochs":2,"loss":1.0,"metric":0.5,"elapsed_s":0.2,"epoch_s":0.2,"live_bytes":1,"peak_bytes":4096,"allocs":3}"#, "\n",
        r#"{"ev":"train.epoch","t":0.5,"method":"rgcn","epoch":1,"epochs":2,"loss":0.5,"metric":0.7,"elapsed_s":0.5,"epoch_s":0.3,"live_bytes":1,"peak_bytes":4096,"allocs":3}"#, "\n",
    );

    #[test]
    fn aggregates_spans_and_epochs() {
        let rows = summarize_jsonl(TRACE).unwrap();
        let transform = rows.iter().find(|r| r.name == "pipeline.transform").unwrap();
        assert_eq!(transform.count, 2);
        assert!((transform.total_s - 2.0).abs() < 1e-9);
        assert!((transform.mean_s - 1.0).abs() < 1e-9);
        assert!((transform.max_s - 1.5).abs() < 1e-9);
        assert_eq!(transform.peak_max_bytes, 2048);
        assert_eq!(transform.allocs, 15);

        let epochs = rows.iter().find(|r| r.name == "train.epoch[rgcn]").unwrap();
        assert_eq!(epochs.count, 2);
        assert_eq!(epochs.peak_max_bytes, 4096);
        // Sorted by total time descending: transform (2.0s) first.
        assert_eq!(rows[0].name, "pipeline.transform");
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = summarize_jsonl(TRACE).unwrap();
        let table = render_trace_table(&rows);
        assert!(table.contains("pipeline.transform"));
        assert!(table.contains("train.epoch[rgcn]"));
        assert!(table.lines().count() >= 4); // header + rule + 2 rows
    }

    #[test]
    fn malformed_interior_line_is_an_error() {
        // A broken line with complete events after it is corruption, not
        // truncation: the whole file is rejected.
        let text = format!("{{\"ev\":\"span\"\n{TRACE}");
        assert!(summarize_jsonl(&text).is_err());
        // Well-formed JSON missing the schema's `ev` is an error anywhere.
        assert!(summarize_jsonl("{\"t\":1}").is_err());
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        // Simulate a kill -9 mid-write: the last line is cut off.
        let full = format!("{TRACE}{{\"ev\":\"span\",\"t\":0.9,\"name\":\"pipeline.tra");
        let rows = summarize_jsonl(&full).expect("truncated tail is dropped");
        let transform = rows.iter().find(|r| r.name == "pipeline.transform").unwrap();
        assert_eq!(transform.count, 2, "complete events before the cut survive");
        // A file that is nothing but one truncated line yields no rows.
        assert!(summarize_jsonl("{\"ev\":\"span\"").unwrap().is_empty());
    }

    #[test]
    fn p95_of_single_sample_is_that_sample() {
        let line = r#"{"ev":"span","t":0,"name":"x","wall_s":0.25,"live_bytes":0,"peak_delta_bytes":0,"allocs":0}"#;
        let rows = summarize_jsonl(line).unwrap();
        assert!((rows[0].p95_s - 0.25).abs() < 1e-9);
    }
}
