//! Per-epoch training telemetry.
//!
//! Trainers in `crates/models` call [`Observer::on_epoch`] once per
//! configured epoch with loss, metric, wall time, and heap statistics.
//! The observer handle lives inside `TrainConfig`; with the default
//! ([`Observer::none`]) the hook is a single `Option` check, so the
//! training math is untouched either way.

use std::fmt;
use std::sync::Arc;

use crate::json::Json;
use crate::{registry, sink};

/// One epoch's telemetry, as reported by a trainer.
#[derive(Debug, Clone)]
pub struct EpochEvent<'a> {
    /// Method label, e.g. `"rgcn"`, `"graphsaint"`, `"morse"`.
    pub method: &'a str,
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Total epochs configured for this run.
    pub epochs: usize,
    /// Mean training loss for this epoch.
    pub loss: f64,
    /// The trainer's reported quality metric at this epoch (accuracy or
    /// MRR, matching its `TracePoint`).
    pub metric: f64,
    /// Seconds since training started.
    pub elapsed_s: f64,
    /// Seconds spent in this epoch alone.
    pub epoch_s: f64,
    pub live_bytes: usize,
    pub peak_bytes: usize,
    /// Process-wide allocation count at epoch end.
    pub allocs: u64,
}

/// Receiver for per-epoch telemetry. Implementations must be cheap and
/// must not panic: they run inside the training loop.
pub trait TrainObserver: Send + Sync {
    fn on_epoch(&self, event: &EpochEvent<'_>);
}

/// Cloneable, optional observer handle carried by `TrainConfig`.
#[derive(Clone, Default)]
pub struct Observer(Option<Arc<dyn TrainObserver>>);

impl Observer {
    /// The silent default: `on_epoch` is a no-op.
    pub fn none() -> Self {
        Observer(None)
    }

    pub fn new(observer: impl TrainObserver + 'static) -> Self {
        Observer(Some(Arc::new(observer)))
    }

    pub fn from_arc(observer: Arc<dyn TrainObserver>) -> Self {
        Observer(Some(observer))
    }

    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    pub fn on_epoch(&self, event: &EpochEvent<'_>) {
        if let Some(observer) = &self.0 {
            observer.on_epoch(event);
        }
    }
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() { "Observer(on)" } else { "Observer(off)" })
    }
}

/// The standard sink-backed observer: each epoch becomes a
/// `train.epoch` JSONL event, feeds the `train.epoch_s` histogram and
/// `train.epochs` counter, and prints a progress line (rate-limited to
/// every epoch — trainers here run few, long epochs).
#[derive(Debug, Default)]
pub struct TelemetryObserver;

impl TrainObserver for TelemetryObserver {
    fn on_epoch(&self, ev: &EpochEvent<'_>) {
        registry::histogram("train.epoch_s").observe(ev.epoch_s);
        registry::counter("train.epochs").inc();
        sink::emit_event(
            "train.epoch",
            vec![
                ("method".into(), Json::Str(ev.method.to_string())),
                ("epoch".into(), Json::Num(ev.epoch as f64)),
                ("epochs".into(), Json::Num(ev.epochs as f64)),
                ("loss".into(), Json::Num(ev.loss)),
                ("metric".into(), Json::Num(ev.metric)),
                ("elapsed_s".into(), Json::Num(ev.elapsed_s)),
                ("epoch_s".into(), Json::Num(ev.epoch_s)),
                ("live_bytes".into(), Json::Num(ev.live_bytes as f64)),
                ("peak_bytes".into(), Json::Num(ev.peak_bytes as f64)),
                ("allocs".into(), Json::Num(ev.allocs as f64)),
            ],
        );
        crate::info!(
            "epoch {}/{} [{}] loss {:.4} metric {:.4} ({:.2}s, live {}, peak {})",
            ev.epoch + 1,
            ev.epochs,
            ev.method,
            ev.loss,
            ev.metric,
            ev.epoch_s,
            kgtosa_memtrack::format_bytes(ev.live_bytes),
            kgtosa_memtrack::format_bytes(ev.peak_bytes),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn event<'a>(epoch: usize) -> EpochEvent<'a> {
        EpochEvent {
            method: "test",
            epoch,
            epochs: 3,
            loss: 0.5,
            metric: 0.9,
            elapsed_s: 1.0,
            epoch_s: 0.3,
            live_bytes: 0,
            peak_bytes: 0,
            allocs: 0,
        }
    }

    #[test]
    fn none_observer_is_silent_and_cheap() {
        let obs = Observer::none();
        assert!(!obs.enabled());
        obs.on_epoch(&event(0)); // must not panic
    }

    #[test]
    fn custom_observer_receives_events() {
        struct Count(AtomicUsize);
        impl TrainObserver for Count {
            fn on_epoch(&self, _ev: &EpochEvent<'_>) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Count(AtomicUsize::new(0)));
        let obs = Observer::from_arc(counter.clone() as Arc<dyn TrainObserver>);
        assert!(obs.enabled());
        let cloned = obs.clone();
        for e in 0..3 {
            cloned.on_epoch(&event(e));
        }
        assert_eq!(counter.0.load(Ordering::Relaxed), 3);
    }
}
