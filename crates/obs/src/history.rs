//! Perf-history ledger: an append-only `results/history.jsonl` of
//! compact run summaries, and the `trace-trend` gate that compares a new
//! run against a **rolling window** of past records instead of a single
//! committed baseline.
//!
//! A single-baseline gate (trace-diff, PR 3) answers "did this PR
//! regress vs the one committed snapshot"; the ledger answers "is this
//! metric drifting" and survives baseline rot — the baseline is the
//! per-span *median* over the last K records, so one noisy CI run can
//! neither mask nor manufacture a regression. Noise floors come from
//! [`crate::diff::DiffOptions`], same as trace-diff.

use std::fmt::Write as _;

use crate::diff::{diff_spans, DiffOptions, DiffReport};
use crate::json::Json;
use crate::summary::SpanAgg;

/// One ledger line: where the run came from and what it cost.
#[derive(Debug, Clone)]
pub struct HistoryRecord {
    /// Seconds since the Unix epoch at record time.
    pub t_unix: u64,
    /// Git revision (short hash or `GITHUB_SHA`), `"unknown"` off-repo.
    pub git_rev: String,
    /// Worker threads the run used (0 = unknown / not thread-scoped).
    pub threads: usize,
    /// Per-span cost: `(name, wall_s, self_s, peak_bytes, allocs)`.
    pub spans: Vec<(String, f64, f64, usize, u64)>,
    /// Key counters snapshotted at record time.
    pub counters: Vec<(String, u64)>,
}

impl HistoryRecord {
    /// Builds a record from span aggregates plus self-time attribution.
    pub fn from_aggs(
        t_unix: u64,
        git_rev: &str,
        threads: usize,
        aggs: &[SpanAgg],
        counters: &[(String, u64)],
    ) -> Self {
        let rows = crate::prof::self_times(aggs);
        let spans = rows
            .iter()
            .map(|r| (r.name.clone(), r.total_s, r.self_s, r.peak_max_bytes, r.self_allocs))
            .collect();
        Self {
            t_unix,
            git_rev: git_rev.to_string(),
            threads,
            spans,
            counters: counters.to_vec(),
        }
    }

    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let spans: Vec<(String, Json)> = self
            .spans
            .iter()
            .map(|(name, wall, self_s, peak, allocs)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("wall_s".into(), Json::Num(*wall)),
                        ("self_s".into(), Json::Num(*self_s)),
                        ("peak_bytes".into(), Json::Num(*peak as f64)),
                        ("allocs".into(), Json::Num(*allocs as f64)),
                    ]),
                )
            })
            .collect();
        let counters: Vec<(String, Json)> = self
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
            .collect();
        Json::Obj(vec![
            ("t".into(), Json::Num(self.t_unix as f64)),
            ("rev".into(), Json::Str(self.git_rev.clone())),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("spans".into(), Json::Obj(spans)),
            ("counters".into(), Json::Obj(counters)),
        ])
        .to_string()
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let t_unix = doc.get("t").and_then(Json::as_f64).ok_or("missing `t`")? as u64;
        let git_rev = doc
            .get("rev")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let threads = doc.get("threads").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        let mut spans = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("spans") {
            for (name, s) in fields {
                let f = |k: &str| s.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                spans.push((
                    name.clone(),
                    f("wall_s"),
                    f("self_s"),
                    f("peak_bytes") as usize,
                    f("allocs") as u64,
                ));
            }
        }
        let mut counters = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("counters") {
            for (name, v) in fields {
                counters.push((name.clone(), v.as_f64().unwrap_or(0.0) as u64));
            }
        }
        Ok(Self { t_unix, git_rev, threads, spans, counters })
    }
}

/// Appends one record to the ledger file, creating parent directories on
/// first use. The file is plain JSONL, so `git diff` and `tail` work.
pub fn append_record(path: &str, record: &HistoryRecord) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{}", record.to_json_line())
}

/// Parses ledger text. Malformed interior lines are an error; a
/// truncated final line (a run killed mid-append) is tolerated, matching
/// the trace parser's contract.
pub fn load_history(text: &str) -> Result<Vec<HistoryRecord>, String> {
    let mut out = Vec::new();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    for (i, line) in lines.iter().enumerate() {
        match Json::parse(line).map_err(|e| e.to_string()).and_then(|d| HistoryRecord::from_json(&d)) {
            Ok(rec) => out.push(rec),
            Err(_) if i + 1 == lines.len() => break,
            Err(e) => return Err(format!("history line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values[values.len() / 2]
}

/// Per-span median baseline over the last `window` records. A span is
/// part of the baseline only if it appears in at least half the window
/// (spans that flicker in and out of CI runs would otherwise gate on a
/// single observation).
pub fn baseline_from_window(records: &[HistoryRecord], window: usize) -> Vec<SpanAgg> {
    let window = window.max(1);
    let tail = &records[records.len().saturating_sub(window)..];
    let mut names: Vec<&str> = Vec::new();
    for rec in tail {
        for (name, ..) in &rec.spans {
            if !names.contains(&name.as_str()) {
                names.push(name);
            }
        }
    }
    let mut out = Vec::new();
    for name in names {
        let mut walls = Vec::new();
        let mut peaks = Vec::new();
        let mut allocs = Vec::new();
        for rec in tail {
            if let Some((_, wall, _, peak, alloc)) =
                rec.spans.iter().find(|(n, ..)| n == name)
            {
                walls.push(*wall);
                peaks.push(*peak as f64);
                allocs.push(*alloc as f64);
            }
        }
        if walls.len() * 2 < tail.len() {
            continue;
        }
        let wall = median(&mut walls);
        out.push(SpanAgg {
            name: name.to_string(),
            count: 1,
            total_s: wall,
            mean_s: wall,
            p95_s: wall,
            max_s: wall,
            peak_max_bytes: median(&mut peaks) as usize,
            allocs: median(&mut allocs) as u64,
        });
    }
    out
}

/// What [`compact_history`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    pub kept: usize,
    pub dropped: usize,
}

/// A record's compaction key: runs of the same workload shape share one
/// retention budget. Thread count plus the sorted span-name set is the
/// ledger's notion of "(kernel, threads)" — the kernels bench writes one
/// `<kernel>@<threads>t` span per record, so records from different
/// kernels or thread counts never evict each other.
fn compaction_key(rec: &HistoryRecord) -> (usize, String) {
    let mut names: Vec<&str> = rec.spans.iter().map(|(n, ..)| n.as_str()).collect();
    names.sort_unstable();
    (rec.threads, names.join("\u{1f}"))
}

/// Compacts ledger text to the newest `cap` records per compaction key,
/// preserving record order (`kgtosa trace-trend --compact`). The default
/// cap comfortably exceeds the trend window, so the rolling-window median
/// is computed over exactly the same tail records before and after
/// compaction.
pub fn compact_history(text: &str, cap: usize) -> Result<(String, CompactReport), String> {
    use std::collections::HashMap;
    let cap = cap.max(1);
    let records = load_history(text)?;
    let mut totals: HashMap<(usize, String), usize> = HashMap::new();
    for rec in &records {
        *totals.entry(compaction_key(rec)).or_insert(0) += 1;
    }
    let mut seen: HashMap<(usize, String), usize> = HashMap::new();
    let mut out = String::new();
    let mut report = CompactReport { kept: 0, dropped: 0 };
    for rec in &records {
        let key = compaction_key(rec);
        let idx = {
            let slot = seen.entry(key.clone()).or_insert(0);
            *slot += 1;
            *slot
        };
        // Keep a record iff fewer than `cap` records of its key follow it.
        if totals[&key] - idx < cap {
            out.push_str(&rec.to_json_line());
            out.push('\n');
            report.kept += 1;
        } else {
            report.dropped += 1;
        }
    }
    Ok((out, report))
}

/// The trend gate's result: a standard diff report against the rolling
/// median, plus how much history backed the baseline.
#[derive(Debug, Clone)]
pub struct TrendReport {
    pub diff: DiffReport,
    /// Records that actually contributed to the baseline.
    pub baseline_records: usize,
    /// The window the caller asked for.
    pub window: usize,
}

/// Gates a new run against the rolling-window median of the ledger.
/// An empty ledger yields an empty (passing) report — the first CI run
/// seeds the history rather than failing on it.
pub fn trend_against_history(
    history_text: &str,
    new_aggs: &[SpanAgg],
    window: usize,
    opts: &DiffOptions,
) -> Result<TrendReport, String> {
    let records = load_history(history_text)?;
    let baseline = baseline_from_window(&records, window);
    let diff = diff_spans(&baseline, new_aggs, opts);
    Ok(TrendReport {
        diff,
        baseline_records: records.len().min(window.max(1)),
        window,
    })
}

/// Best-effort git revision for ledger records: `GITHUB_SHA` when CI
/// provides it, else `git rev-parse --short HEAD`, else `"unknown"`.
pub fn current_git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Markdown summary table for a diff/trend report — what CI writes to
/// the GitHub step summary. `title` heads the section.
pub fn render_markdown(report: &DiffReport, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(
        out,
        "| span | old (s) | new (s) | Δ% | old peak | new peak | status |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---|");
    for r in &report.rows {
        let status = if r.regressed.is_empty() {
            "ok".to_string()
        } else {
            format!("**REGRESSED ({})**", r.regressed.join(", "))
        };
        let _ = writeln!(
            out,
            "| `{}` | {:.4} | {:.4} | {:+.1} | {} | {} | {} |",
            r.name,
            r.old_s,
            r.new_s,
            r.delta_pct,
            kgtosa_memtrack::format_bytes(r.old_peak),
            kgtosa_memtrack::format_bytes(r.new_peak),
            status,
        );
    }
    if !report.only_old.is_empty() {
        let _ = writeln!(out, "\nonly in baseline: {}", report.only_old.join(", "));
    }
    if !report.only_new.is_empty() {
        let _ = writeln!(out, "\nonly in new run: {}", report.only_new.join(", "));
    }
    let n = report.regressions();
    let _ = writeln!(
        out,
        "\n{} — threshold {:.0}%",
        if n == 0 { "**no regressions**".to_string() } else { format!("**{n} regression(s)**") },
        report.threshold_pct,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(name: &str, total_s: f64) -> SpanAgg {
        SpanAgg {
            name: name.to_string(),
            count: 1,
            total_s,
            mean_s: total_s,
            p95_s: total_s,
            max_s: total_s,
            peak_max_bytes: 0,
            allocs: 0,
        }
    }

    fn rec(t: u64, wall: f64) -> HistoryRecord {
        HistoryRecord {
            t_unix: t,
            git_rev: format!("rev{t}"),
            threads: 4,
            spans: vec![("kern@4t".to_string(), wall, wall, 1 << 20, 100)],
            counters: vec![("cache.hits".to_string(), t)],
        }
    }

    #[test]
    fn round_trips_through_jsonl() {
        let text = format!("{}\n{}\n", rec(1, 0.5).to_json_line(), rec(2, 0.6).to_json_line());
        let records = load_history(&text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].git_rev, "rev1");
        assert_eq!(records[1].spans[0].1, 0.6);
        assert_eq!(records[0].counters, vec![("cache.hits".to_string(), 1)]);
    }

    #[test]
    fn truncated_final_line_tolerated_interior_error_not() {
        let good = rec(1, 0.5).to_json_line();
        let text = format!("{good}\n{{\"t\": 2, \"rev");
        assert_eq!(load_history(&text).unwrap().len(), 1);
        let text = format!("{{broken\n{good}\n");
        assert!(load_history(&text).is_err());
    }

    #[test]
    fn rolling_median_ignores_one_outlier() {
        // Window of 5 with one 10x-noisy record: median stays at 0.5.
        let records: Vec<HistoryRecord> =
            vec![rec(1, 0.5), rec(2, 0.5), rec(3, 5.0), rec(4, 0.5), rec(5, 0.5)];
        let base = baseline_from_window(&records, 5);
        assert_eq!(base.len(), 1);
        assert!((base[0].total_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_limits_how_far_back_the_baseline_looks() {
        // Old records say 1.0; the recent window says 0.5.
        let records = vec![rec(1, 1.0), rec(2, 1.0), rec(3, 0.5), rec(4, 0.5), rec(5, 0.5)];
        let base = baseline_from_window(&records, 3);
        assert!((base[0].total_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flickering_spans_need_half_the_window() {
        let mut records = vec![rec(1, 0.5), rec(2, 0.5), rec(3, 0.5), rec(4, 0.5)];
        records[3].spans.push(("rare".to_string(), 9.0, 9.0, 0, 0));
        let base = baseline_from_window(&records, 4);
        assert!(base.iter().all(|a| a.name != "rare"), "1-of-4 span must not gate");
    }

    #[test]
    fn trend_gate_flags_regression_vs_median() {
        let text: String =
            (1..=5).map(|t| rec(t, 0.5).to_json_line() + "\n").collect();
        let opts = DiffOptions { threshold_pct: 25.0, ..Default::default() };
        let ok = trend_against_history(&text, &[agg("kern@4t", 0.55)], 5, &opts).unwrap();
        assert_eq!(ok.diff.regressions(), 0);
        let bad = trend_against_history(&text, &[agg("kern@4t", 0.9)], 5, &opts).unwrap();
        assert_eq!(bad.diff.regressions(), 1);
        assert_eq!(bad.baseline_records, 5);
    }

    #[test]
    fn empty_history_passes_and_seeds() {
        let report =
            trend_against_history("", &[agg("kern@4t", 0.5)], 5, &DiffOptions::default()).unwrap();
        assert_eq!(report.diff.regressions(), 0);
        assert_eq!(report.diff.only_new, vec!["kern@4t"]);
    }

    #[test]
    fn compaction_keeps_the_newest_per_key_in_order() {
        // 6 records of one key interleaved with 2 of another.
        let mut other = rec(100, 2.0);
        other.threads = 8;
        let mut lines = String::new();
        for t in 1..=6 {
            lines.push_str(&rec(t, 0.5).to_json_line());
            lines.push('\n');
            if t <= 2 {
                let mut o = other.clone();
                o.t_unix = 100 + t;
                lines.push_str(&o.to_json_line());
                lines.push('\n');
            }
        }
        let (compacted, report) = compact_history(&lines, 3).unwrap();
        assert_eq!(report, CompactReport { kept: 5, dropped: 3 }, "6-of-8 over cap by 3");
        let records = load_history(&compacted).unwrap();
        // The 4t key keeps its newest 3 (t=4,5,6); the 8t key keeps both.
        let fours: Vec<u64> = records.iter().filter(|r| r.threads == 4).map(|r| r.t_unix).collect();
        assert_eq!(fours, vec![4, 5, 6]);
        assert_eq!(records.iter().filter(|r| r.threads == 8).count(), 2);
        // Order preserved: timestamps still ascend within each key.
        let times: Vec<u64> = records.iter().map(|r| r.t_unix).collect();
        assert_eq!(times, vec![101, 102, 4, 5, 6], "interleaving order kept: {times:?}");
    }

    #[test]
    fn compaction_under_cap_is_identity() {
        let text: String = (1..=4).map(|t| rec(t, 0.5).to_json_line() + "\n").collect();
        let (out, report) = compact_history(&text, 64).unwrap();
        assert_eq!(out, text);
        assert_eq!(report, CompactReport { kept: 4, dropped: 0 });
    }

    #[test]
    fn compaction_preserves_rolling_median_semantics() {
        // 20 records; the trend baseline uses the last 5. Compacting to
        // any cap >= the window leaves the same tail, hence the same
        // median baseline.
        let text: String = (1..=20)
            .map(|t| rec(t, if t % 7 == 0 { 5.0 } else { 0.5 }).to_json_line() + "\n")
            .collect();
        let before = baseline_from_window(&load_history(&text).unwrap(), 5);
        let (compacted, report) = compact_history(&text, 8).unwrap();
        assert_eq!(report.kept, 8);
        let after = baseline_from_window(&load_history(&compacted).unwrap(), 5);
        assert_eq!(before.len(), after.len());
        assert_eq!(before[0].total_s.to_bits(), after[0].total_s.to_bits());
    }

    #[test]
    fn markdown_table_renders() {
        let old = vec![agg("a", 1.0)];
        let new = vec![agg("a", 2.0)];
        let report = diff_spans(&old, &new, &DiffOptions::default());
        let md = render_markdown(&report, "kernel trend");
        assert!(md.contains("### kernel trend"));
        assert!(md.contains("| `a` |"));
        assert!(md.contains("REGRESSED (wall)"));
        assert!(md.contains("**1 regression(s)**"));
    }
}
