//! Hierarchical RAII spans.
//!
//! `span("extract.brw")` pushes a segment onto a thread-local stack and
//! starts a timer; when the guard drops (or `finish()` is called) the
//! span's wall time, live heap, peak-heap growth, and allocation count
//! are recorded into the registry and, if a trace sink is installed,
//! emitted as a JSONL `span` event. Nested spans produce dotted paths:
//! a span `"train"` opened inside `"pipeline"` records as
//! `"pipeline.train"` — unless the name already contains the full path
//! context (both styles appear in the codebase; explicit dotted names are
//! kept verbatim and still nest under their parents).

use std::cell::RefCell;
use std::time::Instant;

use crate::prof;
use crate::registry;
use crate::sink;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// What a finished span measured.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Full dotted path, including enclosing spans on this thread.
    pub path: String,
    pub wall_s: f64,
    /// Live heap bytes at span end.
    pub live_bytes: usize,
    /// New peak heap established while the span ran (0 if the process
    /// peak did not move).
    pub peak_delta_bytes: usize,
    /// Heap allocations performed while the span ran (this thread and
    /// any other — the allocator counters are process-global).
    pub allocs: u64,
}

/// RAII guard returned by [`span`]; records on drop.
pub struct SpanGuard {
    path: String,
    depth: usize,
    start: Instant,
    entry_peak: usize,
    entry_allocs: u64,
    done: bool,
}

/// Best-effort snapshot of the spans currently open on this thread,
/// outermost first (each entry is a full dotted path). Returns `None`
/// when the stack is unavailable — the thread-local was destroyed, or a
/// panic unwound from inside span bookkeeping and the `RefCell` is still
/// borrowed. Used by the panic hook; must never itself panic.
pub(crate) fn live_stack() -> Option<Vec<String>> {
    SPAN_STACK
        .try_with(|stack| stack.try_borrow().ok().map(|s| s.clone()))
        .ok()
        .flatten()
}

/// Opens a span named `name` nested under any span already open on this
/// thread.
pub fn span(name: &str) -> SpanGuard {
    let (path, depth) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", stack.last().unwrap(), name)
        };
        stack.push(path.clone());
        (path, stack.len())
    });
    prof::on_span_push(&path);
    let snap = kgtosa_memtrack::snapshot();
    SpanGuard {
        path,
        depth,
        start: Instant::now(),
        entry_peak: snap.peak_bytes,
        entry_allocs: snap.alloc_count,
        done: false,
    }
}

impl SpanGuard {
    /// Consumes the guard and returns the measurements.
    pub fn finish(mut self) -> SpanRecord {
        self.record()
    }

    fn record(&mut self) -> SpanRecord {
        self.done = true;
        let wall_s = self.start.elapsed().as_secs_f64();
        let snap = kgtosa_memtrack::snapshot();
        let record = SpanRecord {
            path: self.path.clone(),
            wall_s,
            live_bytes: snap.live_bytes,
            peak_delta_bytes: snap.peak_bytes.saturating_sub(self.entry_peak),
            allocs: snap.alloc_count.saturating_sub(self.entry_allocs),
        };
        // Pop this span (and anything leaked above it) off the stack.
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.truncate(self.depth.saturating_sub(1));
        });
        prof::on_span_pop(self.depth);
        registry::record_span(&record.path, record.wall_s, record.peak_delta_bytes, record.allocs);
        crate::context::on_span_record(&record.path, self.start, record.wall_s);
        sink::emit_span(&record);
        record
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.done {
            self.record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_dotted_paths() {
        let outer = span("unit_outer");
        let mid_record = {
            let mid = span("mid");
            let inner = span("leaf");
            let inner_record = inner.finish();
            assert_eq!(inner_record.path, "unit_outer.mid.leaf");
            mid.finish()
        };
        assert_eq!(mid_record.path, "unit_outer.mid");
        let outer_record = outer.finish();
        assert_eq!(outer_record.path, "unit_outer");
        // A fresh span after everything closed starts a new root.
        assert_eq!(span("unit_after").finish().path, "unit_after");
    }

    #[test]
    fn drop_records_like_finish() {
        {
            let _g = span("unit_drop.outer");
            let _h = span("child");
        }
        let stats = registry::span_stats();
        let hit = stats
            .iter()
            .find(|(name, _)| name == "unit_drop.outer.child")
            .expect("child span recorded");
        assert_eq!(hit.1.count, 1);
        assert!(stats.iter().any(|(name, _)| name == "unit_drop.outer"));
    }

    #[test]
    fn spans_are_thread_isolated() {
        let _outer = span("unit_thread.outer");
        let other = std::thread::spawn(|| span("solo").finish().path)
            .join()
            .unwrap();
        // The spawned thread has its own stack: no "unit_thread." prefix.
        assert_eq!(other, "solo");
    }

    #[test]
    fn wall_time_is_positive() {
        let g = span("unit_timing");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let record = g.finish();
        assert!(record.wall_s >= 0.002);
    }
}
