//! Output sinks: the JSONL trace stream and the quiet-aware stderr
//! reporter.
//!
//! ## JSONL event schema
//!
//! One JSON object per line; every event carries `ev` (kind) and `t`
//! (seconds since the trace was opened):
//!
//! | `ev` | fields |
//! |---|---|
//! | `span` | `name`, `wall_s`, `live_bytes`, `peak_delta_bytes`, `allocs` |
//! | `train.epoch` | `method`, `epoch`, `epochs`, `loss`, `metric`, `elapsed_s`, `epoch_s`, `live_bytes`, `peak_bytes`, `allocs` |
//! | `log` | `msg` |
//! | `heartbeat` | `active_tasks`, `progress` (periodic snapshot + flush, written by the background flusher so interrupted runs keep a usable trace) |
//! | `extract.quality` | `method`, the Table III quality indicators of the finished extraction |
//! | `metrics` | `counters`, `gauges`, `histograms`, `spans` (final snapshot, written by [`shutdown`]) |
//! | `panic` | `msg`, `location`, `spans` (last event of a crashed run, written by the panic hook) |

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::registry;
use crate::span::SpanRecord;

static QUIET: AtomicBool = AtomicBool::new(false);
static TRACE_ON: AtomicBool = AtomicBool::new(false);

fn trace_writer() -> &'static Mutex<Option<BufWriter<File>>> {
    static WRITER: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    WRITER.get_or_init(|| Mutex::new(None))
}

fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Installs a JSONL trace stream writing to `path` (truncates), and arms
/// the heartbeat flusher (`KGTOSA_HEARTBEAT_MS`, default 1 s) so the
/// stream reaches disk periodically even if the process never exits
/// cleanly.
pub fn init_trace_to(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    trace_epoch(); // pin t=0 at install time
    *trace_writer().lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(BufWriter::new(file));
    TRACE_ON.store(true, Ordering::Release);
    crate::progress::start_heartbeat_from_env();
    Ok(())
}

/// Flushes the trace stream to disk (heartbeat ticks call this).
pub(crate) fn flush_trace() {
    if let Some(w) = trace_writer().lock().unwrap_or_else(std::sync::PoisonError::into_inner).as_mut() {
        let _ = w.flush();
    }
}

/// Installs a trace stream from `KGTOSA_TRACE=<path>` if set and
/// non-empty. Returns whether tracing ended up enabled.
pub fn init_trace_from_env() -> bool {
    if trace_enabled() {
        return true;
    }
    match std::env::var("KGTOSA_TRACE") {
        Ok(path) if !path.is_empty() => match init_trace_to(&path) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("kgtosa-obs: cannot open KGTOSA_TRACE={path}: {e}");
                false
            }
        },
        _ => false,
    }
}

pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Acquire)
}

/// Suppresses stderr progress chatter ([`info_str`] / `info!`). The JSONL
/// stream is unaffected: `--quiet --trace-out x.jsonl` still captures
/// everything.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

fn write_line(json: &Json) {
    let mut line = String::with_capacity(128);
    json.write(&mut line);
    line.push('\n');
    if let Some(w) = trace_writer().lock().unwrap_or_else(std::sync::PoisonError::into_inner).as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

fn stamp(kind: &str, mut fields: Vec<(String, Json)>) -> Json {
    let t = trace_epoch().elapsed().as_secs_f64();
    let mut all = Vec::with_capacity(fields.len() + 3);
    all.push(("ev".to_string(), Json::Str(kind.to_string())));
    all.push(("t".to_string(), Json::Num(t)));
    // Events emitted inside a telemetry context carry its id, so a JSONL
    // trace from concurrent requests can be split per request.
    if let Some(id) = crate::context::current_id() {
        all.push(("ctx".to_string(), Json::Num(id as f64)));
    }
    all.append(&mut fields);
    Json::Obj(all)
}

/// Emits an arbitrary event into the trace stream (no-op when disabled).
pub fn emit_event(kind: &str, fields: Vec<(String, Json)>) {
    if !trace_enabled() {
        return;
    }
    write_line(&stamp(kind, fields));
}

/// Panic-path event write: never blocks and never panics. Uses `try_lock`
/// so a panic raised *while the panicking thread holds the writer lock*
/// degrades to dropping the event instead of deadlocking the hook, and
/// flushes immediately because the process is about to die.
pub(crate) fn emit_event_panic_safe(kind: &str, fields: Vec<(String, Json)>) {
    if !trace_enabled() {
        return;
    }
    let json = stamp(kind, fields);
    let mut line = String::with_capacity(128);
    json.write(&mut line);
    line.push('\n');
    let mut guard = match trace_writer().try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => return,
    };
    if let Some(w) = guard.as_mut() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

pub(crate) fn emit_span(record: &SpanRecord) {
    if !trace_enabled() {
        return;
    }
    emit_event(
        "span",
        vec![
            ("name".into(), Json::Str(record.path.clone())),
            ("wall_s".into(), Json::Num(record.wall_s)),
            ("live_bytes".into(), Json::Num(record.live_bytes as f64)),
            (
                "peak_delta_bytes".into(),
                Json::Num(record.peak_delta_bytes as f64),
            ),
            ("allocs".into(), Json::Num(record.allocs as f64)),
        ],
    );
}

/// Progress chatter: stderr unless quiet, mirrored into the trace as a
/// `log` event. Final results meant for scripts should keep using
/// `println!` — this channel is for humans.
pub fn info_str(msg: &str) {
    if !is_quiet() {
        eprintln!("{msg}");
    }
    emit_event("log", vec![("msg".into(), Json::Str(msg.to_string()))]);
}

/// Writes the final `metrics` snapshot, stops the heartbeat thread, and
/// flushes the stream. Safe to call multiple times or with tracing
/// disabled.
pub fn shutdown() {
    crate::prof::stop_sampler();
    crate::progress::stop_heartbeat();
    crate::slo::stop_watchdog();
    if trace_enabled() {
        let snapshot = registry::metrics_snapshot();
        let fields = match snapshot {
            Json::Obj(fields) => fields,
            other => vec![("metrics".into(), other)],
        };
        write_line(&stamp("metrics", fields));
    }
    if let Some(w) = trace_writer().lock().unwrap_or_else(std::sync::PoisonError::into_inner).as_mut() {
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_round_trips() {
        assert!(!is_quiet());
        set_quiet(true);
        assert!(is_quiet());
        set_quiet(false);
    }

    #[test]
    fn trace_stream_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!("obs-sink-test-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        init_trace_to(&path_str).unwrap();
        crate::span("sink_test.op").finish();
        emit_event("custom", vec![("k".into(), Json::Num(1.0))]);
        shutdown();

        let text = std::fs::read_to_string(&path).unwrap();
        let mut kinds = Vec::new();
        for line in text.lines() {
            let v = Json::parse(line).expect("every line parses");
            kinds.push(v.get("ev").unwrap().as_str().unwrap().to_string());
            assert!(v.get("t").unwrap().as_f64().is_some());
        }
        assert!(kinds.contains(&"span".to_string()));
        assert!(kinds.contains(&"custom".to_string()));
        assert_eq!(kinds.last().map(String::as_str), Some("metrics"));
        let _ = std::fs::remove_file(&path);
    }
}
