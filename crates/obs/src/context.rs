//! Request-scoped telemetry contexts.
//!
//! A [`TelemetryContext`] is a trace identity plus its own span tree and
//! instrument deltas, *layered over* the process-global registry: every
//! counter add, gauge write, histogram observation, and finished span is
//! still recorded globally exactly as before, and additionally into the
//! context current on the recording thread. This is what makes two
//! concurrent extractions attributable — each request enters its own
//! context, and `/contexts`, the SLO watchdog, and the Chrome-trace
//! exporter read the scoped view instead of the commingled globals.
//!
//! ## Propagation
//!
//! The current context lives on a thread-local stack ([`TelemetryContext::enter`]
//! pushes, the returned [`ContextScope`] pops on drop). Causal propagation
//! across threads is explicit and cheap: capture [`TelemetryContext::current`]
//! before spawning, call `enter()` on the worker. The kgtosa-par pool does
//! this at every scope boundary, so all workspace parallelism inherits the
//! spawning context automatically.
//!
//! ## Determinism and overhead contract
//!
//! Contexts observe, they never steer: no numeric code path reads context
//! state, so context-on and context-off runs are bit-identical (asserted
//! by `models/tests/context_differential.rs` and
//! `core/tests/context_isolation.rs`). With no context entered anywhere in
//! the process, the interception hooks cost one relaxed atomic load; with
//! a context active, a short mutex op per instrument update — the same
//! <2% wall budget the profiler holds.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, Weak};
use std::time::Instant;

use crate::json::Json;

/// Sentinel bit pattern meaning "still running" in `end_s_bits`.
const RUNNING: u64 = u64::MAX;

/// Distinct keys captured per instrument map, per context. A runaway
/// request (e.g. one minting a fresh counter name per item) saturates at
/// the cap instead of growing its context without bound.
const MAX_KEYS_PER_MAP: usize = 4096;

/// Live entries kept in the process-wide context registry.
const MAX_CONTEXTS: usize = 1024;

/// Per-context aggregate for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CtxSpanStat {
    pub count: u64,
    pub total_s: f64,
    pub max_s: f64,
}

/// Per-context aggregate for one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CtxHistStat {
    pub count: u64,
    pub sum: f64,
    pub max: f64,
}

#[derive(Debug, Default)]
struct ContextMaps {
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, i64>>,
    /// f64 bit patterns, mirroring [`crate::GaugeF64`]'s storage.
    gauges_f64: Mutex<HashMap<String, u64>>,
    hists: Mutex<HashMap<String, CtxHistStat>>,
    spans: Mutex<HashMap<String, CtxSpanStat>>,
}

#[derive(Debug)]
pub(crate) struct ContextInner {
    id: u64,
    name: String,
    started: Instant,
    /// Elapsed seconds at [`TelemetryContext::finish`] as f64 bits, or
    /// [`RUNNING`].
    end_s_bits: AtomicU64,
    maps: ContextMaps,
    /// SLO rules that have already fired for this context (edge trigger).
    violations: Mutex<Vec<String>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Process-wide count of entered scopes: the single relaxed load that
/// gates every interception hook when contexts are unused.
static ENTERED: AtomicUsize = AtomicUsize::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<Arc<ContextInner>>> = const { RefCell::new(Vec::new()) };
    /// Small stable per-thread id for the Chrome-trace `tid` axis.
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn context_registry() -> &'static RwLock<Vec<Weak<ContextInner>>> {
    static REG: OnceLock<RwLock<Vec<Weak<ContextInner>>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(Vec::new()))
}

/// Whether any thread anywhere currently has an entered context. One
/// relaxed atomic load — the hot-path gate.
#[inline]
pub(crate) fn scoping_active() -> bool {
    ENTERED.load(Ordering::Relaxed) > 0
}

/// The context current on *this* thread, if any. Never panics: the
/// thread-local may be gone during thread teardown or borrowed inside the
/// panic hook, both of which degrade to `None`.
fn current_inner() -> Option<Arc<ContextInner>> {
    if !scoping_active() {
        return None;
    }
    STACK
        .try_with(|s| s.try_borrow().ok().and_then(|v| v.last().cloned()))
        .ok()
        .flatten()
}

/// Whether this thread is inside an entered context.
pub fn context_active() -> bool {
    current_inner().is_some()
}

/// The current context's id (the `ctx` field stamped onto trace events).
pub(crate) fn current_id() -> Option<u64> {
    current_inner().map(|c| c.id)
}

/// Stable small integer id for the calling thread, assigned on first use.
pub(crate) fn current_tid() -> u64 {
    TID.try_with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
    .unwrap_or(0)
}

fn upsert<V: Default>(map: &Mutex<HashMap<String, V>>, name: &str, apply: impl FnOnce(&mut V)) {
    let mut map = lock(map);
    if let Some(v) = map.get_mut(name) {
        apply(v);
    } else if map.len() < MAX_KEYS_PER_MAP {
        let mut v = V::default();
        apply(&mut v);
        map.insert(name.to_string(), v);
    }
}

/// Interception hooks, called by the registry instruments and the span
/// layer. Each is gated on [`scoping_active`] before touching the TLS.
pub(crate) fn on_counter(name: &str, n: u64) {
    if let Some(ctx) = current_inner() {
        upsert(&ctx.maps.counters, name, |v| *v += n);
    }
}

pub(crate) fn on_gauge(name: &str, v: i64) {
    if let Some(ctx) = current_inner() {
        upsert(&ctx.maps.gauges, name, |slot| *slot = v);
    }
}

pub(crate) fn on_gauge_f64(name: &str, v: f64) {
    if let Some(ctx) = current_inner() {
        upsert(&ctx.maps.gauges_f64, name, |slot| *slot = v.to_bits());
    }
}

pub(crate) fn on_histogram(name: &str, v: f64) {
    if let Some(ctx) = current_inner() {
        upsert(&ctx.maps.hists, name, |h| {
            h.count += 1;
            h.sum += v;
            h.max = h.max.max(v);
        });
    }
}

/// Called by [`crate::span::SpanGuard`] when a span completes: records the
/// span into the current context's tree, and hands the timed interval to
/// the Chrome-trace buffer when the exporter is armed.
pub(crate) fn on_span_record(path: &str, start: Instant, wall_s: f64) {
    let ctx = current_inner();
    if let Some(c) = &ctx {
        upsert(&c.maps.spans, path, |s| {
            s.count += 1;
            s.total_s += wall_s;
            s.max_s = s.max_s.max(wall_s);
        });
    }
    if crate::chrome::chrome_armed() {
        let pid = ctx.as_ref().map_or(0, |c| c.id);
        crate::chrome::on_span_complete(pid, current_tid(), path, start, wall_s);
    }
}

/// A request/task-scoped telemetry identity. Cloning shares the context;
/// it stays live (listed on `/contexts`, watched by the SLO watchdog) as
/// long as any handle exists.
#[derive(Debug, Clone)]
pub struct TelemetryContext {
    inner: Arc<ContextInner>,
}

/// RAII guard returned by [`TelemetryContext::enter`]; pops the context
/// off this thread's stack on drop. Not `Send`: the scope must end on the
/// thread that opened it.
#[derive(Debug)]
pub struct ContextScope {
    id: u64,
    _not_send: PhantomData<*const ()>,
}

impl TelemetryContext {
    /// Creates and registers a fresh context. Cheap: one small allocation
    /// plus a registry push; no instrument is touched until it is entered.
    pub fn new(name: &str) -> Self {
        let inner = Arc::new(ContextInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            name: name.to_string(),
            started: Instant::now(),
            end_s_bits: AtomicU64::new(RUNNING),
            maps: ContextMaps::default(),
            violations: Mutex::new(Vec::new()),
        });
        {
            let mut reg = context_registry()
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            reg.retain(|w| w.strong_count() > 0);
            if reg.len() < MAX_CONTEXTS {
                reg.push(Arc::downgrade(&inner));
            }
        }
        crate::chrome::on_context_created(inner.id, name);
        TelemetryContext { inner }
    }

    /// The context current on this thread, if any — what a spawner
    /// captures to propagate causality onto its workers.
    pub fn current() -> Option<Self> {
        current_inner().map(|inner| TelemetryContext { inner })
    }

    /// Makes this context current on the calling thread until the returned
    /// scope drops. Nests: the innermost entered context receives the
    /// attributions.
    pub fn enter(&self) -> ContextScope {
        let pushed = STACK
            .try_with(|s| {
                if let Ok(mut v) = s.try_borrow_mut() {
                    v.push(Arc::clone(&self.inner));
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);
        if pushed {
            ENTERED.fetch_add(1, Ordering::Relaxed);
        }
        ContextScope {
            id: if pushed { self.inner.id } else { 0 },
            _not_send: PhantomData,
        }
    }

    pub fn id(&self) -> u64 {
        self.inner.id
    }

    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Seconds since creation, frozen by [`finish`](Self::finish).
    pub fn wall_s(&self) -> f64 {
        let bits = self.inner.end_s_bits.load(Ordering::Relaxed);
        if bits == RUNNING {
            self.inner.started.elapsed().as_secs_f64()
        } else {
            f64::from_bits(bits)
        }
    }

    pub fn finished(&self) -> bool {
        self.inner.end_s_bits.load(Ordering::Relaxed) != RUNNING
    }

    /// Freezes the context's wall time (idempotent) and returns it. The
    /// SLO latency signal reads this final value from then on.
    pub fn finish(&self) -> f64 {
        let elapsed = self.inner.started.elapsed().as_secs_f64();
        let _ = self.inner.end_s_bits.compare_exchange(
            RUNNING,
            elapsed.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.wall_s()
    }

    /// This context's delta of a global counter (0 when never bumped
    /// inside the context).
    pub fn counter_delta(&self, name: &str) -> u64 {
        lock(&self.inner.maps.counters).get(name).copied().unwrap_or(0)
    }

    /// Last value written to an integer gauge while this context was
    /// current, if any.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        lock(&self.inner.maps.gauges).get(name).copied()
    }

    /// Last value written to an f64 gauge while this context was current.
    pub fn gauge_f64_value(&self, name: &str) -> Option<f64> {
        lock(&self.inner.maps.gauges_f64).get(name).map(|b| f64::from_bits(*b))
    }

    /// Scoped count/sum/max of a histogram, if it was observed inside
    /// this context.
    pub fn histogram_stats(&self, name: &str) -> Option<CtxHistStat> {
        lock(&self.inner.maps.hists).get(name).copied()
    }

    /// This context's span tree as `(dotted path, stats)`, sorted by path.
    pub fn span_stats(&self) -> Vec<(String, CtxSpanStat)> {
        let mut rows: Vec<_> = lock(&self.inner.maps.spans)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Derived cache hit ratio over this context's own lookups — the
    /// per-request counterpart of the global `cache.hit_ratio` gauge
    /// (stale and corrupt lookups count as misses). `None` before the
    /// first lookup, so an SLO rule on it cannot fire early.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let hits = self.counter_delta("cache.hits") as f64;
        let lookups = hits
            + self.counter_delta("cache.misses") as f64
            + self.counter_delta("cache.stale") as f64
            + self.counter_delta("cache.corrupt") as f64;
        (lookups > 0.0).then(|| hits / lookups)
    }

    /// Records an SLO violation once per rule; returns whether it was new.
    pub(crate) fn record_violation(&self, rule: &str) -> bool {
        let mut v = lock(&self.inner.violations);
        if v.iter().any(|r| r == rule) {
            false
        } else {
            v.push(rule.to_string());
            true
        }
    }

    /// SLO rules that have fired for this context, in firing order.
    pub fn violations(&self) -> Vec<String> {
        lock(&self.inner.violations).clone()
    }

    /// The `/contexts` summary object for this context.
    pub fn summary_json(&self) -> Json {
        let counters: Vec<(String, Json)> = {
            let mut rows: Vec<_> = lock(&self.inner.maps.counters)
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            rows
        };
        let gauges: Vec<(String, Json)> = {
            let mut rows: Vec<(String, Json)> = lock(&self.inner.maps.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect();
            rows.extend(
                lock(&self.inner.maps.gauges_f64)
                    .iter()
                    .map(|(k, b)| (k.clone(), Json::Num(f64::from_bits(*b)))),
            );
            if let Some(ratio) = self.cache_hit_ratio() {
                rows.retain(|(k, _)| k != "cache.hit_ratio");
                rows.push(("cache.hit_ratio".into(), Json::Num(ratio)));
            }
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            rows
        };
        let hists: Vec<(String, Json)> = {
            let mut rows: Vec<_> = lock(&self.inner.maps.hists)
                .iter()
                .map(|(k, h)| {
                    let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::Num(h.count as f64)),
                            ("mean".into(), Json::Num(mean)),
                            ("max".into(), Json::Num(h.max)),
                        ]),
                    )
                })
                .collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            rows
        };
        let spans: Vec<(String, Json)> = self
            .span_stats()
            .into_iter()
            .map(|(k, s)| {
                (
                    k,
                    Json::Obj(vec![
                        ("count".into(), Json::Num(s.count as f64)),
                        ("total_s".into(), Json::Num(s.total_s)),
                        ("max_s".into(), Json::Num(s.max_s)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("id".into(), Json::Num(self.inner.id as f64)),
            ("name".into(), Json::Str(self.inner.name.clone())),
            ("wall_s".into(), Json::Num(self.wall_s())),
            ("finished".into(), Json::Bool(self.finished())),
            ("spans".into(), Json::Obj(spans)),
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(hists)),
            (
                "violations".into(),
                Json::Arr(self.violations().into_iter().map(Json::Str).collect()),
            ),
        ])
    }
}

impl Drop for ContextScope {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        ENTERED.fetch_sub(1, Ordering::Relaxed);
        let _ = STACK.try_with(|s| {
            if let Ok(mut v) = s.try_borrow_mut() {
                // Pop this entry (and anything leaked above it), matching
                // the span stack's truncation idiom.
                if let Some(i) = v.iter().rposition(|c| c.id == self.id) {
                    v.truncate(i);
                }
            }
        });
    }
}

/// Every context still alive (some handle exists), oldest first.
pub(crate) fn live_contexts() -> Vec<TelemetryContext> {
    context_registry()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .filter_map(Weak::upgrade)
        .map(|inner| TelemetryContext { inner })
        .collect()
}

/// Number of live contexts (the `/healthz` payload reports it).
pub fn active_context_count() -> usize {
    live_contexts().len()
}

/// The `/contexts` payload: `{"contexts": [<summary>, ...]}`, one object
/// per live context, oldest first.
pub fn contexts_json() -> Json {
    let items = live_contexts().iter().map(TelemetryContext::summary_json).collect();
    Json::Obj(vec![("contexts".into(), Json::Arr(items))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_attribute_to_the_innermost_entered_context() {
        let outer = TelemetryContext::new("ctx.test.outer");
        let inner = TelemetryContext::new("ctx.test.inner");
        assert_ne!(outer.id(), inner.id());

        let _o = outer.enter();
        crate::counter("ctx.test.counter").add(3);
        {
            let _i = inner.enter();
            assert_eq!(TelemetryContext::current().unwrap().id(), inner.id());
            crate::counter("ctx.test.counter").add(10);
            crate::gauge("ctx.test.gauge").set(-7);
            crate::gauge_f64("ctx.test.ratio").set(0.5);
            crate::histogram_with_bounds("ctx.test.hist", &[1.0]).observe(2.0);
        }
        crate::counter("ctx.test.counter").add(4);

        assert_eq!(outer.counter_delta("ctx.test.counter"), 7);
        assert_eq!(inner.counter_delta("ctx.test.counter"), 10);
        assert_eq!(inner.gauge_value("ctx.test.gauge"), Some(-7));
        assert_eq!(outer.gauge_value("ctx.test.gauge"), None);
        assert_eq!(inner.gauge_f64_value("ctx.test.ratio"), Some(0.5));
        let h = inner.histogram_stats("ctx.test.hist").unwrap();
        assert_eq!((h.count, h.sum, h.max), (1, 2.0, 2.0));
        assert_eq!(outer.histogram_stats("ctx.test.hist"), None);
    }

    #[test]
    fn uncontexted_updates_touch_no_context() {
        let ctx = TelemetryContext::new("ctx.test.idle");
        crate::counter("ctx.test.idle.counter").inc();
        assert_eq!(ctx.counter_delta("ctx.test.idle.counter"), 0);
        assert!(ctx.span_stats().is_empty());
    }

    #[test]
    fn spans_record_into_the_current_context() {
        let ctx = TelemetryContext::new("ctx.test.spans");
        {
            let _g = ctx.enter();
            let _outer = crate::span("ctx_test_spans.outer");
            crate::span("leaf").finish();
        }
        let stats = ctx.span_stats();
        assert!(stats.iter().any(|(n, s)| n == "ctx_test_spans.outer" && s.count == 1));
        assert!(stats
            .iter()
            .any(|(n, s)| n == "ctx_test_spans.outer.leaf" && s.count == 1 && s.total_s >= 0.0));
    }

    #[test]
    fn propagates_across_threads_via_current_and_enter() {
        let ctx = TelemetryContext::new("ctx.test.xthread");
        let _g = ctx.enter();
        let captured = TelemetryContext::current().expect("context is current");
        std::thread::spawn(move || {
            let _w = captured.enter();
            crate::counter("ctx.test.xthread.work").add(5);
        })
        .join()
        .unwrap();
        assert_eq!(ctx.counter_delta("ctx.test.xthread.work"), 5);
    }

    #[test]
    fn finish_freezes_wall_time() {
        let ctx = TelemetryContext::new("ctx.test.finish");
        assert!(!ctx.finished());
        let w = ctx.finish();
        assert!(ctx.finished());
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(ctx.wall_s(), w, "wall time frozen at finish");
        assert_eq!(ctx.finish(), w, "finish is idempotent");
    }

    #[test]
    fn cache_hit_ratio_derives_from_scoped_counters() {
        let ctx = TelemetryContext::new("ctx.test.ratio");
        assert_eq!(ctx.cache_hit_ratio(), None, "no lookups yet");
        let _g = ctx.enter();
        crate::counter("cache.hits").add(3);
        crate::counter("cache.misses").add(1);
        drop(_g);
        assert_eq!(ctx.cache_hit_ratio(), Some(0.75));
    }

    #[test]
    fn registry_lists_live_contexts_and_summary_shape() {
        let ctx = TelemetryContext::new("ctx.test.registry");
        {
            let _g = ctx.enter();
            crate::counter("ctx.test.registry.hits").inc();
        }
        let json = contexts_json();
        let items = match json.get("contexts") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected contexts array, got {other:?}"),
        };
        let mine = items
            .iter()
            .find(|c| c.get("id").and_then(Json::as_f64) == Some(ctx.id() as f64))
            .expect("live context listed");
        assert_eq!(mine.get("name").and_then(Json::as_str), Some("ctx.test.registry"));
        assert_eq!(
            mine.get("counters")
                .and_then(|c| c.get("ctx.test.registry.hits"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(mine.get("finished").and_then(Json::as_bool), Some(false));
        // Text round-trip stays parseable (serving path).
        assert!(Json::parse(&json.to_string()).is_ok());
    }

    #[test]
    fn dropped_contexts_leave_the_registry() {
        let id = {
            let ctx = TelemetryContext::new("ctx.test.dropme");
            ctx.id()
        };
        let json = contexts_json().to_string();
        assert!(
            !live_contexts().iter().any(|c| c.id() == id),
            "dropped context still listed: {json}"
        );
    }

    #[test]
    fn violations_are_edge_triggered() {
        let ctx = TelemetryContext::new("ctx.test.viol");
        assert!(ctx.record_violation("latency_s<1"));
        assert!(!ctx.record_violation("latency_s<1"), "same rule fires once");
        assert!(ctx.record_violation("retries<=0"));
        assert_eq!(ctx.violations().len(), 2);
    }
}
