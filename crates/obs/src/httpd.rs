//! Minimal HTTP/1.1 plumbing shared by the embedded metrics server and
//! the `kgtosa serve` daemon (std-only, no framework).
//!
//! [`read_request`] parses one request — method, path, headers, and a
//! `Content-Length`-delimited body — off a [`TcpStream`] with hard caps
//! on head and body size, so a hostile or confused client cannot balloon
//! the process. [`HttpResponse`] + [`write_response`] render the answer.
//! [`builtin_route`] answers the observability GET routes (`/metrics`,
//! `/spans`, `/progress`, `/prof`, `/contexts`, `/healthz`) from the live
//! registry, so any server built on this module exposes them for free.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::json::Json;
use crate::progress::progress_json;
use crate::prometheus::render_prometheus;
use crate::registry;

/// Default cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, Default)]
pub struct HttpRequest {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// Raw query string (after `?`), empty when absent.
    pub query: String,
    /// Headers as `(lower-cased-name, value)` pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed — mapped to a status by the caller.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed before sending a complete request.
    Closed,
    /// Head or body exceeded its cap (`413`-shaped).
    TooLarge,
    /// Not parseable as HTTP (`400`-shaped).
    Malformed(String),
    /// Transport error mid-read.
    Io(io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::TooLarge => write!(f, "request too large"),
            RequestError::Malformed(m) => write!(f, "malformed request: {m}"),
            RequestError::Io(e) => write!(f, "read error: {e}"),
        }
    }
}

/// Reads and parses one request off `stream`, enforcing `max_head` /
/// `max_body` byte caps.
pub fn read_request(
    stream: &mut TcpStream,
    max_head: usize,
    max_body: usize,
) -> Result<HttpRequest, RequestError> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > max_head {
            return Err(RequestError::TooLarge);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(RequestError::Closed)
                } else {
                    Err(RequestError::Malformed("truncated head".into()))
                }
            }
            Ok(n) => n,
            Err(e) => return Err(RequestError::Io(e)),
        };
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing request target".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| RequestError::Malformed("unparseable content-length".into()))?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(RequestError::TooLarge);
    }
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(RequestError::Malformed("truncated body".into())),
            Ok(n) => n,
            Err(e) => return Err(RequestError::Io(e)),
        };
        let want = content_length - body.len();
        body.extend_from_slice(&chunk[..n.min(want)]);
    }
    Ok(HttpRequest { method, path, query, headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json".into(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": <message>}`.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        let body = Json::Obj(vec![("error".into(), Json::Str(message.into()))]);
        Self::json(status, body.to_string())
    }
}

/// The reason phrase for the statuses this workspace emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

/// Writes `response` to `stream` with `Connection: close` framing.
pub fn write_response(stream: &mut TcpStream, response: &HttpResponse) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// The `/healthz` payload. Readiness is live: a violating context flips
/// it to false until that context is dropped.
fn healthz_json(ready: bool) -> Json {
    Json::Obj(vec![
        ("ready".into(), Json::Bool(ready)),
        (
            "active_contexts".into(),
            Json::Num(crate::context::active_context_count() as f64),
        ),
        (
            "slo_rules".into(),
            Json::Num(crate::slo::slo_rules_installed() as f64),
        ),
        (
            "slo_violations".into(),
            Json::Num(crate::slo::slo_violation_count() as f64),
        ),
    ])
}

/// The `/spans` payload: `{"spans": {<name>: {...}}}` mirroring the final
/// `metrics` trace event's span section.
fn spans_json() -> Json {
    let spans: Vec<(String, Json)> = registry::span_stats()
        .into_iter()
        .map(|(name, s)| {
            (
                name,
                Json::Obj(vec![
                    ("count".into(), Json::Num(s.count as f64)),
                    ("total_s".into(), Json::Num(s.total_s)),
                    ("max_s".into(), Json::Num(s.max_s)),
                    ("peak_delta_max".into(), Json::Num(s.peak_delta_max as f64)),
                    ("allocs".into(), Json::Num(s.allocs as f64)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![("spans".into(), Json::Obj(spans))])
}

/// Answers the observability GET routes from the live registry; `None`
/// when the request is not one of them (the caller's own routes apply).
pub fn builtin_route(req: &HttpRequest) -> Option<HttpResponse> {
    if req.method != "GET" {
        return None;
    }
    let response = match req.path.as_str() {
        "/metrics" => HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
            body: render_prometheus().into_bytes(),
        },
        "/spans" => HttpResponse::json(200, spans_json().to_string()),
        "/progress" => HttpResponse::json(200, progress_json().to_string()),
        "/prof" => HttpResponse::json(200, crate::prof::prof_json().to_string()),
        "/contexts" => HttpResponse::json(200, crate::context::contexts_json().to_string()),
        "/healthz" => {
            let ready = crate::slo::slo_ready();
            HttpResponse::json(
                if ready { 200 } else { 503 },
                healthz_json(ready).to_string(),
            )
        }
        _ => return None,
    };
    Some(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> Result<HttpRequest, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream, MAX_HEAD_BYTES, 1024);
        sender.join().unwrap();
        req
    }

    #[test]
    fn parses_get_with_query() {
        let req = roundtrip(b"GET /extract?x=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/extract");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.header("HOST"), Some("h"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = roundtrip(
            b"POST /infer HTTP/1.1\r\nContent-Length: 11\r\nX-Kgtosa-Deadline-Ms: 250\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/infer");
        assert_eq!(req.body, b"hello world");
        assert_eq!(req.header("x-kgtosa-deadline-ms"), Some("250"));
    }

    #[test]
    fn rejects_oversized_body() {
        let mut raw = b"POST /x HTTP/1.1\r\nContent-Length: 5000\r\n\r\n".to_vec();
        raw.extend(vec![b'a'; 5000]);
        match roundtrip(&raw) {
            Err(RequestError::TooLarge) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        match roundtrip(b"\r\n\r\n") {
            Err(RequestError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn builtin_routes_answer_only_get() {
        let get = HttpRequest {
            method: "GET".into(),
            path: "/metrics".into(),
            ..Default::default()
        };
        assert!(builtin_route(&get).is_some());
        let post = HttpRequest {
            method: "POST".into(),
            path: "/metrics".into(),
            ..Default::default()
        };
        assert!(builtin_route(&post).is_none());
        let other = HttpRequest {
            method: "GET".into(),
            path: "/nope".into(),
            ..Default::default()
        };
        assert!(builtin_route(&other).is_none());
    }
}
