//! # kgtosa-obs — observability for the KG-TOSA pipeline
//!
//! The paper's argument is quantitative: Table IV decomposes end-to-end
//! cost into extraction / transformation / training time, and the memory
//! figures track RAM alongside accuracy. This crate gives the whole
//! workspace one telemetry layer to produce those numbers:
//!
//! * **Spans** — [`span!`] opens an RAII timer that records wall time,
//!   live heap, peak-heap growth, and allocation count (via
//!   `kgtosa-memtrack`) under a hierarchical dotted name
//!   (`pipeline.transform`, `extract.brw`, …). Spans nest per thread.
//! * **Metrics registry** — process-global named [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket [`Histogram`]s, all lock-free on the
//!   hot path.
//! * **Training telemetry** — a [`TrainObserver`] hook threaded through
//!   the model trainers' config so every epoch reports loss, wall time,
//!   and heap without touching the math.
//! * **Progress / ETA** — long phases register [`Progress`] tasks
//!   (epochs, fetch pages, sampler roots); the snapshot derives
//!   throughput and an ETA, and a background heartbeat periodically
//!   flushes it into the trace so killed runs stay inspectable.
//! * **Live serving** — an embedded std-only HTTP server
//!   ([`serve_metrics`], `--metrics-addr` / `KGTOSA_METRICS_ADDR`)
//!   exposes `/metrics` in Prometheus text format plus `/spans` and
//!   `/progress` as JSON while a job runs.
//! * **Regression diffing** — [`diff_trace_texts`] compares two JSONL
//!   traces or `BENCH_*.json` reports per span on wall time, peak heap,
//!   and allocations; `kgtosa trace-diff` and the CI gate sit on top.
//! * **Sinks** — a machine-readable JSONL event stream (enabled with
//!   `--trace-out` or `KGTOSA_TRACE=<path>`) and a human-readable stderr
//!   summary tree ([`render_summary_tree`]).
//! * **Crash-path telemetry** — [`install_panic_hook`] arms a panic hook
//!   that emits a final `panic` event (message, location, live span
//!   stack) and flushes the trace before the process dies.
//! * **Request-scoped contexts** — a [`TelemetryContext`] layers its own
//!   span tree and scoped instrument deltas over the global registry;
//!   workers inherit the spawning context across thread boundaries, so
//!   concurrent requests stay attributable. The Chrome-trace exporter
//!   ([`arm_chrome`] / [`write_chrome_trace`]) renders contexts as
//!   Perfetto process tracks, and the SLO watchdog
//!   ([`parse_slo_spec`] / [`start_slo_watchdog`]) enforces declarative
//!   per-context latency/retry/completeness/cache-hit requirements.
//!
//! Everything is std-only: no external dependencies, no global setup
//! required. With no sink installed, a span costs two `Instant::now`
//! calls, four atomic loads, and one registry update.

mod chrome;
mod context;
mod diff;
mod flame;
mod history;
pub mod httpd;
mod json;
mod panic_hook;
mod prof;
mod report;
mod progress;
mod prometheus;
mod registry;
mod serve;
mod sink;
mod slo;
mod span;
mod summary;
mod train;

pub use chrome::{
    arm_chrome, render_chrome_trace, sample_counter_tracks, validate_chrome_trace,
    write_chrome_trace, ChromeTraceStats,
};
pub use context::{
    active_context_count, context_active, contexts_json, ContextScope, CtxHistStat, CtxSpanStat,
    TelemetryContext,
};
pub use diff::{diff_spans, diff_trace_texts, parse_trace_or_bench, DiffOptions, DiffReport, DiffRow};
pub use flame::render_flame_svg;
pub use httpd::{
    builtin_route, read_request, write_response, HttpRequest, HttpResponse, RequestError,
    MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
pub use history::{
    append_record, baseline_from_window, compact_history, current_git_rev, load_history,
    render_markdown, trend_against_history, CompactReport, HistoryRecord, TrendReport,
};
pub use json::Json;
pub use prof::{
    enable_prof, enable_prof_from_env, fold_stack, folded_from_aggs, prof_enabled, prof_json,
    registry_aggs, render_folded, reset_prof_samples, sample_ticks, samples_folded, self_times,
    write_folded, SelfTime, DEFAULT_PROF_HZ,
};
pub use report::{render_html_report, table_iv_phase};
pub use progress::{
    emit_heartbeat, progress_json, progress_snapshot, progress_task, reset_progress,
    start_heartbeat, start_heartbeat_from_env, Progress, ProgressSnapshot,
};
pub use panic_hook::{install_panic_hook, panic_hook_installed};
pub use prometheus::render_prometheus;
pub use registry::{
    counter, gauge, gauge_f64, histogram, histogram_with_bounds, metrics_snapshot,
    reset_registry, span_stats, Counter, Gauge, GaugeF64, Histogram, SpanStat,
};
pub use serve::{init_serve_from_env, register_core_metrics, serve_addr, serve_metrics};
pub use sink::{
    emit_event, info_str, init_trace_from_env, init_trace_to, is_quiet, set_quiet, shutdown,
    trace_enabled,
};
pub use slo::{
    evaluate_slo_now, evaluate_slo_rules, install_slo_rules, parse_slo_spec,
    slo_interval_from_env, slo_ready, slo_rules_installed, slo_violation_count,
    start_slo_watchdog, SloRule, SloViolation, DEFAULT_SLO_MS,
};
pub use span::{span, SpanGuard, SpanRecord};
pub use summary::{render_summary_tree, render_trace_table, summarize_jsonl, SpanAgg};
pub use train::{EpochEvent, Observer, TelemetryObserver, TrainObserver};

/// Whether any live telemetry consumer exists — a JSONL trace sink, the
/// embedded metrics server, or a [`TelemetryContext`] entered on the
/// calling thread (its scoped deltas feed `/contexts` and the SLO
/// watchdog, so quality gauges and progress tasks must be captured for
/// it). Instrumentation sites with a non-trivial cost (e.g. computing
/// subgraph quality indicators, registering progress tasks) gate on this
/// so silent runs stay untouched.
pub fn telemetry_active() -> bool {
    trace_enabled() || serve_addr().is_some() || context_active()
}

/// Opens a hierarchical span: `let _s = span!("extract.brw");`.
///
/// The returned guard records on drop, or call `.finish()` to consume it
/// and get the [`SpanRecord`] back (wall seconds, heap deltas).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Progress chatter: goes to stderr unless `--quiet`, and is mirrored
/// into the JSONL trace as a `log` event when tracing is enabled.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::info_str(&format!($($arg)*))
    };
}
