//! Single-file HTML run reports: one JSONL trace in, one self-contained
//! `report.html` out.
//!
//! The report folds everything a run left behind into the per-run
//! quality/cost artifact the KGNet platform vision calls for: the span
//! tree with self-time attribution (the computed version of the paper's
//! Table IV cost decomposition), the top hot spans, the final metrics
//! snapshot (counters / gauges / histograms), subgraph-quality and
//! completeness indicators from `extract.quality` events, and an inline
//! flamegraph. No scripts, no external resources — the file archives and
//! attaches to CI runs as-is.

use std::fmt::Write as _;

use crate::flame::render_flame_svg;
use crate::json::Json;
use crate::prof::{folded_from_aggs, render_folded, self_times, SelfTime};
use crate::summary::{summarize_jsonl, SpanAgg};

fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_s(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else if v >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// The paper's Table IV decomposes end-to-end cost into extraction,
/// transformation, and training; everything else (I/O, setup, telemetry)
/// lands in "other". Classification is by span path.
pub fn table_iv_phase(name: &str) -> &'static str {
    let n = name.to_ascii_lowercase();
    if n.contains("extract") || n.contains("rdf") || n.contains("fetch") || n.contains("sample") {
        "extraction"
    } else if n.contains("transform") {
        "transformation"
    } else if n.contains("train") || n.contains("epoch") || n.contains("infer") {
        "training"
    } else {
        "other"
    }
}

/// Events the report reads beyond the span aggregates.
struct TraceExtras {
    /// The final `metrics` snapshot, when the run shut down cleanly.
    metrics: Option<Json>,
    /// Every `extract.quality` event, in order.
    quality: Vec<Json>,
    /// `panic` events (a crashed run's report should say so loudly).
    panics: Vec<Json>,
}

fn scan_extras(text: &str) -> TraceExtras {
    let mut extras = TraceExtras { metrics: None, quality: Vec::new(), panics: Vec::new() };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(event) = Json::parse(line) else { continue };
        match event.get("ev").and_then(Json::as_str) {
            Some("metrics") => extras.metrics = Some(event),
            Some("extract.quality") => extras.quality.push(event),
            Some("panic") => extras.panics.push(event),
            _ => {}
        }
    }
    extras
}

fn span_tree_table(out: &mut String, rows: &[SelfTime], wall_total: f64) {
    out.push_str(
        "<table><tr><th>span</th><th>count</th><th>total (s)</th><th>self (s)</th>\
         <th>self %</th><th>self allocs</th><th>peak Δ</th></tr>\n",
    );
    // Render as a tree: depth-first over parent links, preserving the
    // recorded order among siblings.
    let mut order: Vec<usize> = Vec::with_capacity(rows.len());
    fn visit(rows: &[SelfTime], at: usize, order: &mut Vec<usize>) {
        order.push(at);
        for (j, r) in rows.iter().enumerate() {
            if r.parent == Some(at) {
                visit(rows, j, order);
            }
        }
    }
    for (i, r) in rows.iter().enumerate() {
        if r.parent.is_none() {
            visit(rows, i, &mut order);
        }
    }
    for &i in &order {
        let r = &rows[i];
        let pct = 100.0 * r.self_s / wall_total.max(1e-12);
        let label = r.name.rsplit('.').next().unwrap_or(&r.name);
        let _ = writeln!(
            out,
            "<tr><td class=\"tree\" title=\"{}\"><span style=\"padding-left:{}em\">{}</span></td>\
             <td>{}</td><td>{}</td><td>{}</td>\
             <td><div class=\"bar\" style=\"width:{:.1}%\"></div>{:.1}%</td>\
             <td>{}</td><td>{}</td></tr>",
            html_escape(&r.name),
            r.depth as f64 * 1.2,
            html_escape(if r.depth == 0 { &r.name } else { label }),
            r.count,
            fmt_s(r.total_s),
            fmt_s(r.self_s),
            pct.min(100.0),
            pct,
            r.self_allocs,
            kgtosa_memtrack::format_bytes(r.peak_max_bytes),
        );
    }
    out.push_str("</table>\n");
}

fn metric_tables(out: &mut String, metrics: &Json) {
    for (section, unit) in [("counters", ""), ("gauges", "")] {
        let Some(Json::Obj(fields)) = metrics.get(section) else { continue };
        if fields.is_empty() {
            continue;
        }
        let _ = writeln!(out, "<h3>{section}</h3><table><tr><th>name</th><th>value{unit}</th></tr>");
        for (name, value) in fields {
            let v = value.as_f64().unwrap_or(0.0);
            let _ = writeln!(out, "<tr><td>{}</td><td>{v}</td></tr>", html_escape(name));
        }
        out.push_str("</table>\n");
    }
    if let Some(Json::Obj(fields)) = metrics.get("histograms") {
        if !fields.is_empty() {
            out.push_str(
                "<h3>histograms</h3><table><tr><th>name</th><th>count</th><th>mean</th>\
                 <th>p95</th><th>max</th></tr>\n",
            );
            for (name, h) in fields {
                let f = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "<tr><td>{}</td><td>{}</td><td>{:.6}</td><td>{:.6}</td><td>{:.6}</td></tr>",
                    html_escape(name),
                    f("count"),
                    f("mean"),
                    f("p95"),
                    f("max"),
                );
            }
            out.push_str("</table>\n");
        }
    }
}

/// Renders the full HTML run report from a JSONL trace. `source_label`
/// names where the trace came from (file path, CI job, …).
pub fn render_html_report(trace_text: &str, source_label: &str) -> Result<String, String> {
    let aggs: Vec<SpanAgg> = summarize_jsonl(trace_text)?;
    if aggs.is_empty() {
        return Err("trace contains no span or train.epoch events".to_string());
    }
    let rows = self_times(&aggs);
    let extras = scan_extras(trace_text);
    let wall_total: f64 = rows.iter().filter(|r| r.parent.is_none()).map(|r| r.total_s).sum();

    let mut out = String::with_capacity(16 * 1024);
    out.push_str(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>kgtosa run report</title>\n\
         <style>\n\
         body{font-family:system-ui,sans-serif;margin:2em auto;max-width:1240px;color:#222}\n\
         h1{border-bottom:2px solid #c33;padding-bottom:.2em}\n\
         h2{margin-top:1.6em;border-bottom:1px solid #ddd;padding-bottom:.15em}\n\
         table{border-collapse:collapse;font-size:13px;margin:.5em 0}\n\
         th,td{border:1px solid #ddd;padding:3px 8px;text-align:right;font-variant-numeric:tabular-nums}\n\
         th{background:#f6f2ea}\n\
         td:first-child,th:first-child{text-align:left;font-family:monospace}\n\
         td .bar{display:inline-block;height:9px;background:#e2a25b;margin-right:4px;max-width:120px;vertical-align:baseline}\n\
         td{white-space:nowrap}\n\
         .warn{background:#fbe9e7;border:1px solid #c33;padding:.6em 1em;border-radius:4px}\n\
         .muted{color:#777;font-size:12px}\n\
         </style></head><body>\n",
    );
    let _ = writeln!(
        out,
        "<h1>kgtosa run report</h1>\n<p class=\"muted\">source: {} · spans: {} · \
         total wall (sum of roots): {} s</p>",
        html_escape(source_label),
        rows.len(),
        fmt_s(wall_total),
    );

    for p in &extras.panics {
        let msg = p.get("msg").and_then(Json::as_str).unwrap_or("?");
        let loc = p.get("location").and_then(Json::as_str).unwrap_or("?");
        let _ = writeln!(
            out,
            "<p class=\"warn\"><b>this run panicked:</b> {} <span class=\"muted\">at {}</span></p>",
            html_escape(msg),
            html_escape(loc),
        );
    }

    // Table IV cost breakdown: self time per phase.
    out.push_str("<h2>Cost breakdown (Table IV)</h2>\n");
    out.push_str(
        "<p class=\"muted\">Self-time per phase — the computed analogue of the paper's \
         extraction / transformation / training decomposition.</p>\n",
    );
    let mut phases: Vec<(&'static str, f64)> = Vec::new();
    for r in &rows {
        let phase = table_iv_phase(&r.name);
        match phases.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, acc)) => *acc += r.self_s,
            None => phases.push((phase, r.self_s)),
        }
    }
    phases.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out.push_str("<table><tr><th>phase</th><th>self (s)</th><th>share</th></tr>\n");
    for (phase, secs) in &phases {
        let _ = writeln!(
            out,
            "<tr><td>{phase}</td><td>{}</td><td>{:.1}%</td></tr>",
            fmt_s(*secs),
            100.0 * secs / wall_total.max(1e-12),
        );
    }
    out.push_str("</table>\n");

    // Top hot spans by self time.
    out.push_str("<h2>Hot spans (by self time)</h2>\n");
    let mut hot: Vec<&SelfTime> = rows.iter().collect();
    hot.sort_by(|a, b| b.self_s.partial_cmp(&a.self_s).unwrap_or(std::cmp::Ordering::Equal));
    out.push_str(
        "<table><tr><th>span</th><th>self (s)</th><th>self %</th><th>count</th>\
         <th>mean total (s)</th></tr>\n",
    );
    for r in hot.iter().take(10) {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{:.1}%</td><td>{}</td><td>{}</td></tr>",
            html_escape(&r.name),
            fmt_s(r.self_s),
            100.0 * r.self_s / wall_total.max(1e-12),
            r.count,
            fmt_s(r.total_s / r.count.max(1) as f64),
        );
    }
    out.push_str("</table>\n");

    // Flamegraph from self-time-weighted folded stacks.
    out.push_str("<h2>Flamegraph</h2>\n");
    let folded = render_folded(&folded_from_aggs(&aggs));
    match render_flame_svg(&folded, source_label) {
        Ok(svg) => out.push_str(&svg),
        Err(e) => {
            let _ = writeln!(out, "<p class=\"warn\">flamegraph failed: {}</p>", html_escape(&e));
        }
    }

    // Full span tree.
    out.push_str("<h2>Span tree</h2>\n");
    span_tree_table(&mut out, &rows, wall_total);

    // Extraction quality / completeness.
    if !extras.quality.is_empty() {
        out.push_str("<h2>Extraction quality</h2>\n");
        out.push_str(
            "<table><tr><th>method</th><th>nodes</th><th>triples</th><th>targets</th>\
             <th>target %</th><th>disconnected %</th><th>completeness</th></tr>\n",
        );
        for q in &extras.quality {
            let f = |k: &str| q.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let completeness = q.get("completeness").and_then(Json::as_f64).unwrap_or(1.0);
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.2}</td>\
                 <td>{:.2}</td><td>{:.1}%</td></tr>",
                html_escape(q.get("method").and_then(Json::as_str).unwrap_or("?")),
                f("num_nodes"),
                f("num_triples"),
                f("target_count"),
                f("target_ratio_pct"),
                f("target_disconnected_pct"),
                100.0 * completeness,
            );
        }
        out.push_str("</table>\n");
    }

    // Final metrics snapshot.
    if let Some(metrics) = &extras.metrics {
        out.push_str("<h2>Final metrics</h2>\n");
        metric_tables(&mut out, metrics);
    } else {
        out.push_str(
            "<p class=\"warn\">no final <code>metrics</code> event — the run did not shut \
             down cleanly (killed or crashed); numbers above cover events up to the cut.</p>\n",
        );
    }

    out.push_str("</body></html>\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        r#"{"ev":"span","t":0.1,"name":"pipeline.extract","wall_s":0.6,"live_bytes":0,"peak_delta_bytes":2048,"allocs":500}"#, "\n",
        r#"{"ev":"span","t":0.2,"name":"pipeline.transform","wall_s":0.1,"live_bytes":0,"peak_delta_bytes":0,"allocs":10}"#, "\n",
        r#"{"ev":"span","t":0.9,"name":"pipeline.train","wall_s":0.3,"live_bytes":0,"peak_delta_bytes":0,"allocs":100}"#, "\n",
        r#"{"ev":"span","t":1.0,"name":"pipeline","wall_s":1.1,"live_bytes":0,"peak_delta_bytes":4096,"allocs":700}"#, "\n",
        r#"{"ev":"extract.quality","t":0.6,"method":"sparql-d1h1","num_nodes":100,"num_triples":300,"target_count":20,"target_ratio_pct":20.0,"target_disconnected_pct":0.0,"completeness":0.75}"#, "\n",
        r#"{"ev":"metrics","t":1.2,"counters":{"cache.hits":3},"gauges":{"cache.bytes":1024},"histograms":{"fetch.page_s":{"count":4,"mean":0.01,"p95":0.02,"max":0.03}},"spans":{}}"#, "\n",
    );

    #[test]
    fn report_contains_all_sections() {
        let html = render_html_report(TRACE, "test.jsonl").unwrap();
        for needle in [
            "<!doctype html>",
            "Cost breakdown (Table IV)",
            "Hot spans",
            "Flamegraph",
            "<svg",
            "Span tree",
            "Extraction quality",
            "Final metrics",
            "cache.hits",
            "sparql-d1h1",
            "75.0%", // completeness
        ] {
            assert!(html.contains(needle), "missing {needle:?}");
        }
        assert!(!html.contains("<script"), "report must be script-free");
    }

    #[test]
    fn self_times_sum_to_root_wall_in_report_inputs() {
        let aggs = summarize_jsonl(TRACE).unwrap();
        let rows = self_times(&aggs);
        let root_total: f64 =
            rows.iter().filter(|r| r.parent.is_none()).map(|r| r.total_s).sum();
        let self_sum: f64 = rows.iter().map(|r| r.self_s).sum();
        assert!(
            (self_sum - root_total).abs() < 1e-9,
            "self ({self_sum}) must telescope to root wall ({root_total})"
        );
    }

    #[test]
    fn dirty_shutdown_is_called_out() {
        let truncated = TRACE.lines().take(4).collect::<Vec<_>>().join("\n");
        let html = render_html_report(&truncated, "cut.jsonl").unwrap();
        assert!(html.contains("did not shut down cleanly"));
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(render_html_report(r#"{"ev":"log","t":0,"msg":"hi"}"#, "x").is_err());
    }

    #[test]
    fn phase_classification() {
        assert_eq!(table_iv_phase("pipeline.extract.brw"), "extraction");
        assert_eq!(table_iv_phase("rdf.fetch"), "extraction");
        assert_eq!(table_iv_phase("pipeline.transform"), "transformation");
        assert_eq!(table_iv_phase("train.epoch[rgcn]"), "training");
        assert_eq!(table_iv_phase("snapshot.write"), "other");
    }
}
