//! Dependency-free flamegraph renderer: collapsed-stack text in,
//! self-contained SVG out.
//!
//! The input format is the de-facto standard `frame;frame;frame count`
//! (one line per distinct stack, count = samples or milliseconds — any
//! additive weight). The output is a single SVG document with no
//! scripts and no external resources: rectangles laid out as an icicle
//! (roots on top), `<title>` tooltips carrying exact weights, and frame
//! labels where they fit. It opens in any browser and embeds directly
//! into the HTML run report.

use std::fmt::Write as _;

/// One node of the merged stack trie.
#[derive(Debug, Default)]
struct Node {
    name: String,
    /// Weight of samples ending exactly here (self).
    self_w: u64,
    /// Total weight (self + descendants); filled by [`Node::finish`].
    total_w: u64,
    children: Vec<Node>,
}

impl Node {
    fn child_mut(&mut self, name: &str) -> &mut Node {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(Node { name: name.to_string(), ..Node::default() });
        self.children.last_mut().unwrap()
    }

    fn finish(&mut self) -> u64 {
        let kids: u64 = self.children.iter_mut().map(Node::finish).sum();
        // Keep child order deterministic: heaviest first, ties by name.
        self.children
            .sort_by(|a, b| b.total_w.cmp(&a.total_w).then(a.name.cmp(&b.name)));
        self.total_w = self.self_w + kids;
        self.total_w
    }

    fn depth(&self) -> usize {
        1 + self.children.iter().map(Node::depth).max().unwrap_or(0)
    }
}

/// Parses collapsed-stack lines into the merged trie root. Empty lines
/// are skipped; a line without a trailing integer weight is an error.
fn parse_folded(text: &str) -> Result<Node, String> {
    let mut root = Node { name: "all".to_string(), ..Node::default() };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no weight field", lineno + 1))?;
        let count: u64 = count
            .parse()
            .map_err(|_| format!("line {}: weight {count:?} is not an integer", lineno + 1))?;
        let mut at = &mut root;
        for frame in stack.split(';').filter(|f| !f.is_empty()) {
            at = at.child_mut(frame);
        }
        at.self_w += count;
    }
    root.finish();
    Ok(root)
}

/// Deterministic warm color per frame name (the flamegraph.pl "hot"
/// palette feel, without randomness so diffs of the SVG are stable).
fn frame_color(name: &str) -> (u8, u8, u8) {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let r = 205 + (h % 50) as u8;
    let g = ((h >> 8) % 180) as u8;
    let b = ((h >> 16) % 55) as u8;
    (r, g, b)
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

const WIDTH: f64 = 1190.0;
const ROW_H: f64 = 17.0;
const FONT_PX: f64 = 11.0;
/// Average glyph advance for the monospace label font.
const CHAR_W: f64 = 6.6;
/// Rectangles narrower than this are drawn but unlabeled.
const MIN_LABEL_W: f64 = 3.0 * CHAR_W;

fn render_node(out: &mut String, node: &Node, x: f64, width: f64, depth: usize, total: u64) {
    let y = 34.0 + depth as f64 * ROW_H;
    let (r, g, b) = frame_color(&node.name);
    let pct = 100.0 * node.total_w as f64 / total.max(1) as f64;
    let title = format!(
        "{} ({} of {}, {:.2}%)",
        node.name, node.total_w, total, pct
    );
    let _ = write!(
        out,
        "<g><title>{}</title><rect x=\"{:.2}\" y=\"{:.1}\" width=\"{:.2}\" height=\"{:.1}\" \
         fill=\"rgb({r},{g},{b})\" rx=\"2\"/>",
        xml_escape(&title),
        x,
        y,
        (width - 0.5).max(0.4),
        ROW_H - 1.0,
    );
    if width >= MIN_LABEL_W {
        let fit = ((width - 4.0) / CHAR_W) as usize;
        let label: String = if node.name.chars().count() <= fit {
            node.name.clone()
        } else {
            let mut s: String = node.name.chars().take(fit.saturating_sub(2)).collect();
            s.push_str("..");
            s
        };
        let _ = write!(
            out,
            "<text x=\"{:.2}\" y=\"{:.1}\" font-size=\"{FONT_PX}\">{}</text>",
            x + 3.0,
            y + ROW_H - 5.0,
            xml_escape(&label)
        );
    }
    out.push_str("</g>\n");
    // Children left-to-right in the (already sorted) trie order.
    let mut cx = x;
    for child in &node.children {
        let cw = width * child.total_w as f64 / node.total_w.max(1) as f64;
        render_node(out, child, cx, cw, depth + 1, total);
        cx += cw;
    }
}

/// Renders collapsed-stack text as a self-contained SVG flamegraph.
/// `subtitle` appears under the title (pass the input file name or a
/// run label); an empty input yields a valid "no samples" SVG rather
/// than an error, so pipelines never break on an idle run.
pub fn render_flame_svg(folded: &str, subtitle: &str) -> Result<String, String> {
    let root = parse_folded(folded)?;
    let depth = root.depth(); // includes the synthetic "all" root
    let height = 34.0 + depth as f64 * ROW_H + 24.0;
    let mut out = String::with_capacity(folded.len() * 4 + 1024);
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH} {height:.0}\" font-family=\"monospace\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#fdf6ec\"/>\n\
         <text x=\"{:.1}\" y=\"17\" font-size=\"14\" text-anchor=\"middle\" \
         font-weight=\"bold\">kgtosa flamegraph</text>\n\
         <text x=\"{:.1}\" y=\"30\" font-size=\"11\" text-anchor=\"middle\" \
         fill=\"#666\">{}</text>\n",
        WIDTH / 2.0,
        WIDTH / 2.0,
        xml_escape(subtitle),
    );
    if root.total_w == 0 {
        let _ = write!(
            out,
            "<text x=\"{:.1}\" y=\"60\" font-size=\"12\" text-anchor=\"middle\">no samples</text>",
            WIDTH / 2.0
        );
    } else {
        render_node(&mut out, &root, 0.0, WIDTH, 0, root.total_w);
    }
    out.push_str("</svg>\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOLDED: &str = "pipeline;extract 30\npipeline;extract;fetch 50\npipeline;train 20\n";

    #[test]
    fn trie_merges_and_totals() {
        let root = parse_folded(FOLDED).unwrap();
        assert_eq!(root.total_w, 100);
        assert_eq!(root.children.len(), 1);
        let pipeline = &root.children[0];
        assert_eq!(pipeline.name, "pipeline");
        assert_eq!(pipeline.total_w, 100);
        assert_eq!(pipeline.self_w, 0);
        let extract = pipeline.children.iter().find(|c| c.name == "extract").unwrap();
        assert_eq!(extract.total_w, 80);
        assert_eq!(extract.self_w, 30);
        // Heaviest child first.
        assert_eq!(pipeline.children[0].name, "extract");
    }

    #[test]
    fn svg_is_self_contained_and_deterministic() {
        let a = render_flame_svg(FOLDED, "run.folded").unwrap();
        let b = render_flame_svg(FOLDED, "run.folded").unwrap();
        assert_eq!(a, b, "rendering must be deterministic");
        assert!(a.starts_with("<svg"));
        assert!(a.trim_end().ends_with("</svg>"));
        assert!(a.contains("pipeline"));
        assert!(a.contains("fetch"));
        assert!(!a.contains("http://") || a.contains("xmlns"), "no external fetches");
        assert!(!a.contains("<script"));
        // Tooltip carries exact weights.
        assert!(a.contains("extract (80 of 100, 80.00%)"), "{a}");
    }

    #[test]
    fn empty_input_renders_placeholder() {
        let svg = render_flame_svg("", "empty").unwrap();
        assert!(svg.contains("no samples"));
    }

    #[test]
    fn bad_weight_is_an_error() {
        assert!(parse_folded("a;b banana").is_err());
        assert!(parse_folded("justoneword").is_err());
    }

    #[test]
    fn names_are_xml_escaped() {
        let svg = render_flame_svg("a<b>&\"c\" 10", "x").unwrap();
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(!svg.contains("<b>"));
    }
}
