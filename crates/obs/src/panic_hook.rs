//! Crash-path telemetry: a process panic hook that gets the trace to disk
//! before the process dies.
//!
//! Without it, a panic mid-run loses everything buffered in the JSONL
//! writer since the last heartbeat flush, and the operator learns nothing
//! about *where* in the pipeline the crash happened. The hook emits one
//! final `panic` event carrying the message, source location, and the
//! live span stack of the panicking thread, flushes the stream, and then
//! defers to whatever hook was installed before it (normally the default
//! backtrace printer).
//!
//! Every step is panic-safe: the span stack is read through `try_borrow`,
//! the trace writer through `try_lock`, and the registry/sink mutexes are
//! poison-tolerant — so a panic raised while any of those locks are held
//! degrades to a partial dump instead of a deadlock or an abort.

use std::panic::{self, PanicHookInfo};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::json::Json;
use crate::sink;
use crate::span;

static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Installs the crash-path hook (idempotent — the second and later calls
/// are no-ops). Chains the previously installed hook, so the standard
/// backtrace output is preserved.
pub fn install_panic_hook() {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = panic::take_hook();
    panic::set_hook(Box::new(move |info: &PanicHookInfo<'_>| {
        report_panic(info);
        previous(info);
    }));
}

/// Whether [`install_panic_hook`] has run in this process.
pub fn panic_hook_installed() -> bool {
    INSTALLED.load(Ordering::SeqCst)
}

fn payload_message(info: &PanicHookInfo<'_>) -> String {
    let payload = info.payload();
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn report_panic(info: &PanicHookInfo<'_>) {
    let msg = payload_message(info);
    let location = info
        .location()
        .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
    let spans = span::live_stack();

    // Human-readable context on stderr (the chained default hook prints
    // the message itself; we add the span that was live).
    if let Some(stack) = spans.as_ref().filter(|s| !s.is_empty()) {
        // Entries are full dotted paths; the innermost carries the rest.
        eprintln!(
            "kgtosa: panic inside span `{}`",
            stack.last().map(String::as_str).unwrap_or("?")
        );
    }

    let mut fields = vec![("msg".to_string(), Json::Str(msg))];
    if let Some(loc) = location {
        fields.push(("location".to_string(), Json::Str(loc)));
    }
    match spans {
        Some(stack) => fields.push((
            "spans".to_string(),
            Json::Arr(stack.into_iter().map(Json::Str).collect()),
        )),
        None => fields.push(("spans_unavailable".to_string(), Json::Bool(true))),
    }
    sink::emit_event_panic_safe("panic", fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_chains() {
        install_panic_hook();
        install_panic_hook();
        assert!(panic_hook_installed());
        // A caught panic must still unwind normally through the hook.
        let caught = std::panic::catch_unwind(|| {
            let _g = crate::span("panic_hook_test.op");
            panic!("synthetic failure for the hook test");
        });
        assert!(caught.is_err());
        // And the span stack must be usable again afterwards.
        assert_eq!(crate::span("panic_hook_test.after").finish().path, "panic_hook_test.after");
    }
}
