//! Progress / ETA tracking for long-running phases, plus the heartbeat
//! flusher that keeps the JSONL trace usable when a run is killed.
//!
//! Long phases (per-epoch training loops, paged RDF fetch, BRW/IBS
//! sampling) register a [`Progress`] task with a unit count; workers call
//! [`Progress::advance`] as units complete. The process-global snapshot
//! ([`progress_snapshot`] / [`progress_json`]) derives throughput and an
//! ETA from elapsed wall time, and is served live on `/progress` by the
//! embedded metrics server and mirrored into the JSONL trace by the
//! heartbeat thread.
//!
//! Everything on the hot path is one atomic add; registration takes a
//! short write lock once per phase.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use crate::json::Json;
use crate::sink;

/// Sentinel bit pattern meaning "still running" in `end_s_bits`.
const RUNNING: u64 = u64::MAX;

#[derive(Debug)]
struct TaskState {
    name: String,
    /// Telemetry context current when the task was registered, if any.
    ctx: Option<u64>,
    /// Total units of work; 0 means unknown (no ETA, rate only).
    total: AtomicU64,
    done: AtomicU64,
    started: Instant,
    /// Elapsed seconds at completion as f64 bits, or [`RUNNING`].
    end_s_bits: AtomicU64,
}

impl TaskState {
    fn elapsed_s(&self) -> f64 {
        let bits = self.end_s_bits.load(Ordering::Relaxed);
        if bits == RUNNING {
            self.started.elapsed().as_secs_f64()
        } else {
            f64::from_bits(bits)
        }
    }

    fn finished(&self) -> bool {
        self.end_s_bits.load(Ordering::Relaxed) != RUNNING
    }
}

/// Handle to one registered progress task. Cloning shares the task;
/// dropping the last handle marks the task finished.
#[derive(Debug, Clone)]
pub struct Progress {
    state: Arc<TaskState>,
}

impl Progress {
    /// Records `n` completed units.
    pub fn advance(&self, n: u64) {
        self.state.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the completed-unit count (for phases that track an
    /// absolute position, e.g. epoch index).
    pub fn set_done(&self, n: u64) {
        self.state.done.store(n, Ordering::Relaxed);
    }

    /// (Re)declares the total unit count once it becomes known.
    pub fn set_total(&self, n: u64) {
        self.state.total.store(n, Ordering::Relaxed);
    }

    /// Marks the task complete now (idempotent; also done by `Drop` of the
    /// last handle).
    pub fn finish(&self) {
        let elapsed = self.state.started.elapsed().as_secs_f64();
        let _ = self.state.end_s_bits.compare_exchange(
            RUNNING,
            elapsed.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        // The registry itself holds one Arc, so "last external handle" is
        // a strong count of 2: this handle plus the registry's.
        if Arc::strong_count(&self.state) <= 2 {
            self.finish();
        }
    }
}

/// One task's state at snapshot time.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// Task name as registered (`train[RGCN]`, `rdf.fetch`, `sample.brw`).
    pub name: String,
    /// Units completed.
    pub done: u64,
    /// Total units, when known.
    pub total: Option<u64>,
    /// Seconds since registration (frozen at completion).
    pub elapsed_s: f64,
    /// Completed units per second.
    pub rate_per_s: f64,
    /// Estimated seconds to completion; `None` while the total is unknown,
    /// no unit has completed yet, or the task already finished.
    pub eta_s: Option<f64>,
    /// Whether the phase has completed.
    pub finished: bool,
    /// Telemetry context the task belongs to, when registered inside one.
    pub ctx: Option<u64>,
}

fn tasks() -> &'static RwLock<Vec<Arc<TaskState>>> {
    static TASKS: OnceLock<RwLock<Vec<Arc<TaskState>>>> = OnceLock::new();
    TASKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Oldest finished tasks are evicted past this many registrations, so a
/// long-lived server process cannot grow the registry without bound.
const MAX_TASKS: usize = 256;

/// Registers a new progress task. `total` is the unit count when known
/// (`None` leaves the ETA open until [`Progress::set_total`]).
pub fn progress_task(name: &str, total: Option<u64>) -> Progress {
    let state = Arc::new(TaskState {
        name: name.to_string(),
        ctx: crate::context::current_id(),
        total: AtomicU64::new(total.unwrap_or(0)),
        done: AtomicU64::new(0),
        started: Instant::now(),
        end_s_bits: AtomicU64::new(RUNNING),
    });
    let mut list = tasks().write().unwrap_or_else(std::sync::PoisonError::into_inner);
    if list.len() >= MAX_TASKS {
        if let Some(i) = list.iter().position(|t| t.finished()) {
            list.remove(i);
        }
    }
    list.push(Arc::clone(&state));
    Progress { state }
}

/// Derives `(rate_per_s, eta_s)` from raw task state. Total guard rails:
/// the rate is always finite (a zero or denormal-tiny elapsed time yields
/// rate 0, not `inf`), and the ETA is `None` rather than `NaN`/`inf` for
/// zero-rate, unknown-total, or finished tasks — so neither `/progress`
/// JSON nor the Prometheus exposition can ever carry a non-finite number
/// born here.
pub(crate) fn derive_rate_eta(
    done: u64,
    total: Option<u64>,
    elapsed_s: f64,
    finished: bool,
) -> (f64, Option<f64>) {
    let raw_rate = if elapsed_s > 0.0 { done as f64 / elapsed_s } else { 0.0 };
    let rate_per_s = if raw_rate.is_finite() { raw_rate } else { 0.0 };
    let eta_s = match total {
        Some(n) if !finished && done > 0 && rate_per_s > 0.0 => {
            Some(n.saturating_sub(done) as f64 / rate_per_s)
        }
        _ => None,
    };
    (rate_per_s, eta_s.filter(|e| e.is_finite()))
}

/// Snapshots every registered task, oldest first.
pub fn progress_snapshot() -> Vec<ProgressSnapshot> {
    tasks()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|t| {
            let done = t.done.load(Ordering::Relaxed);
            let total = match t.total.load(Ordering::Relaxed) {
                0 => None,
                n => Some(n),
            };
            let elapsed_s = t.elapsed_s();
            let finished = t.finished();
            let (rate_per_s, eta_s) = derive_rate_eta(done, total, elapsed_s, finished);
            ProgressSnapshot {
                name: t.name.clone(),
                done,
                total,
                elapsed_s,
                rate_per_s,
                eta_s,
                finished,
                ctx: t.ctx,
            }
        })
        .collect()
}

/// The `/progress` payload: `{"tasks": [...]}`, one object per task.
pub fn progress_json() -> Json {
    let items = progress_snapshot()
        .into_iter()
        .map(|s| {
            let mut fields = vec![
                ("name".to_string(), Json::Str(s.name)),
                ("done".to_string(), Json::Num(s.done as f64)),
                (
                    "total".to_string(),
                    s.total.map_or(Json::Null, |n| Json::Num(n as f64)),
                ),
                ("elapsed_s".to_string(), Json::Num(s.elapsed_s)),
                ("rate_per_s".to_string(), Json::Num(s.rate_per_s)),
                ("eta_s".to_string(), s.eta_s.map_or(Json::Null, Json::Num)),
                ("finished".to_string(), Json::Bool(s.finished)),
            ];
            if let (Some(total), done) = (s.total, s.done) {
                fields.push((
                    "pct".to_string(),
                    Json::Num(100.0 * done as f64 / total.max(1) as f64),
                ));
            }
            if let Some(ctx) = s.ctx {
                fields.push(("ctx".to_string(), Json::Num(ctx as f64)));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![("tasks".to_string(), Json::Arr(items))])
}

/// Clears the task list (tests only; live handles keep working detached).
pub fn reset_progress() {
    tasks().write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
}

/// Writes one `heartbeat` event (progress + instrument counts) into the
/// JSONL trace and flushes it, so a later `kill -9` still leaves every
/// event up to the last heartbeat on disk. No-op without a trace sink.
pub fn emit_heartbeat() {
    // Heartbeat ticks double as the Chrome counter-track sampler (no-op
    // while the exporter is disarmed).
    crate::chrome::sample_counter_tracks();
    if !sink::trace_enabled() {
        return;
    }
    let snap = progress_snapshot();
    let active = snap.iter().filter(|s| !s.finished).count();
    sink::emit_event(
        "heartbeat",
        vec![
            ("active_tasks".into(), Json::Num(active as f64)),
            ("progress".into(), match progress_json() {
                Json::Obj(mut fields) if !fields.is_empty() => fields.remove(0).1,
                other => other,
            }),
        ],
    );
    sink::flush_trace();
}

static HEARTBEAT_STARTED: AtomicBool = AtomicBool::new(false);
static HEARTBEAT_STOP: AtomicBool = AtomicBool::new(false);

/// Starts the background heartbeat thread (idempotent). Every
/// `interval_ms` it snapshots progress into the trace via
/// [`emit_heartbeat`]. Interval 0 disables the thread entirely.
pub fn start_heartbeat(interval_ms: u64) {
    if interval_ms == 0 || HEARTBEAT_STARTED.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = std::thread::Builder::new()
        .name("kgtosa-heartbeat".into())
        .spawn(move || {
            // Sleep in short slices so shutdown is prompt even with long
            // heartbeat intervals.
            let slice = std::time::Duration::from_millis(interval_ms.min(200));
            let mut acc = 0u64;
            loop {
                if HEARTBEAT_STOP.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(slice);
                acc += slice.as_millis() as u64;
                if acc >= interval_ms {
                    acc = 0;
                    emit_heartbeat();
                }
            }
        });
}

/// Reads `KGTOSA_HEARTBEAT_MS` (default 1000) and starts the flusher.
pub fn start_heartbeat_from_env() {
    let interval = std::env::var("KGTOSA_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    start_heartbeat(interval);
}

/// Signals the heartbeat thread to exit (called by [`crate::shutdown`]).
pub(crate) fn stop_heartbeat() {
    HEARTBEAT_STOP.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_eta() {
        let p = progress_task("test.progress.eta", Some(100));
        p.advance(20);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let snap = progress_snapshot();
        let s = snap.iter().find(|s| s.name == "test.progress.eta").unwrap();
        assert_eq!(s.done, 20);
        assert_eq!(s.total, Some(100));
        assert!(!s.finished);
        assert!(s.rate_per_s > 0.0);
        let eta = s.eta_s.expect("eta is known");
        // 80 remaining units at the observed rate.
        assert!((eta - 80.0 / s.rate_per_s).abs() < 1e-6);
    }

    #[test]
    fn eta_shrinks_as_work_completes() {
        let p = progress_task("test.progress.shrink", Some(1000));
        p.advance(10);
        std::thread::sleep(std::time::Duration::from_millis(10));
        let eta1 = progress_snapshot()
            .iter()
            .find(|s| s.name == "test.progress.shrink")
            .and_then(|s| s.eta_s)
            .unwrap();
        p.advance(700);
        let eta2 = progress_snapshot()
            .iter()
            .find(|s| s.name == "test.progress.shrink")
            .and_then(|s| s.eta_s)
            .unwrap();
        assert!(eta2 < eta1, "eta must advance with progress: {eta2} vs {eta1}");
    }

    #[test]
    fn unknown_total_has_no_eta() {
        let p = progress_task("test.progress.unknown", None);
        p.advance(5);
        let snap = progress_snapshot();
        let s = snap.iter().find(|s| s.name == "test.progress.unknown").unwrap();
        assert_eq!(s.total, None);
        assert!(s.eta_s.is_none());
        p.set_total(10);
        let snap = progress_snapshot();
        let s = snap.iter().find(|s| s.name == "test.progress.unknown").unwrap();
        assert_eq!(s.total, Some(10));
    }

    #[test]
    fn drop_marks_finished_and_freezes_elapsed() {
        {
            let p = progress_task("test.progress.drop", Some(2));
            p.advance(2);
        }
        let snap = progress_snapshot();
        let s = snap.iter().find(|s| s.name == "test.progress.drop").unwrap();
        assert!(s.finished);
        assert!(s.eta_s.is_none());
        let frozen = s.elapsed_s;
        std::thread::sleep(std::time::Duration::from_millis(5));
        let again = progress_snapshot();
        let s2 = again.iter().find(|s| s.name == "test.progress.drop").unwrap();
        assert_eq!(s2.elapsed_s, frozen, "elapsed is frozen at completion");
    }

    #[test]
    fn clones_share_state_and_do_not_finish_early() {
        let p = progress_task("test.progress.clone", Some(4));
        let q = p.clone();
        drop(q);
        p.advance(1);
        let snap = progress_snapshot();
        let s = snap.iter().find(|s| s.name == "test.progress.clone").unwrap();
        assert!(!s.finished, "dropping one of two handles must not finish");
        assert_eq!(s.done, 1);
    }

    #[test]
    fn rate_and_eta_never_go_non_finite() {
        // Zero elapsed: rate must be 0, not inf/NaN.
        assert_eq!(derive_rate_eta(100, Some(200), 0.0, false), (0.0, None));
        assert_eq!(derive_rate_eta(0, Some(200), 0.0, false), (0.0, None));
        // Denormal-tiny elapsed would overflow the division to inf.
        let (rate, eta) = derive_rate_eta(u64::MAX, Some(u64::MAX), f64::MIN_POSITIVE, false);
        assert!(rate.is_finite(), "rate overflowed: {rate}");
        assert!(eta.is_none_or(|e| e.is_finite()));
        // Unknown total / finished task: no ETA even with a healthy rate.
        assert_eq!(derive_rate_eta(10, None, 1.0, false).1, None);
        assert_eq!(derive_rate_eta(10, Some(20), 1.0, true).1, None);
        // The healthy case still works.
        let (rate, eta) = derive_rate_eta(50, Some(100), 10.0, false);
        assert_eq!(rate, 5.0);
        assert_eq!(eta, Some(10.0));
    }

    #[test]
    fn progress_json_never_contains_nan_or_inf_tokens() {
        let p = progress_task("test.progress.nonfinite", Some(7));
        p.advance(3);
        let text = progress_json().to_string();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        // And the full snapshot path agrees with the derivation guard.
        for s in progress_snapshot() {
            assert!(s.rate_per_s.is_finite(), "{}: {}", s.name, s.rate_per_s);
            assert!(s.eta_s.is_none_or(|e| e.is_finite()), "{}", s.name);
        }
    }

    #[test]
    fn progress_json_shape() {
        let p = progress_task("test.progress.json", Some(8));
        p.advance(2);
        let json = progress_json();
        let tasks = match json.get("tasks") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected tasks array, got {other:?}"),
        };
        let task = tasks
            .iter()
            .find(|t| t.get("name").and_then(Json::as_str) == Some("test.progress.json"))
            .unwrap();
        assert_eq!(task.get("done").unwrap().as_f64(), Some(2.0));
        assert_eq!(task.get("total").unwrap().as_f64(), Some(8.0));
        assert_eq!(task.get("pct").unwrap().as_f64(), Some(25.0));
        assert_eq!(task.get("finished").unwrap().as_bool(), Some(false));
    }
}
