//! Minimal JSON value model with a writer and a recursive-descent parser.
//!
//! The obs crate hand-rolls its events (no serde dependency); the parser
//! exists so `kgtosa trace-summary` and the e2e tests can read the JSONL
//! stream back without external crates.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn round_trip() {
        let src = r#"{"ev":"span","name":"a.b","wall_s":0.25,"ok":true,"tags":[1,2,null],"msg":"x\"y\n中"}"#;
        let parsed = Json::parse(src).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("a.b"));
        assert_eq!(parsed.get("wall_s").unwrap().as_f64(), Some(0.25));
        let reparsed = Json::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} extra").is_err());
    }
}
