//! Prometheus text exposition (format version 0.0.4) of the live
//! registry: counters, gauges, histograms, per-span aggregates, and the
//! progress tasks — what the embedded server returns on `/metrics`.
//!
//! Naming follows the Prometheus conventions: every family is prefixed
//! `kgtosa_`, dots become underscores, counters end in `_total`, and
//! histograms expose cumulative `_bucket{le="..."}` series plus `_sum`
//! and `_count`.

use std::fmt::Write as _;

use crate::progress::progress_snapshot;
use crate::registry;

/// Maps an internal dotted metric name onto a Prometheus metric name.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' if i > 0 => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// Escapes a label value (`\`, `"`, and newline per the exposition spec).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 the way Prometheus expects (`+Inf` / `-Inf` / `NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        v.to_string()
    }
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the entire registry + progress state in exposition format.
pub fn render_prometheus() -> String {
    let mut out = String::with_capacity(4096);

    // Live request-scoped contexts (the per-request view lives at
    // `/contexts`; this is the fleet-level count a dashboard alerts on).
    family(
        &mut out,
        "kgtosa_active_contexts",
        "gauge",
        "Live telemetry contexts",
    );
    let _ = writeln!(out, "kgtosa_active_contexts {}", crate::context::active_context_count());

    for (name, value) in registry::counter_values() {
        let metric = format!("kgtosa_{}_total", sanitize_name(&name));
        family(&mut out, &metric, "counter", "kgtosa counter");
        let _ = writeln!(out, "{metric} {value}");
    }

    for (name, value) in registry::gauge_values() {
        let metric = format!("kgtosa_{}", sanitize_name(&name));
        family(&mut out, &metric, "gauge", "kgtosa gauge");
        let _ = writeln!(out, "{metric} {value}");
    }

    for (name, value) in registry::gauge_f64_values() {
        let metric = format!("kgtosa_{}", sanitize_name(&name));
        family(&mut out, &metric, "gauge", "kgtosa gauge");
        let _ = writeln!(out, "{metric} {}", fmt_f64(value));
    }

    for (name, hist) in registry::histogram_handles() {
        let metric = format!("kgtosa_{}", sanitize_name(&name));
        family(&mut out, &metric, "histogram", "kgtosa histogram");
        let mut cumulative = 0u64;
        for (edge, count) in hist.bucket_counts() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{metric}_bucket{{le=\"{}\"}} {cumulative}",
                fmt_f64(edge)
            );
        }
        let _ = writeln!(out, "{metric}_sum {}", fmt_f64(hist.sum()));
        let _ = writeln!(out, "{metric}_count {}", hist.count());
    }

    let spans = registry::span_stats();
    if !spans.is_empty() {
        family(
            &mut out,
            "kgtosa_span_seconds_total",
            "counter",
            "Cumulative wall time per span",
        );
        for (name, stat) in &spans {
            let _ = writeln!(
                out,
                "kgtosa_span_seconds_total{{span=\"{}\"}} {}",
                escape_label(name),
                fmt_f64(stat.total_s)
            );
        }
        family(
            &mut out,
            "kgtosa_span_executions_total",
            "counter",
            "Completed executions per span",
        );
        for (name, stat) in &spans {
            let _ = writeln!(
                out,
                "kgtosa_span_executions_total{{span=\"{}\"}} {}",
                escape_label(name),
                stat.count
            );
        }
        family(
            &mut out,
            "kgtosa_span_peak_heap_delta_bytes",
            "gauge",
            "Largest single-execution peak-heap growth per span",
        );
        for (name, stat) in &spans {
            let _ = writeln!(
                out,
                "kgtosa_span_peak_heap_delta_bytes{{span=\"{}\"}} {}",
                escape_label(name),
                stat.peak_delta_max
            );
        }
        family(
            &mut out,
            "kgtosa_span_allocs_total",
            "counter",
            "Heap allocations per span",
        );
        for (name, stat) in &spans {
            let _ = writeln!(
                out,
                "kgtosa_span_allocs_total{{span=\"{}\"}} {}",
                escape_label(name),
                stat.allocs
            );
        }
    }

    let progress = progress_snapshot();
    if !progress.is_empty() {
        family(
            &mut out,
            "kgtosa_progress_done",
            "gauge",
            "Completed units per progress task",
        );
        for task in &progress {
            let _ = writeln!(
                out,
                "kgtosa_progress_done{{task=\"{}\"}} {}",
                escape_label(&task.name),
                task.done
            );
        }
        family(
            &mut out,
            "kgtosa_progress_total",
            "gauge",
            "Declared total units per progress task (absent while unknown)",
        );
        for task in &progress {
            if let Some(total) = task.total {
                let _ = writeln!(
                    out,
                    "kgtosa_progress_total{{task=\"{}\"}} {total}",
                    escape_label(&task.name)
                );
            }
        }
        family(
            &mut out,
            "kgtosa_progress_eta_seconds",
            "gauge",
            "Estimated seconds to completion per running task",
        );
        for task in &progress {
            if let Some(eta) = task.eta_s {
                let _ = writeln!(
                    out,
                    "kgtosa_progress_eta_seconds{{task=\"{}\"}} {}",
                    escape_label(&task.name),
                    fmt_f64(eta)
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize_name("rdf.fetch.pages"), "rdf_fetch_pages");
        assert_eq!(sanitize_name("train.epoch_s"), "train_epoch_s");
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        // All three escapes combined; a pre-escaped backslash must not be
        // double-interpreted (escape the backslash itself, then the rest).
        assert_eq!(escape_label("x\\\"y\nz"), "x\\\\\\\"y\\nz");
        assert_eq!(escape_label("already\\n"), "already\\\\n");
        // Everything else passes through verbatim.
        assert_eq!(escape_label("train.epoch[rgcn] 100%"), "train.epoch[rgcn] 100%");
    }

    #[test]
    fn sanitized_names_are_always_legal_prometheus_identifiers() {
        let legal = |s: &str| {
            !s.is_empty()
                && s.chars().enumerate().all(|(i, c)| match c {
                    'a'..='z' | 'A'..='Z' | '_' | ':' => true,
                    '0'..='9' => i > 0,
                    _ => false,
                })
        };
        for ugly in ["rdf.fetch-retries", "9lives", "träin.loss", "a b\tc", "cache.hit_ratio"] {
            assert!(legal(&sanitize_name(ugly)), "{ugly} → {}", sanitize_name(ugly));
        }
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
    }

    #[test]
    fn counters_and_gauges_render_with_types() {
        crate::counter("test.prom.counter").add(3);
        crate::gauge("test.prom.gauge").set(-4);
        let text = render_prometheus();
        assert!(text.contains("# TYPE kgtosa_test_prom_counter_total counter"));
        assert!(text.contains("kgtosa_test_prom_counter_total 3"));
        assert!(text.contains("# TYPE kgtosa_test_prom_gauge gauge"));
        assert!(text.contains("kgtosa_test_prom_gauge -4"));
    }

    #[test]
    fn active_contexts_gauge_renders_live_count() {
        let text = render_prometheus();
        assert!(text.contains("# TYPE kgtosa_active_contexts gauge"), "{text}");
        let ctx = crate::TelemetryContext::new("prom-ctx");
        let _scope = ctx.enter();
        let text = render_prometheus();
        // At least this context is live (sibling tests may hold more).
        let count: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("kgtosa_active_contexts "))
            .unwrap()
            .parse()
            .unwrap();
        assert!(count >= 1, "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = crate::histogram_with_bounds("test.prom.hist", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let text = render_prometheus();
        assert!(text.contains("# TYPE kgtosa_test_prom_hist histogram"), "{text}");
        // Cumulative: le=1 → 1, le=2 → 2, le=4 → 3, le=+Inf → 4.
        assert!(text.contains("kgtosa_test_prom_hist_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("kgtosa_test_prom_hist_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("kgtosa_test_prom_hist_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("kgtosa_test_prom_hist_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("kgtosa_test_prom_hist_sum 105"), "{text}");
        assert!(text.contains("kgtosa_test_prom_hist_count 4"), "{text}");
    }

    #[test]
    fn histogram_bucket_series_is_monotone_and_ends_at_count() {
        let h = crate::histogram_with_bounds("test.prom.mono", &[0.1, 0.2, 0.5, 1.0]);
        for i in 0..50 {
            h.observe((i as f64 * 0.031) % 1.3);
        }
        let text = render_prometheus();
        // Parse every bucket line of this family back out and check the
        // cumulative counts never decrease and the +Inf bucket equals
        // the family's _count.
        let counts: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix("kgtosa_test_prom_mono_bucket{le=\""))
            .map(|rest| rest.split("\"} ").nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), 5, "4 bounds + overflow");
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {counts:?}");
        assert_eq!(*counts.last().unwrap(), h.count());
        assert!(text.contains(&format!("kgtosa_test_prom_mono_count {}", h.count())));
    }

    #[test]
    fn f64_gauges_render() {
        crate::gauge_f64("test.prom.ratio").set(0.875);
        let text = render_prometheus();
        assert!(text.contains("# TYPE kgtosa_test_prom_ratio gauge"), "{text}");
        assert!(text.contains("kgtosa_test_prom_ratio 0.875"), "{text}");
    }

    #[test]
    fn spans_render_as_labelled_series() {
        crate::span("test_prom_span").finish();
        let text = render_prometheus();
        assert!(
            text.contains("kgtosa_span_executions_total{span=\"test_prom_span\"}"),
            "{text}"
        );
        assert!(text.contains("# TYPE kgtosa_span_seconds_total counter"));
    }

    #[test]
    fn progress_tasks_render() {
        let p = crate::progress_task("test.prom.progress", Some(10));
        p.advance(4);
        let text = render_prometheus();
        assert!(
            text.contains("kgtosa_progress_done{task=\"test.prom.progress\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("kgtosa_progress_total{task=\"test.prom.progress\"} 10"),
            "{text}"
        );
    }
}
