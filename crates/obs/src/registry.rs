//! Process-global metrics registry: named counters, gauges, fixed-bucket
//! histograms, and per-span aggregate statistics.
//!
//! Handles are `Arc`s — look a metric up once (a short RwLock critical
//! section) and update it lock-free afterwards. Registration is
//! idempotent: the same name always returns the same instrument.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::json::Json;

/// Monotonically increasing event count.
///
/// Registry-created instruments know their own name, which is what lets
/// every update additionally flow into the telemetry context current on
/// the updating thread (see [`crate::TelemetryContext`]); a
/// default-constructed instrument has no name and skips that layer.
#[derive(Debug, Default)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn named(name: &str) -> Self {
        Counter { name: name.to_string(), value: AtomicU64::new(0) }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.name.is_empty() {
            crate::context::on_counter(&self.name, n);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed level (queue depths, worker counts, …).
#[derive(Debug, Default)]
pub struct Gauge {
    name: String,
    value: AtomicI64,
}

impl Gauge {
    fn named(name: &str) -> Self {
        Gauge { name: name.to_string(), value: AtomicI64::new(0) }
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        if !self.name.is_empty() {
            crate::context::on_gauge(&self.name, v);
        }
    }

    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        if !self.name.is_empty() {
            crate::context::on_gauge(&self.name, now);
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point level, for derived ratios and rates
/// (`cache.hit_ratio`, utilizations). Stored as f64 bit patterns in an
/// `AtomicU64`, so it stays lock-free like [`Gauge`].
#[derive(Debug)]
pub struct GaugeF64 {
    name: String,
    bits: AtomicU64,
}

impl Default for GaugeF64 {
    fn default() -> Self {
        GaugeF64 { name: String::new(), bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl GaugeF64 {
    fn named(name: &str) -> Self {
        GaugeF64 { name: name.to_string(), ..Default::default() }
    }

    /// Sets the level. Non-finite values are dropped rather than stored —
    /// a ratio gauge must never poison the Prometheus exposition or the
    /// JSON snapshot with `NaN`/`inf`.
    pub fn set(&self, v: f64) {
        if v.is_finite() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
            if !self.name.is_empty() {
                crate::context::on_gauge_f64(&self.name, v);
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram. `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one overflow bucket catches everything above the last
/// bound. Sum and max are kept via CAS on f64 bit patterns, so `observe`
/// stays lock-free.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    fn new(name: &str, bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            name: name.to_string(),
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub fn observe(&self, v: f64) {
        if !self.name.is_empty() {
            crate::context::on_histogram(&self.name, v);
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS-accumulate the sum.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        // CAS-max.
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self
                .max_bits
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Quantile estimate from bucket counts: returns the upper edge of the
    /// bucket where the cumulative count crosses `q`, or the observed max
    /// for the overflow bucket. `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return if i < self.bounds.len() { self.bounds[i] } else { self.max() };
            }
        }
        self.max()
    }

    /// (upper_edge, count) pairs; the overflow bucket reports `f64::INFINITY`.
    pub fn bucket_counts(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let edge = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                (edge, b.load(Ordering::Relaxed))
            })
            .collect()
    }
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStat {
    pub count: u64,
    pub total_s: f64,
    pub max_s: f64,
    /// Largest single-span peak-heap growth observed.
    pub peak_delta_max: usize,
    /// Total allocations across all executions of this span.
    pub allocs: u64,
}

#[derive(Default)]
struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    gauges_f64: RwLock<HashMap<String, Arc<GaugeF64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    spans: RwLock<HashMap<String, SpanStat>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

pub fn counter(name: &str) -> Arc<Counter> {
    if let Some(c) = registry().counters.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(name) {
        return Arc::clone(c);
    }
    let mut map = registry().counters.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::named(name))),
    )
}

pub fn gauge(name: &str) -> Arc<Gauge> {
    if let Some(g) = registry().gauges.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(name) {
        return Arc::clone(g);
    }
    let mut map = registry().gauges.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::named(name))),
    )
}

pub fn gauge_f64(name: &str) -> Arc<GaugeF64> {
    if let Some(g) = registry().gauges_f64.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(name) {
        return Arc::clone(g);
    }
    let mut map = registry().gauges_f64.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(GaugeF64::named(name))),
    )
}

/// Default time buckets: 1µs → ~1000s, one per decade-third (1/2/5 feel).
const DEFAULT_TIME_BOUNDS: [f64; 19] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    1e-1, 1.0, 10.0, 100.0,
];

/// A histogram with the default duration buckets (seconds).
pub fn histogram(name: &str) -> Arc<Histogram> {
    histogram_with_bounds(name, &DEFAULT_TIME_BOUNDS)
}

/// A histogram with explicit upper edges. The bounds are fixed on first
/// registration; later calls with a different shape get the original.
pub fn histogram_with_bounds(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    if let Some(h) = registry().histograms.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(name) {
        return Arc::clone(h);
    }
    let mut map = registry().histograms.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(name, bounds.to_vec()))),
    )
}

pub(crate) fn record_span(name: &str, wall_s: f64, peak_delta: usize, allocs: u64) {
    let mut map = registry().spans.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    let stat = map.entry(name.to_string()).or_default();
    stat.count += 1;
    stat.total_s += wall_s;
    stat.max_s = stat.max_s.max(wall_s);
    stat.peak_delta_max = stat.peak_delta_max.max(peak_delta);
    stat.allocs += allocs;
}

/// All counters as `(name, value)`, sorted by name (Prometheus renderer).
pub(crate) fn counter_values() -> Vec<(String, u64)> {
    let mut rows: Vec<_> = registry()
        .counters
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// All gauges as `(name, value)`, sorted by name.
pub(crate) fn gauge_values() -> Vec<(String, i64)> {
    let mut rows: Vec<_> = registry()
        .gauges
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// All f64 gauges as `(name, value)`, sorted by name.
pub(crate) fn gauge_f64_values() -> Vec<(String, f64)> {
    let mut rows: Vec<_> = registry()
        .gauges_f64
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// All histogram handles, sorted by name.
pub(crate) fn histogram_handles() -> Vec<(String, Arc<Histogram>)> {
    let mut rows: Vec<_> = registry()
        .histograms
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), Arc::clone(v)))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// All span aggregates, sorted by name for stable output.
pub fn span_stats() -> Vec<(String, SpanStat)> {
    let mut rows: Vec<_> = registry()
        .spans
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Snapshot of every instrument as a JSON object — emitted as the final
/// `metrics` event when a trace stream shuts down.
pub fn metrics_snapshot() -> Json {
    let reg = registry();
    let mut counters: Vec<(String, Json)> = reg
        .counters
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(v.get() as f64)))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let mut gauges: Vec<(String, Json)> = reg
        .gauges
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(v.get() as f64)))
        .collect();
    // Integer and float gauges share one namespace in the snapshot.
    gauges.extend(
        gauge_f64_values()
            .into_iter()
            .map(|(k, v)| (k, Json::Num(v))),
    );
    gauges.sort_by(|a, b| a.0.cmp(&b.0));

    let mut histograms: Vec<(String, Json)> = reg
        .histograms
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(k, v)| {
            (
                k.clone(),
                Json::Obj(vec![
                    ("count".into(), Json::Num(v.count() as f64)),
                    ("mean".into(), Json::Num(v.mean())),
                    ("p95".into(), Json::Num(v.quantile(0.95))),
                    ("max".into(), Json::Num(v.max())),
                ]),
            )
        })
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));

    let spans: Vec<(String, Json)> = span_stats()
        .into_iter()
        .map(|(k, s)| {
            (
                k,
                Json::Obj(vec![
                    ("count".into(), Json::Num(s.count as f64)),
                    ("total_s".into(), Json::Num(s.total_s)),
                    ("max_s".into(), Json::Num(s.max_s)),
                    ("peak_delta_max".into(), Json::Num(s.peak_delta_max as f64)),
                    ("allocs".into(), Json::Num(s.allocs as f64)),
                ]),
            )
        })
        .collect();

    Json::Obj(vec![
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("histograms".into(), Json::Obj(histograms)),
        ("spans".into(), Json::Obj(spans)),
    ])
}

/// Clears every instrument. Intended for tests; existing `Arc` handles
/// keep working but are detached from future lookups.
pub fn reset_registry() {
    let reg = registry();
    reg.counters.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    reg.gauges.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    reg.gauges_f64.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    reg.histograms.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    reg.spans.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_shared_by_name() {
        let a = counter("test.reg.shared");
        let b = counter("test.reg.shared");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let g = gauge("test.reg.gauge");
        g.set(-2);
        g.add(5);
        assert_eq!(gauge("test.reg.gauge").get(), 3);
    }

    #[test]
    fn histogram_bucketing() {
        let h = histogram_with_bounds("test.reg.hist", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.0).abs() < 1e-9);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        assert_eq!(h.max(), 100.0);
        let buckets = h.bucket_counts();
        // <=1.0: {0.5, 1.0}; <=2.0: {1.5}; <=4.0: {3.0}; overflow: {100.0}
        assert_eq!(buckets[0], (1.0, 2));
        assert_eq!(buckets[1], (2.0, 1));
        assert_eq!(buckets[2], (4.0, 1));
        assert_eq!(buckets[3].1, 1);
        assert!(buckets[3].0.is_infinite());
        // Quantiles: p40 lands in the first bucket, p99 in overflow (= max).
        assert_eq!(h.quantile(0.4), 1.0);
        assert_eq!(h.quantile(0.99), 100.0);
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn histogram_concurrent_observe() {
        let h = histogram_with_bounds("test.reg.hist.par", &[10.0]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe(i as f64 % 5.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 4.0 * (0.0 + 1.0 + 2.0 + 3.0 + 4.0) * 200.0).abs() < 1e-6);
    }

    #[test]
    fn f64_gauge_stores_ratios_and_rejects_non_finite() {
        let g = gauge_f64("test.reg.ratio");
        g.set(0.75);
        assert_eq!(gauge_f64("test.reg.ratio").get(), 0.75);
        g.set(f64::NAN);
        g.set(f64::INFINITY);
        assert_eq!(g.get(), 0.75, "non-finite writes must be dropped");
        let snap = metrics_snapshot();
        assert_eq!(
            snap.get("gauges").unwrap().get("test.reg.ratio").unwrap().as_f64(),
            Some(0.75)
        );
    }

    #[test]
    fn snapshot_contains_instruments() {
        counter("test.reg.snap").add(7);
        let snap = metrics_snapshot();
        let counters = snap.get("counters").unwrap();
        assert_eq!(counters.get("test.reg.snap").unwrap().as_f64(), Some(7.0));
    }
}
