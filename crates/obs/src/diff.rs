//! Trace-to-trace regression diffing: the engine behind
//! `kgtosa trace-diff` and the CI perf gate.
//!
//! Compares two runs span-by-span on wall time, peak heap, and allocation
//! count, flags any span that regressed beyond a percentage threshold,
//! and renders a delta table. Inputs are either JSONL traces (as written
//! by `--trace-out` / `KGTOSA_TRACE`) or `BENCH_*.json` kernel reports —
//! the format is auto-detected, so the same gate covers both the tracing
//! pipeline and the kernel benchmarks.

use crate::json::Json;
use crate::summary::{summarize_jsonl, SpanAgg};

/// Knobs of the regression check.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Allowed growth before a span counts as regressed, in percent
    /// (`25.0` = new may be up to 1.25× old).
    pub threshold_pct: f64,
    /// Spans whose baseline wall time is below this are never flagged on
    /// time (micro-spans are timer noise).
    pub min_seconds: f64,
    /// Baseline peak-heap floor (bytes) below which heap growth is not
    /// flagged.
    pub min_bytes: usize,
    /// Baseline allocation-count floor below which alloc growth is not
    /// flagged.
    pub min_allocs: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            threshold_pct: 25.0,
            min_seconds: 1e-3,
            min_bytes: 1 << 20,
            min_allocs: 10_000,
        }
    }
}

/// One span's before/after comparison.
#[derive(Debug, Clone)]
pub struct DiffRow {
    pub name: String,
    pub old_s: f64,
    pub new_s: f64,
    /// Wall-time change in percent (positive = slower).
    pub delta_pct: f64,
    pub old_peak: usize,
    pub new_peak: usize,
    pub old_allocs: u64,
    pub new_allocs: u64,
    /// Dimensions that regressed beyond the threshold (`wall`, `heap`,
    /// `allocs`); empty when the span passes.
    pub regressed: Vec<&'static str>,
}

/// The full comparison of two runs.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Spans present in both runs, sorted by wall-time delta (worst first).
    pub rows: Vec<DiffRow>,
    /// Span names only in the baseline (phase disappeared).
    pub only_old: Vec<String>,
    /// Span names only in the new run (phase appeared).
    pub only_new: Vec<String>,
    /// The threshold the check ran with.
    pub threshold_pct: f64,
}

impl DiffReport {
    /// Number of spans that regressed on at least one dimension.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| !r.regressed.is_empty()).count()
    }

    /// Renders the aligned delta table plus the appeared/disappeared notes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let headers = ["span", "old(s)", "new(s)", "Δ%", "old peak", "new peak", "allocs Δ", "status"];
        let mut cells: Vec<[String; 8]> = vec![headers.map(str::to_string)];
        for r in &self.rows {
            let alloc_delta = r.new_allocs as i128 - r.old_allocs as i128;
            cells.push([
                r.name.clone(),
                format!("{:.4}", r.old_s),
                format!("{:.4}", r.new_s),
                format!("{:+.1}", r.delta_pct),
                kgtosa_memtrack::format_bytes(r.old_peak),
                kgtosa_memtrack::format_bytes(r.new_peak),
                format!("{alloc_delta:+}"),
                if r.regressed.is_empty() {
                    "ok".to_string()
                } else {
                    format!("REGRESSED({})", r.regressed.join(","))
                },
            ]);
        }
        let mut widths = [0usize; 8];
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (i, row) in cells.iter().enumerate() {
            for (j, (cell, width)) in row.iter().zip(widths).enumerate() {
                if j == 0 {
                    out.push_str(&format!("{cell:<width$}"));
                } else {
                    out.push_str(&format!("  {cell:>width$}"));
                }
            }
            out.push('\n');
            if i == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        if !self.only_old.is_empty() {
            out.push_str(&format!("only in baseline: {}\n", self.only_old.join(", ")));
        }
        if !self.only_new.is_empty() {
            out.push_str(&format!("only in new run:  {}\n", self.only_new.join(", ")));
        }
        out
    }
}

/// Parses either a JSONL trace or a `BENCH_*.json` kernel report into
/// span aggregates. Kernel rows key as `<kernel>@<threads>t`.
pub fn parse_trace_or_bench(text: &str) -> Result<Vec<SpanAgg>, String> {
    // A bench report is one (pretty-printed) JSON document with a `rows`
    // array; a trace is one JSON object per line.
    if let Ok(doc) = Json::parse(text.trim()) {
        if let Some(Json::Arr(rows)) = doc.get("rows") {
            return parse_bench_rows(rows);
        }
        if doc.get("ev").is_none() {
            return Err("JSON document has no `rows` array (not a BENCH_*.json) \
                        and no `ev` field (not a JSONL trace)"
                .to_string());
        }
    }
    summarize_jsonl(text)
}

fn parse_bench_rows(rows: &[Json]) -> Result<Vec<SpanAgg>, String> {
    let mut out: Vec<SpanAgg> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let kernel = row
            .get("kernel")
            .or_else(|| row.get("name"))
            .and_then(Json::as_str)
            .ok_or_else(|| format!("bench row {i}: missing `kernel`/`name`"))?;
        let seconds = row
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("bench row {i}: missing `seconds`"))?;
        let name = match row.get("threads").and_then(Json::as_f64) {
            Some(t) => format!("{kernel}@{}t", t as u64),
            None => kernel.to_string(),
        };
        out.push(SpanAgg {
            name,
            count: 1,
            total_s: seconds,
            mean_s: seconds,
            p95_s: seconds,
            max_s: seconds,
            peak_max_bytes: 0,
            allocs: 0,
        });
    }
    Ok(out)
}

/// Compares baseline aggregates against a new run's.
pub fn diff_spans(old: &[SpanAgg], new: &[SpanAgg], opts: &DiffOptions) -> DiffReport {
    let factor = 1.0 + opts.threshold_pct / 100.0;
    let mut rows = Vec::new();
    let mut only_old = Vec::new();
    for o in old {
        let Some(n) = new.iter().find(|n| n.name == o.name) else {
            only_old.push(o.name.clone());
            continue;
        };
        let mut regressed = Vec::new();
        if o.total_s >= opts.min_seconds && n.total_s > o.total_s * factor {
            regressed.push("wall");
        }
        if o.peak_max_bytes >= opts.min_bytes
            && n.peak_max_bytes as f64 > o.peak_max_bytes as f64 * factor
        {
            regressed.push("heap");
        }
        if o.allocs >= opts.min_allocs && n.allocs as f64 > o.allocs as f64 * factor {
            regressed.push("allocs");
        }
        let delta_pct = if o.total_s > 0.0 {
            100.0 * (n.total_s - o.total_s) / o.total_s
        } else {
            0.0
        };
        rows.push(DiffRow {
            name: o.name.clone(),
            old_s: o.total_s,
            new_s: n.total_s,
            delta_pct,
            old_peak: o.peak_max_bytes,
            new_peak: n.peak_max_bytes,
            old_allocs: o.allocs,
            new_allocs: n.allocs,
            regressed,
        });
    }
    let only_new = new
        .iter()
        .filter(|n| !old.iter().any(|o| o.name == n.name))
        .map(|n| n.name.clone())
        .collect();
    rows.sort_by(|a, b| b.delta_pct.partial_cmp(&a.delta_pct).unwrap_or(std::cmp::Ordering::Equal));
    DiffReport {
        rows,
        only_old,
        only_new,
        threshold_pct: opts.threshold_pct,
    }
}

/// End-to-end: parse two files' contents and diff them.
pub fn diff_trace_texts(old: &str, new: &str, opts: &DiffOptions) -> Result<DiffReport, String> {
    let old_rows = parse_trace_or_bench(old).map_err(|e| format!("baseline: {e}"))?;
    let new_rows = parse_trace_or_bench(new).map_err(|e| format!("new run: {e}"))?;
    Ok(diff_spans(&old_rows, &new_rows, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(name: &str, total_s: f64, peak: usize, allocs: u64) -> SpanAgg {
        SpanAgg {
            name: name.to_string(),
            count: 1,
            total_s,
            mean_s: total_s,
            p95_s: total_s,
            max_s: total_s,
            peak_max_bytes: peak,
            allocs,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let rows = vec![agg("a", 1.0, 4 << 20, 100_000), agg("b", 0.5, 0, 0)];
        let report = diff_spans(&rows, &rows, &DiffOptions::default());
        assert_eq!(report.regressions(), 0);
        assert!(report.only_old.is_empty() && report.only_new.is_empty());
    }

    #[test]
    fn wall_time_regression_flagged_beyond_threshold() {
        let old = vec![agg("slow", 1.0, 0, 0)];
        let ok = vec![agg("slow", 1.2, 0, 0)];
        let bad = vec![agg("slow", 1.3, 0, 0)];
        let opts = DiffOptions { threshold_pct: 25.0, ..Default::default() };
        assert_eq!(diff_spans(&old, &ok, &opts).regressions(), 0);
        let report = diff_spans(&old, &bad, &opts);
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.rows[0].regressed, vec!["wall"]);
        assert!((report.rows[0].delta_pct - 30.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_spans_are_not_flagged_on_time() {
        // 10x slower, but below the min_seconds floor.
        let old = vec![agg("micro", 1e-5, 0, 0)];
        let new = vec![agg("micro", 1e-4, 0, 0)];
        assert_eq!(diff_spans(&old, &new, &DiffOptions::default()).regressions(), 0);
    }

    #[test]
    fn heap_and_alloc_regressions() {
        let old = vec![agg("x", 1.0, 10 << 20, 1_000_000)];
        let new = vec![agg("x", 1.0, 20 << 20, 2_000_000)];
        let report = diff_spans(&old, &new, &DiffOptions::default());
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.rows[0].regressed, vec!["heap", "allocs"]);
    }

    #[test]
    fn appeared_and_disappeared_spans_reported_not_flagged() {
        let old = vec![agg("gone", 1.0, 0, 0), agg("both", 1.0, 0, 0)];
        let new = vec![agg("both", 1.0, 0, 0), agg("fresh", 9.0, 0, 0)];
        let report = diff_spans(&old, &new, &DiffOptions::default());
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.only_old, vec!["gone"]);
        assert_eq!(report.only_new, vec!["fresh"]);
        let table = report.render();
        assert!(table.contains("only in baseline: gone"));
        assert!(table.contains("only in new run:  fresh"));
    }

    #[test]
    fn bench_report_parses_and_diffs() {
        let old = r#"{"available_parallelism": 8, "rows": [
            {"kernel": "matmul", "threads": 1, "seconds": 0.010},
            {"kernel": "matmul", "threads": 4, "seconds": 0.004}
        ]}"#;
        let new = r#"{"available_parallelism": 8, "rows": [
            {"kernel": "matmul", "threads": 1, "seconds": 0.011},
            {"kernel": "matmul", "threads": 4, "seconds": 0.009}
        ]}"#;
        let report = diff_trace_texts(old, new, &DiffOptions::default()).unwrap();
        assert_eq!(report.rows.len(), 2);
        // 1-thread run grew 10% (ok); 4-thread run grew 125% (regressed).
        assert_eq!(report.regressions(), 1);
        let bad = report.rows.iter().find(|r| !r.regressed.is_empty()).unwrap();
        assert_eq!(bad.name, "matmul@4t");
    }

    #[test]
    fn jsonl_traces_diff_end_to_end() {
        let old = r#"{"ev":"span","t":0.1,"name":"extract.brw","wall_s":1.0,"live_bytes":0,"peak_delta_bytes":0,"allocs":0}"#;
        let same = old;
        let slow = r#"{"ev":"span","t":0.1,"name":"extract.brw","wall_s":2.0,"live_bytes":0,"peak_delta_bytes":0,"allocs":0}"#;
        assert_eq!(
            diff_trace_texts(old, same, &DiffOptions::default()).unwrap().regressions(),
            0
        );
        assert_eq!(
            diff_trace_texts(old, slow, &DiffOptions::default()).unwrap().regressions(),
            1
        );
    }

    #[test]
    fn unrecognized_json_document_is_an_error() {
        assert!(parse_trace_or_bench(r#"{"version": 3}"#).is_err());
    }
}
