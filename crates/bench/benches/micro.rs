//! Criterion micro-benchmarks for the performance-critical substrates:
//! hexastore scans, SPARQL parse+execute, dictionary interning, CSR
//! construction, PPR push, the samplers, one RGCN layer, and the three
//! TOSG extraction methods end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kgtosa_core::{extract_brw, extract_ibs, extract_sparql, GraphPattern};
use kgtosa_kg::{Dictionary, HeteroGraph, KnowledgeGraph, Vid};
use kgtosa_nn::RgcnLayer;
use kgtosa_rdf::{parse, Hexastore, RdfStore, SparqlEngine};
use kgtosa_sampler::{
    approximate_ppr, biased_random_walk, uniform_random_walk, IbsConfig, PprConfig, WalkConfig,
};
use kgtosa_tensor::xavier_uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dataset() -> kgtosa_datagen::Dataset {
    kgtosa_datagen::mag(0.05, 7)
}

fn bench_hexastore(c: &mut Criterion) {
    let d = bench_dataset();
    let triples: Vec<[u32; 3]> = d.gen.kg.triples().iter().map(|t| t.raw()).collect();
    let mut group = c.benchmark_group("hexastore");
    group.bench_function("build", |b| {
        b.iter(|| Hexastore::build(black_box(&triples)))
    });
    let hex = Hexastore::build(&triples);
    group.bench_function("scan_by_subject", |b| {
        b.iter(|| hex.scan(Some(black_box(5)), None, None).count())
    });
    group.bench_function("scan_by_predicate", |b| {
        b.iter(|| hex.scan(None, Some(black_box(1)), None).count())
    });
    group.bench_function("count_po", |b| {
        b.iter(|| hex.count(None, Some(black_box(1)), Some(10)))
    });
    group.finish();
}

fn bench_sparql(c: &mut Criterion) {
    let d = bench_dataset();
    let kg = &d.gen.kg;
    let store = RdfStore::new(kg);
    let engine = SparqlEngine::new(&store);
    let mut group = c.benchmark_group("sparql");
    let q_text = "SELECT ?s ?p ?o WHERE { ?s a <Paper> . ?s ?p ?o } LIMIT 1000";
    group.bench_function("parse", |b| b.iter(|| parse(black_box(q_text)).unwrap()));
    let q = parse(q_text).unwrap();
    group.bench_function("execute_star", |b| {
        b.iter(|| engine.execute(black_box(&q)).unwrap().len())
    });
    let join = parse("SELECT ?a ?v WHERE { ?a <writes> ?x . ?x <cites> ?v }").unwrap();
    group.bench_function("execute_join", |b| {
        b.iter(|| engine.execute(black_box(&join)).unwrap().len())
    });
    group.finish();
}

fn bench_kg_model(c: &mut Criterion) {
    let d = bench_dataset();
    let kg = &d.gen.kg;
    let mut group = c.benchmark_group("kg");
    group.bench_function("dictionary_intern_10k", |b| {
        b.iter(|| {
            let mut dict = Dictionary::with_capacity(10_000);
            for i in 0..10_000u32 {
                dict.intern(&format!("term:{i}"));
            }
            dict.len()
        })
    });
    group.bench_function("hetero_graph_build", |b| {
        b.iter(|| HeteroGraph::build(black_box(kg)).num_edges())
    });
    let g = HeteroGraph::build(kg);
    let targets = &d.nc[0].targets();
    group.bench_function("quality_stats", |b| {
        b.iter(|| kgtosa_kg::quality_with_graph(kg, &g, black_box(targets)))
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let d = bench_dataset();
    let kg = &d.gen.kg;
    let g = HeteroGraph::build(kg);
    let targets = d.nc[0].targets();
    let mut group = c.benchmark_group("samplers");
    let walk = WalkConfig { roots: 200, walk_length: 3 };
    group.bench_function("urw", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            uniform_random_walk(&g, &walk, &mut rng).len()
        })
    });
    group.bench_function("brw", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            biased_random_walk(&g, &targets, &walk, &mut rng).len()
        })
    });
    group.bench_function("ppr_push", |b| {
        b.iter(|| approximate_ppr(&g, black_box(targets[0]), &PprConfig::default()).len())
    });
    group.finish();
}

fn bench_rgcn_layer(c: &mut Criterion) {
    let d = bench_dataset();
    let g = HeteroGraph::build(&d.gen.kg);
    let mut rng = StdRng::seed_from_u64(3);
    let layer = RgcnLayer::new(g.num_relations(), 16, 16, true, &mut rng);
    let h = xavier_uniform(g.num_nodes(), 16, &mut rng);
    let mut group = c.benchmark_group("rgcn");
    group.sample_size(10);
    group.bench_function("forward", |b| {
        b.iter(|| layer.forward(&g, black_box(&h)).0.norm())
    });
    group.bench_function("forward_backward", |b| {
        b.iter(|| {
            let (out, cache) = layer.forward(&g, &h);
            let (grad_h, _) = layer.backward(&g, &h, &cache, out);
            grad_h.norm()
        })
    });
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let d = bench_dataset();
    let kg = &d.gen.kg;
    let g = HeteroGraph::build(kg);
    let task = kgtosa_bench::nc_extraction_task(&d.nc[0]);
    let store = RdfStore::new(kg);
    let mut group = c.benchmark_group("extraction");
    group.sample_size(10);
    group.bench_function("brw", |b| {
        b.iter(|| {
            extract_brw(kg, &g, &task, &WalkConfig { roots: 200, walk_length: 3 }, 1)
                .report
                .triples
        })
    });
    group.bench_function("ibs", |b| {
        b.iter(|| {
            extract_ibs(kg, &g, &task, &IbsConfig { k: 8, threads: 2, ..Default::default() })
                .report
                .triples
        })
    });
    for pattern in [GraphPattern::D1H1, GraphPattern::D2H1] {
        group.bench_with_input(
            BenchmarkId::new("sparql", pattern.label()),
            &pattern,
            |b, pattern| {
                b.iter(|| {
                    extract_sparql(&store, &task, pattern, &Default::default())
                        .unwrap()
                        .report
                        .triples
                })
            },
        );
    }
    group.finish();
}

/// Bounded Vid import usage for doc purposes.
#[allow(dead_code)]
fn _uses(_: Vid, _: KnowledgeGraph) {}

criterion_group!(
    benches,
    bench_hexastore,
    bench_sparql,
    bench_kg_model,
    bench_samplers,
    bench_rgcn_layer,
    bench_extraction
);
criterion_main!(benches);
