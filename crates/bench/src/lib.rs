//! # kgtosa-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — benchmark statistics |
//! | `table2` | Table II — task summary |
//! | `fig1` | Figure 1 — motivation: FG vs handcrafted vs KG-TOSA |
//! | `fig2_fig5` | Figures 2 & 5 — URW vs BRW sample composition |
//! | `fig6` | Figure 6 — NC tasks, 4 methods × FG/KG' |
//! | `fig7` | Figure 7 — LP tasks, 3 methods × FG/KG' |
//! | `fig8` | Figure 8 — BRW/IBS vs the four SPARQL variants |
//! | `fig9` | Figure 9 — convergence traces FG vs KG' |
//! | `table3` | Table III — subgraph quality indicators |
//! | `table4` | Table IV — cost breakdown for the six NC tasks |
//!
//! Every binary honours the environment variables `KGTOSA_SCALE` (dataset
//! scale factor, default 0.1), `KGTOSA_SEED`, `KGTOSA_EPOCHS`,
//! `KGTOSA_DIM`, and writes machine-readable JSON rows to
//! `results/<name>.json` next to the printed table.

use std::time::Instant;

use kgtosa_core::{ExtractionTask, QualityRow};
use kgtosa_datagen::{GeneratedKg, LpTask, NcTask};
use kgtosa_kg::{InducedSubgraph, Triple, Vid};
use kgtosa_models::{
    train_graphsaint_nc, train_lhgnn_lp, train_morse_lp, train_rgcn_lp, train_rgcn_nc,
    train_sehgnn_nc, train_shadowsaint_nc, LpDataset, NcDataset, SaintSampler, TrainConfig,
    TrainReport,
};
use serde::Serialize;

/// Experiment-wide knobs, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Env {
    /// Dataset scale factor relative to the `scale = 1` presets.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Training epochs per run.
    pub epochs: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl Env {
    /// Reads `KGTOSA_*` variables with bench-friendly defaults. Also arms
    /// the JSONL trace sink when `KGTOSA_TRACE` names a file and the live
    /// metrics endpoint when `KGTOSA_METRICS_ADDR` names an address, so
    /// every bench binary can be traced and scraped without code changes.
    /// A panic hook flushes the trace on crash, so a failed bench run
    /// still leaves an inspectable JSONL file behind.
    pub fn from_env() -> Self {
        kgtosa_obs::install_panic_hook();
        kgtosa_obs::init_trace_from_env();
        kgtosa_obs::init_serve_from_env();
        let get = |k: &str, d: f64| -> f64 {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Self {
            scale: get("KGTOSA_SCALE", 0.1),
            seed: get("KGTOSA_SEED", 7.0) as u64,
            epochs: get("KGTOSA_EPOCHS", 15.0) as usize,
            dim: get("KGTOSA_DIM", 16.0) as usize,
        }
    }

    /// The shared training configuration. Epoch telemetry is attached only
    /// when a trace sink is active: bench binaries run dozens of training
    /// jobs, and unconditional per-epoch stderr lines would drown the
    /// printed tables.
    pub fn train_config(&self) -> TrainConfig {
        let observer = if kgtosa_obs::trace_enabled() {
            kgtosa_obs::Observer::new(kgtosa_obs::TelemetryObserver)
        } else {
            kgtosa_obs::Observer::none()
        };
        TrainConfig {
            epochs: self.epochs,
            dim: self.dim,
            lr: 0.02,
            seed: self.seed,
            batch_size: 512,
            negatives: 4,
            margin: 2.0,
            observer,
            checkpoint: None,
        }
    }
}

/// An NC task remapped into a subgraph's id space.
pub struct NcView {
    /// Per-subgraph-vertex labels.
    pub labels: Vec<u32>,
    /// Remapped training split.
    pub train: Vec<Vid>,
    /// Remapped validation split.
    pub valid: Vec<Vid>,
    /// Remapped test split.
    pub test: Vec<Vid>,
}

/// Remaps an NC task into subgraph ids (targets lost by extraction are
/// dropped from their splits).
pub fn remap_nc(sub: &InducedSubgraph, task: &NcTask) -> NcView {
    let mut labels = vec![u32::MAX; sub.kg.num_nodes()];
    for v in 0..sub.kg.num_nodes() as u32 {
        labels[v as usize] = task.labels[sub.map_up(Vid(v)).idx()];
    }
    let map = |nodes: &[Vid]| -> Vec<Vid> {
        nodes.iter().filter_map(|&v| sub.map_down(v)).collect()
    };
    NcView {
        labels,
        train: map(&task.train),
        valid: map(&task.valid),
        test: map(&task.test),
    }
}

/// Remaps LP triples into subgraph ids, dropping triples whose endpoints
/// or predicate did not survive.
pub fn remap_lp(
    sub: &InducedSubgraph,
    parent: &kgtosa_kg::KnowledgeGraph,
    triples: &[Triple],
) -> Vec<Triple> {
    triples
        .iter()
        .filter_map(|t| {
            Some(Triple::new(
                sub.map_down(t.s)?,
                sub.kg.find_relation(parent.relation_term(t.p))?,
                sub.map_down(t.o)?,
            ))
        })
        .collect()
}

/// Builds the extraction task of an NC benchmark task.
pub fn nc_extraction_task(task: &NcTask) -> ExtractionTask {
    ExtractionTask::node_classification(&task.name, &task.target_class, task.targets())
}

/// Builds the extraction task of an LP benchmark task.
pub fn lp_extraction_task(task: &LpTask, gen: &GeneratedKg) -> ExtractionTask {
    ExtractionTask::link_prediction(
        &task.name,
        vec![task.src_class.clone(), task.dst_class.clone()],
        task.target_nodes(gen),
        &task.predicate,
    )
}

/// The four NC methods of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NcMethod {
    /// Full-batch RGCN.
    Rgcn,
    /// GraphSAINT (URW sampler).
    GraphSaint,
    /// ShaDowSAINT.
    ShadowSaint,
    /// SeHGNN.
    SeHgnn,
}

impl NcMethod {
    /// All four, in the paper's plotting order.
    pub const ALL: [NcMethod; 4] = [
        NcMethod::Rgcn,
        NcMethod::GraphSaint,
        NcMethod::ShadowSaint,
        NcMethod::SeHgnn,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NcMethod::Rgcn => "RGCN",
            NcMethod::GraphSaint => "GraphSAINT",
            NcMethod::ShadowSaint => "ShaDowSAINT",
            NcMethod::SeHgnn => "SeHGNN",
        }
    }

    /// Runs the method on a dataset view.
    pub fn run(self, data: &NcDataset<'_>, cfg: &TrainConfig) -> TrainReport {
        match self {
            NcMethod::Rgcn => train_rgcn_nc(data, cfg),
            NcMethod::GraphSaint => train_graphsaint_nc(data, cfg, SaintSampler::Uniform),
            NcMethod::ShadowSaint => train_shadowsaint_nc(data, cfg),
            NcMethod::SeHgnn => train_sehgnn_nc(data, cfg),
        }
    }
}

/// The three LP methods of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpMethod {
    /// RGCN encoder + DistMult.
    Rgcn,
    /// MorsE-TransE.
    Morse,
    /// LHGNN.
    Lhgnn,
}

impl LpMethod {
    /// All three, in the paper's plotting order.
    pub const ALL: [LpMethod; 3] = [LpMethod::Rgcn, LpMethod::Morse, LpMethod::Lhgnn];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LpMethod::Rgcn => "RGCN",
            LpMethod::Morse => "MorsE",
            LpMethod::Lhgnn => "LHGNN",
        }
    }

    /// Runs the method on a dataset view.
    pub fn run(self, data: &LpDataset<'_>, cfg: &TrainConfig) -> TrainReport {
        match self {
            LpMethod::Rgcn => train_rgcn_lp(data, cfg),
            LpMethod::Morse => train_morse_lp(data, cfg),
            LpMethod::Lhgnn => train_lhgnn_lp(data, cfg),
        }
    }
}

/// A `(result, seconds, peak_heap_bytes)` measurement of `f`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64, usize) {
    let start = Instant::now();
    let (out, peak) = kgtosa_memtrack::measure_peak(f);
    (out, start.elapsed().as_secs_f64(), peak)
}

/// One experiment record, serialized to `results/<file>.json`.
#[derive(Debug, Clone, Serialize)]
pub struct Record {
    /// Task name.
    pub task: String,
    /// Method name.
    pub method: String,
    /// Input graph label (`FG`, `KG-TOSA_d1h1`, `BRW`, ...).
    pub input: String,
    /// Final metric (accuracy or Hits@10).
    pub metric: f64,
    /// Extraction (preprocessing) seconds.
    pub extraction_s: f64,
    /// Transformation seconds.
    pub transformation_s: f64,
    /// Training seconds.
    pub training_s: f64,
    /// Inference seconds.
    pub inference_s: f64,
    /// Trainable parameters.
    pub params: usize,
    /// Peak heap bytes during the run.
    pub peak_bytes: usize,
    /// Subgraph triples (0 for FG).
    pub subgraph_triples: usize,
    /// Convergence trace (elapsed_s, metric) pairs.
    pub trace: Vec<(f64, f64)>,
}

/// Writes any serializable result set as JSON under `results/`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results");
    eprintln!("[saved {}]", path.display());
}

/// Prints a formatted metric/time/memory block like the paper's grouped
/// bar panels.
pub fn print_panel(title: &str, rows: &[Record]) {
    println!("\n=== {title} ===");
    println!(
        "{:<14} {:<14} {:>9} {:>9} {:>9} {:>9} {:>11} {:>10}",
        "method", "input", "metric", "prep(s)", "train(s)", "infer(s)", "params", "peak-mem"
    );
    for r in rows {
        println!(
            "{:<14} {:<14} {:>9.4} {:>9.2} {:>9.2} {:>9.3} {:>11} {:>10}",
            r.method,
            r.input,
            r.metric,
            r.extraction_s + r.transformation_s,
            r.training_s,
            r.inference_s,
            r.params,
            kgtosa_memtrack::format_bytes(r.peak_bytes),
        );
    }
}

/// Quality-row printing shared by the table3/fig2 binaries.
pub fn print_quality(title: &str, rows: &[QualityRow]) {
    println!("\n=== {title} ===");
    println!("{}", QualityRow::header());
    for r in rows {
        println!("{}", r.format_row());
    }
}

/// Trains an NC method on the full graph, measuring the whole
/// transform+train pipeline (Figure 6's "FG" bars).
pub fn nc_fg_record(
    kg: &kgtosa_kg::KnowledgeGraph,
    task: &NcTask,
    method: NcMethod,
    cfg: &TrainConfig,
) -> Record {
    let ((report, transformation_s), _, peak) = measure(|| {
        let (graph, transformation_s) = kgtosa_core::transform(kg);
        let data = NcDataset {
            kg,
            graph: &graph,
            labels: &task.labels,
            num_labels: task.num_labels,
            train: &task.train,
            valid: &task.valid,
            test: &task.test,
        };
        (method.run(&data, cfg), transformation_s)
    });
    record_from_report(task.name.clone(), "FG", report, 0.0, transformation_s, peak, 0)
}

/// Trains an NC method on an extracted TOSG (any extraction method),
/// measuring transform+train and carrying the extraction cost.
pub fn nc_tosg_record(
    task: &NcTask,
    extraction: &kgtosa_core::ExtractionResult,
    method: NcMethod,
    cfg: &TrainConfig,
) -> Record {
    let sub = &extraction.subgraph;
    let view = remap_nc(sub, task);
    let ((report, transformation_s), _, peak) = measure(|| {
        let (graph, transformation_s) = kgtosa_core::transform(&sub.kg);
        let data = NcDataset {
            kg: &sub.kg,
            graph: &graph,
            labels: &view.labels,
            num_labels: task.num_labels,
            train: &view.train,
            valid: &view.valid,
            test: &view.test,
        };
        (method.run(&data, cfg), transformation_s)
    });
    record_from_report(
        task.name.clone(),
        &extraction.report.method,
        report,
        extraction.report.seconds,
        transformation_s,
        peak,
        extraction.report.triples,
    )
}

/// Trains an LP method on the full graph.
pub fn lp_fg_record(
    kg: &kgtosa_kg::KnowledgeGraph,
    task: &LpTask,
    method: LpMethod,
    cfg: &TrainConfig,
) -> Record {
    let ((report, transformation_s), _, peak) = measure(|| {
        let (graph, transformation_s) = kgtosa_core::transform(kg);
        let data = LpDataset {
            kg,
            graph: &graph,
            train: &task.train,
            valid: &task.valid,
            test: &task.test,
        };
        (method.run(&data, cfg), transformation_s)
    });
    record_from_report(task.name.clone(), "FG", report, 0.0, transformation_s, peak, 0)
}

/// Trains an LP method on an extracted TOSG.
pub fn lp_tosg_record(
    parent: &kgtosa_kg::KnowledgeGraph,
    task: &LpTask,
    extraction: &kgtosa_core::ExtractionResult,
    method: LpMethod,
    cfg: &TrainConfig,
) -> Record {
    let sub = &extraction.subgraph;
    let train = remap_lp(sub, parent, &task.train);
    let valid = remap_lp(sub, parent, &task.valid);
    let test = remap_lp(sub, parent, &task.test);
    let ((report, transformation_s), _, peak) = measure(|| {
        let (graph, transformation_s) = kgtosa_core::transform(&sub.kg);
        let data = LpDataset {
            kg: &sub.kg,
            graph: &graph,
            train: &train,
            valid: &valid,
            test: &test,
        };
        (method.run(&data, cfg), transformation_s)
    });
    record_from_report(
        task.name.clone(),
        &extraction.report.method,
        report,
        extraction.report.seconds,
        transformation_s,
        peak,
        extraction.report.triples,
    )
}

fn record_from_report(
    task: String,
    input: &str,
    report: TrainReport,
    extraction_s: f64,
    transformation_s: f64,
    peak_bytes: usize,
    subgraph_triples: usize,
) -> Record {
    Record {
        task,
        method: report.method.clone(),
        input: input.to_string(),
        metric: report.metric,
        extraction_s,
        transformation_s,
        training_s: report.training_s,
        inference_s: report.inference_s,
        params: report.param_count,
        peak_bytes,
        subgraph_triples,
        trace: report.trace.iter().map(|p| (p.elapsed_s, p.metric)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let env = Env::from_env();
        assert!(env.scale > 0.0);
        assert!(env.epochs > 0);
    }

    #[test]
    fn method_tables_complete() {
        assert_eq!(NcMethod::ALL.len(), 4);
        assert_eq!(LpMethod::ALL.len(), 3);
        assert_eq!(NcMethod::SeHgnn.name(), "SeHGNN");
        assert_eq!(LpMethod::Morse.name(), "MorsE");
    }

    #[test]
    fn measure_returns_value() {
        let (v, secs, _bytes) = measure(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn remap_nc_preserves_labels() {
        let mut kg = kgtosa_kg::KnowledgeGraph::new();
        kg.add_triple_terms("a", "T", "r", "b", "T");
        let task = kgtosa_datagen::NcTask {
            name: "t".into(),
            target_class: "T".into(),
            labels: vec![0, 1],
            num_labels: 2,
            split: kgtosa_datagen::SplitKind::Time,
            train: vec![Vid(0)],
            valid: vec![],
            test: vec![Vid(1)],
        };
        let keep = kgtosa_kg::NodeSet::from_iter(2, [Vid(1)]);
        let sub = kgtosa_kg::induced_subgraph(&kg, &keep);
        let view = remap_nc(&sub, &task);
        assert_eq!(view.labels, vec![1]);
        assert!(view.train.is_empty());
        assert_eq!(view.test.len(), 1);
    }
}
