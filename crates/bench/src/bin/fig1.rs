//! Figure 1 — the motivating experiment: train the Paper-Venue task on a
//! MAG-shaped KG with ShaDowSAINT and SeHGNN using three inputs:
//!
//! * **FG** — the full graph,
//! * **OGBN-MAG** — a handcrafted task-oriented subgraph (four node types:
//!   Paper/Author/Affiliation/FieldOfStudy with their four relations, and
//!   aggressively pruned context — how OGB's curators built OGBN-MAG),
//! * **KG-TOSA_d1h1** — the automatically extracted TOSG.
//!
//! Panels: (A) accuracy, (B) training time incl. preprocessing,
//! (C) training memory.

use kgtosa_bench::{nc_fg_record, nc_tosg_record, print_panel, save_json, Env, NcMethod};
use kgtosa_core::{
    extract_sparql, ExtractionReport, ExtractionResult, ExtractionTask, GraphPattern,
};
use kgtosa_kg::{map_targets, subgraph_from_triples_and_nodes, KnowledgeGraph, NodeSet, Triple};
use kgtosa_rdf::{FetchConfig, RdfStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

/// Emulates the handcrafted OGBN-MAG subgraph: keep only the four curated
/// node types and their four relations, with manual pruning of context
/// nodes (the curators kept ≈0.2% of MAG).
fn handcrafted_ogbn_mag(
    kg: &KnowledgeGraph,
    task: &ExtractionTask,
    seed: u64,
) -> ExtractionResult {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = ["Paper", "Author", "Affiliation", "FieldOfStudy"];
    let relations = ["writes", "cites", "hasTopic", "memberOf"];
    let mut keep = NodeSet::new(kg.num_nodes());
    for c in classes {
        if let Some(cid) = kg.find_class(c) {
            for v in kg.nodes_of_class(cid) {
                // Papers (targets) are all kept; context is pruned to 60%.
                if c == "Paper" || rng.gen::<f64>() < 0.6 {
                    keep.insert(v);
                }
            }
        }
    }
    let rel_ids: Vec<_> = relations.iter().filter_map(|r| kg.find_relation(r)).collect();
    let triples: Vec<Triple> = kg
        .triples()
        .iter()
        .filter(|t| rel_ids.contains(&t.p) && keep.contains(t.s) && keep.contains(t.o))
        .copied()
        .collect();
    let subgraph = subgraph_from_triples_and_nodes(kg, &triples, &task.targets);
    let targets = map_targets(&subgraph, &task.targets);
    let triples_count = subgraph.kg.num_triples();
    let sampled_nodes = subgraph.kg.num_nodes();
    ExtractionResult {
        subgraph,
        targets,
        report: ExtractionReport {
            method: "OGBN-MAG".into(),
            seconds: start.elapsed().as_secs_f64(),
            sampled_nodes,
            triples: triples_count,
            requests: 0,
            completeness: 1.0,
            cached: false,
        },
    }
}

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!(
        "Figure 1 — PV on MAG (scale {}): FG vs handcrafted OGBN-MAG vs KG-TOSA_d1h1",
        env.scale
    );
    let dataset = kgtosa_datagen::mag(env.scale, env.seed);
    let kg = &dataset.gen.kg;
    let task = &dataset.nc[0]; // PV/MAG
    let ext_task = kgtosa_bench::nc_extraction_task(task);
    println!(
        "MAG-42M (scaled): {} nodes, {} triples",
        kg.num_nodes(),
        kg.num_triples()
    );

    let handcrafted = handcrafted_ogbn_mag(kg, &ext_task, env.seed);
    let store = RdfStore::new(kg);
    let tosg = extract_sparql(&store, &ext_task, &GraphPattern::D1H1, &FetchConfig::default())
        .expect("extraction");
    println!(
        "inputs: FG {}t | OGBN-MAG {}t | KG-TOSA_d1h1 {}t",
        kg.num_triples(),
        handcrafted.report.triples,
        tosg.report.triples
    );

    let mut records = Vec::new();
    for method in [NcMethod::ShadowSaint, NcMethod::SeHgnn] {
        records.push(nc_fg_record(kg, task, method, &cfg));
        records.push(nc_tosg_record(task, &handcrafted, method, &cfg));
        records.push(nc_tosg_record(task, &tosg, method, &cfg));
    }
    print_panel("Figure 1 (A/B/C)", &records);
    save_json("fig1", &records);
}
