//! Figure 9 — convergence-rate analysis: GraphSAINT's validation accuracy
//! as a function of wall-clock training time on the full graph versus the
//! KG-TOSA_{d1h1} subgraph, for all six NC tasks.
//!
//! The paper's observation: KG' epochs are much shorter, so the model
//! reaches its plateau earlier in wall-clock terms.

use kgtosa_bench::{nc_fg_record, nc_tosg_record, save_json, Env, NcMethod, Record};
use kgtosa_core::{extract_sparql, GraphPattern};
use kgtosa_rdf::{FetchConfig, RdfStore};

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn print_trace(label: &str, rec: &Record) {
    print!("  {label:<8}");
    for (t, m) in rec.trace.iter().step_by(rec.trace.len().div_ceil(10).max(1)) {
        print!(" {t:>6.2}s:{:>5.3}", m);
    }
    println!(" | final test {:.3}", rec.metric);
}

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!(
        "Figure 9 — GraphSAINT convergence, FG vs KG-TOSA_d1h1 (scale {}, {} epochs)",
        env.scale, cfg.epochs
    );

    let mag = kgtosa_datagen::mag(env.scale, env.seed);
    let yago = kgtosa_datagen::yago30(env.scale, env.seed + 100);
    let dblp = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let tasks: Vec<(&kgtosa_datagen::Dataset, usize)> = vec![
        (&mag, 0),
        (&mag, 1),
        (&yago, 0),
        (&yago, 1),
        (&dblp, 0),
        (&dblp, 1),
    ];

    let mut all = Vec::new();
    for (dataset, idx) in tasks {
        let task = &dataset.nc[idx];
        let kg = &dataset.gen.kg;
        let ext_task = kgtosa_bench::nc_extraction_task(task);
        let store = RdfStore::new(kg);
        let tosg =
            extract_sparql(&store, &ext_task, &GraphPattern::D1H1, &FetchConfig::default())
                .expect("extraction");

        let fg = nc_fg_record(kg, task, NcMethod::GraphSaint, &cfg);
        let kgp = nc_tosg_record(task, &tosg, NcMethod::GraphSaint, &cfg);

        println!("\n{} (validation accuracy vs elapsed seconds):", task.name);
        print_trace("FG", &fg);
        print_trace("KG'", &kgp);
        let fg_end = fg.trace.last().map(|p| p.0).unwrap_or(0.0);
        let kgp_end = kgp.trace.last().map(|p| p.0).unwrap_or(0.0);
        println!(
            "  -> same #epochs in {kgp_end:.2}s on KG' vs {fg_end:.2}s on FG ({:.1}x faster/epoch)",
            fg_end / kgp_end.max(1e-9)
        );
        all.push(fg);
        all.push(kgp);
    }
    save_json("fig9", &all);
}
