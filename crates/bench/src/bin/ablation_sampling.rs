//! Ablation of the sampling extractors' parameters (the §IV complexity
//! discussion): BRW walk length `h`, BRW initial-set size, IBS `top-k`,
//! and the PPR tolerance `ε` — each swept against subgraph size,
//! extraction time and quality indicators.

use kgtosa_bench::Env;
use kgtosa_core::{extract_brw, extract_ibs, QualityRow};
use kgtosa_kg::HeteroGraph;
use kgtosa_sampler::{IbsConfig, PprConfig, WalkConfig};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

#[derive(Serialize)]
struct Row {
    sweep: String,
    value: String,
    nodes: usize,
    triples: usize,
    seconds: f64,
    target_ratio_pct: f64,
    entropy: f64,
}

fn push(rows: &mut Vec<Row>, sweep: &str, value: String, q: &QualityRow) {
    println!(
        "{:>10} {:>10} {:>8} {:>9} {:>9.4} {:>8.1}% {:>8.2}",
        sweep, value, q.num_nodes, q.num_triples, q.extraction_s, q.target_ratio_pct, q.avg_entropy
    );
    rows.push(Row {
        sweep: sweep.into(),
        value,
        nodes: q.num_nodes,
        triples: q.num_triples,
        seconds: q.extraction_s,
        target_ratio_pct: q.target_ratio_pct,
        entropy: q.avg_entropy,
    });
}

fn main() {
    let env = Env::from_env();
    println!("Ablation — sampling parameters (scale {})", env.scale);
    let dataset = kgtosa_datagen::yago30(env.scale, env.seed + 100);
    let kg = &dataset.gen.kg;
    let task = kgtosa_bench::nc_extraction_task(&dataset.nc[0]);
    let graph = HeteroGraph::build(kg);
    let mut rows = Vec::new();

    println!(
        "{:>10} {:>10} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "sweep", "value", "nodes", "triples", "time(s)", "V_T%", "entropy"
    );

    // BRW walk length.
    for h in [1usize, 2, 3, 5] {
        let res = extract_brw(
            kg,
            &graph,
            &task,
            &WalkConfig { roots: task.targets.len(), walk_length: h },
            env.seed,
        );
        push(&mut rows, "brw_h", h.to_string(), &QualityRow::from_extraction(&res));
    }
    // BRW initial-set size.
    for frac in [0.1f64, 0.5, 1.0] {
        let roots = ((task.targets.len() as f64) * frac).max(1.0) as usize;
        let res = extract_brw(
            kg,
            &graph,
            &task,
            &WalkConfig { roots, walk_length: 3 },
            env.seed,
        );
        push(&mut rows, "brw_roots", format!("{frac}"), &QualityRow::from_extraction(&res));
    }
    // IBS top-k.
    for k in [2usize, 8, 16, 32] {
        let res = extract_ibs(
            kg,
            &graph,
            &task,
            &IbsConfig { k, threads: 4, ..Default::default() },
        );
        push(&mut rows, "ibs_k", k.to_string(), &QualityRow::from_extraction(&res));
    }
    // PPR tolerance.
    for eps in [1e-2f32, 1e-3, 2e-4, 1e-5] {
        let res = extract_ibs(
            kg,
            &graph,
            &task,
            &IbsConfig {
                k: 16,
                threads: 4,
                ppr: PprConfig { alpha: 0.25, epsilon: eps },
                ..Default::default()
            },
        );
        push(&mut rows, "ppr_eps", format!("{eps:e}"), &QualityRow::from_extraction(&res));
    }

    println!(
        "\nExpected: larger h / roots / k / tighter ε all grow the subgraph \
         and the extraction cost — the overhead §IV says the SPARQL method avoids."
    );
    kgtosa_bench::save_json("ablation_sampling", &rows);
}
