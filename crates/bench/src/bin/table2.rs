//! Table II — task summary: task type, name, KG, split kind, split ratio,
//! and evaluation metric for the six NC and three LP tasks.

use kgtosa_bench::{save_json, Env};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

#[derive(Serialize)]
struct Row {
    task_type: &'static str,
    name: String,
    kg: String,
    split: String,
    ratio: String,
    metric: &'static str,
    targets: usize,
}

fn main() {
    let env = Env::from_env();
    println!("Table II — GNN task summary (scale {})", env.scale);
    println!(
        "{:<4} {:<14} {:<14} {:<8} {:<14} {:<9} {:>8}",
        "TT", "Name", "KG", "Split", "Ratio", "Metric", "targets"
    );
    let mut rows = Vec::new();
    for d in kgtosa_datagen::all_datasets(env.scale, env.seed) {
        for t in &d.nc {
            let total = t.train.len() + t.valid.len() + t.test.len();
            let pct = |n: usize| format!("{:.0}", 100.0 * n as f64 / total as f64);
            let ratio = format!("{}/{}/{}", pct(t.train.len()), pct(t.valid.len()), pct(t.test.len()));
            println!(
                "{:<4} {:<14} {:<14} {:<8} {:<14} {:<9} {:>8}",
                "NC", t.name, d.gen.spec.name, format!("{:?}", t.split), ratio, "Accuracy", total
            );
            rows.push(Row {
                task_type: "NC",
                name: t.name.clone(),
                kg: d.gen.spec.name.clone(),
                split: format!("{:?}", t.split),
                ratio,
                metric: "Accuracy",
                targets: total,
            });
        }
        for t in &d.lp {
            let total = t.train.len() + t.valid.len() + t.test.len();
            let pct = |n: usize| format!("{:.1}", 100.0 * n as f64 / total as f64);
            let ratio = format!("{}/{}/{}", pct(t.train.len()), pct(t.valid.len()), pct(t.test.len()));
            println!(
                "{:<4} {:<14} {:<14} {:<8} {:<14} {:<9} {:>8}",
                "LP", t.name, d.gen.spec.name, "Time", ratio, "Hits@10", total
            );
            rows.push(Row {
                task_type: "LP",
                name: t.name.clone(),
                kg: d.gen.spec.name.clone(),
                split: "Time".into(),
                ratio,
                metric: "Hits@10",
                targets: total,
            });
        }
    }
    save_json("table2", &rows);
}
