//! Table IV — the full cost breakdown for the six NC tasks: KG'
//! extraction time, triples→adjacency transformation time, GraphSAINT
//! training time, total, accuracy, model size (#params), inference time
//! and peak training memory — for the traditional pipeline (FG) versus
//! KG-TOSA_{d1h1} (KG').

use kgtosa_bench::{nc_fg_record, nc_tosg_record, save_json, Env, NcMethod, Record};
use kgtosa_core::{extract_sparql, GraphPattern};
use kgtosa_rdf::{FetchConfig, RdfStore};

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn print_pair(task: &str, fg: &Record, kgp: &Record) {
    println!("\n--- {task} ---");
    println!(
        "{:<24} {:>12} {:>12}",
        "step", "FG", "KG'"
    );
    let row = |name: &str, a: f64, b: f64, unit: &str| {
        println!("{:<24} {:>11.2}{} {:>11.2}{}", name, a, unit, b, unit);
    };
    row("KG extraction time", fg.extraction_s, kgp.extraction_s, "s");
    row("transformation time", fg.transformation_s, kgp.transformation_s, "s");
    row("GNN training time", fg.training_s, kgp.training_s, "s");
    row(
        "total time",
        fg.extraction_s + fg.transformation_s + fg.training_s,
        kgp.extraction_s + kgp.transformation_s + kgp.training_s,
        "s",
    );
    row("accuracy (%)", fg.metric * 100.0, kgp.metric * 100.0, "");
    println!(
        "{:<24} {:>12} {:>12}",
        "model size (#params)", fg.params, kgp.params
    );
    row("inference time", fg.inference_s, kgp.inference_s, "s");
    println!(
        "{:<24} {:>12} {:>12}",
        "training memory",
        kgtosa_memtrack::format_bytes(fg.peak_bytes),
        kgtosa_memtrack::format_bytes(kgp.peak_bytes)
    );
}

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!(
        "Table IV — cost breakdown, traditional pipeline (FG) vs KG-TOSA_d1h1 (KG'), scale {}",
        env.scale
    );

    let mag = kgtosa_datagen::mag(env.scale, env.seed);
    let dblp = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let yago = kgtosa_datagen::yago30(env.scale, env.seed + 100);
    // Table IV order: PV/MAG, PD/MAG, PV/DBLP, AC/DBLP, PC/YAGO, CG/YAGO.
    let tasks: Vec<(&kgtosa_datagen::Dataset, usize)> = vec![
        (&mag, 0),
        (&mag, 1),
        (&dblp, 0),
        (&dblp, 1),
        (&yago, 0),
        (&yago, 1),
    ];

    let mut all = Vec::new();
    for (dataset, idx) in tasks {
        let task = &dataset.nc[idx];
        let kg = &dataset.gen.kg;
        let ext_task = kgtosa_bench::nc_extraction_task(task);
        let store = RdfStore::new(kg);
        let tosg =
            extract_sparql(&store, &ext_task, &GraphPattern::D1H1, &FetchConfig::default())
                .expect("extraction");

        let fg = nc_fg_record(kg, task, NcMethod::GraphSaint, &cfg);
        let kgp = nc_tosg_record(task, &tosg, NcMethod::GraphSaint, &cfg);
        print_pair(&task.name, &fg, &kgp);
        all.push(fg);
        all.push(kgp);
    }
    save_json("table4", &all);
}
