//! Ablation: two ways to tame `|R|`-proportional model growth.
//!
//! RGCN's model size scales with the number of relations. The literature's
//! fix is **basis decomposition** (share B bases across relations);
//! KG-TOSA's fix is to shrink `|R|` itself by extracting the TOSG. This
//! ablation runs full-parameter RGCN and basis-RGCN (B ∈ {2, 8}) on both
//! FG and KG', showing the two are complementary: the TOSG shrinks every
//! variant, and basis sharing trades a little accuracy for a lot of
//! parameters on both inputs.

use kgtosa_bench::{measure, remap_nc, save_json, Env, Record};
use kgtosa_core::{extract_sparql, GraphPattern};
use kgtosa_models::{train_rgcn_basis_nc, train_rgcn_nc, NcDataset, TrainReport};
use kgtosa_rdf::{FetchConfig, RdfStore};

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!(
        "Ablation — full RGCN vs basis decomposition, FG vs KG-TOSA_d1h1 (scale {})",
        env.scale
    );
    let dataset = kgtosa_datagen::mag(env.scale, env.seed);
    let kg = &dataset.gen.kg;
    let task = &dataset.nc[0];
    let ext_task = kgtosa_bench::nc_extraction_task(task);
    let store = RdfStore::new(kg);
    let tosg = extract_sparql(&store, &ext_task, &GraphPattern::D1H1, &FetchConfig::default())
        .expect("extraction");
    let view = remap_nc(&tosg.subgraph, task);

    type Trainer<'a> = Box<dyn Fn(&NcDataset<'_>) -> TrainReport + 'a>;
    let variants: Vec<(&str, Trainer<'_>)> = vec![
        ("full", Box::new(|d: &NcDataset<'_>| train_rgcn_nc(d, &cfg))),
        ("basis-8", Box::new(|d: &NcDataset<'_>| train_rgcn_basis_nc(d, &cfg, 8))),
        ("basis-2", Box::new(|d: &NcDataset<'_>| train_rgcn_basis_nc(d, &cfg, 2))),
    ];

    let mut rows: Vec<Record> = Vec::new();
    for (name, trainer) in &variants {
        // FG.
        let ((report, tsecs), _, peak) = measure(|| {
            let (graph, tsecs) = kgtosa_core::transform(kg);
            let data = NcDataset {
                kg,
                graph: &graph,
                labels: &task.labels,
                num_labels: task.num_labels,
                train: &task.train,
                valid: &task.valid,
                test: &task.test,
            };
            (trainer(&data), tsecs)
        });
        rows.push(Record {
            task: task.name.clone(),
            method: format!("RGCN-{name}"),
            input: "FG".into(),
            metric: report.metric,
            extraction_s: 0.0,
            transformation_s: tsecs,
            training_s: report.training_s,
            inference_s: report.inference_s,
            params: report.param_count,
            peak_bytes: peak,
            subgraph_triples: 0,
            trace: vec![],
        });
        // KG'.
        let sub = &tosg.subgraph;
        let ((report, tsecs), _, peak) = measure(|| {
            let (graph, tsecs) = kgtosa_core::transform(&sub.kg);
            let data = NcDataset {
                kg: &sub.kg,
                graph: &graph,
                labels: &view.labels,
                num_labels: task.num_labels,
                train: &view.train,
                valid: &view.valid,
                test: &view.test,
            };
            (trainer(&data), tsecs)
        });
        rows.push(Record {
            task: task.name.clone(),
            method: format!("RGCN-{name}"),
            input: "KG-TOSA_d1h1".into(),
            metric: report.metric,
            extraction_s: tosg.report.seconds,
            transformation_s: tsecs,
            training_s: report.training_s,
            inference_s: report.inference_s,
            params: report.param_count,
            peak_bytes: peak,
            subgraph_triples: tosg.report.triples,
            trace: vec![],
        });
    }
    kgtosa_bench::print_panel("Ablation: parameter taming", &rows);
    save_json("ablation_basis", &rows);
}
