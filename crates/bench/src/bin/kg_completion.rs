//! §V-B2's closing claim: "performing KG completion using MorsE on
//! DBLP-15M consumed 330GB memory and 124 training hours compared with
//! 11GB and 9.8 training hours using the KG' of KG-TOSA for the
//! affiliatedWith edge type only" — one order of magnitude saved in both
//! time and memory by scoping LP to the predicate of interest.
//!
//! Reproduced at scale: (a) MorsE trained for *full KG completion* (every
//! edge type scored) on the full DBLP graph, versus (b) MorsE trained for
//! the `affiliatedWith` predicate only on the KG-TOSA_{d2h1} subgraph.

use kgtosa_bench::{lp_fg_record, lp_tosg_record, measure, save_json, Env, LpMethod, Record};
use kgtosa_core::{extract_sparql, GraphPattern};
use kgtosa_datagen::LpTask;
use kgtosa_models::{train_morse_lp, LpDataset};
use kgtosa_rdf::{FetchConfig, RdfStore};

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!(
        "KG completion vs predicate-scoped LP (MorsE on DBLP, scale {})",
        env.scale
    );
    let dataset = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let kg = &dataset.gen.kg;
    let task = &dataset.lp[0];

    // --- (a) Full KG completion on FG: every triple is a training example.
    let all_triples: Vec<_> = kg.triples().to_vec();
    let completion_task = LpTask {
        name: "completion/DBLP".into(),
        predicate: "*".into(),
        src_class: task.src_class.clone(),
        dst_class: task.dst_class.clone(),
        train: all_triples,
        valid: task.valid.clone(),
        test: task.test.clone(),
    };
    let ((report, transformation_s), _, peak) = measure(|| {
        let (graph, tsecs) = kgtosa_core::transform(kg);
        let data = LpDataset {
            kg,
            graph: &graph,
            train: &completion_task.train,
            valid: &completion_task.valid,
            test: &completion_task.test,
        };
        (train_morse_lp(&data, &cfg), tsecs)
    });
    let completion = Record {
        task: completion_task.name.clone(),
        method: "MorsE".into(),
        input: "FG (all predicates)".into(),
        metric: report.metric,
        extraction_s: 0.0,
        transformation_s,
        training_s: report.training_s,
        inference_s: report.inference_s,
        params: report.param_count,
        peak_bytes: peak,
        subgraph_triples: 0,
        trace: vec![],
    };

    // --- (b) Single-predicate LP on the KG-TOSA_{d2h1} subgraph.
    let ext_task = kgtosa_bench::lp_extraction_task(task, &dataset.gen);
    let store = RdfStore::new(kg);
    let tosg = extract_sparql(&store, &ext_task, &GraphPattern::D2H1, &FetchConfig::default())
        .expect("extraction");
    let scoped = lp_tosg_record(kg, task, &tosg, LpMethod::Morse, &cfg);
    // Also the single-predicate FG run for reference.
    let fg_scoped = lp_fg_record(kg, task, LpMethod::Morse, &cfg);

    let rows = vec![completion, fg_scoped, scoped];
    kgtosa_bench::print_panel("MorsE: completion vs predicate-scoped", &rows);
    let time_ratio = rows[0].training_s / rows[2].training_s.max(1e-9);
    let mem_ratio = rows[0].peak_bytes as f64 / rows[2].peak_bytes.max(1) as f64;
    println!(
        "\npredicate-scoped LP on KG' is {time_ratio:.1}x faster and uses {mem_ratio:.1}x \
         less peak memory than full completion on FG\n(paper: ~12.7x time, ~30x memory)"
    );
    save_json("kg_completion", &rows);
}
