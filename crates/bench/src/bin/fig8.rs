//! Figure 8 — extraction-method comparison: GraphSAINT trained with the
//! BRW sampler on the full graph, versus GraphSAINT on the TOSGs produced
//! by IBS and the four SPARQL variants (KG-TOSA_{d1h1,d2h1,d1h2,d2h2}),
//! on PV/MAG (top), PV/DBLP (middle), PC/YAGO (bottom).
//!
//! Reported per §V-C: accuracy; extraction + transformation + training
//! time; memory. Parameters follow the paper: BRW h=3 with an initial set
//! covering the targets, IBS top-k=16, α=0.25, ε=2e-4.

use kgtosa_bench::{
    measure, nc_tosg_record, print_panel, save_json, Env, Record,
};
use kgtosa_core::{extract_ibs, extract_sparql, GraphPattern};
use kgtosa_models::{train_graphsaint_nc, NcDataset, SaintSampler};
use kgtosa_rdf::{FetchConfig, RdfStore};
use kgtosa_sampler::IbsConfig;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!(
        "Figure 8 — GraphSAINT+BRW on FG vs IBS vs KG-TOSA_dihj (scale {})",
        env.scale
    );

    let mag = kgtosa_datagen::mag(env.scale, env.seed);
    let dblp = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let yago = kgtosa_datagen::yago30(env.scale, env.seed + 100);
    let cases = [(&mag, 0usize), (&dblp, 0usize), (&yago, 0usize)];

    let mut all = Vec::new();
    for (dataset, task_idx) in cases {
        let task = &dataset.nc[task_idx];
        let kg = &dataset.gen.kg;
        let ext_task = kgtosa_bench::nc_extraction_task(task);
        let mut rows: Vec<Record> = Vec::new();

        // --- GraphSAINT+BRW directly on the full graph -------------------
        let ((report, transformation_s), _, peak) = measure(|| {
            let (graph, tsecs) = kgtosa_core::transform(kg);
            let data = NcDataset {
                kg,
                graph: &graph,
                labels: &task.labels,
                num_labels: task.num_labels,
                train: &task.train,
                valid: &task.valid,
                test: &task.test,
            };
            (train_graphsaint_nc(&data, &cfg, SaintSampler::Biased), tsecs)
        });
        rows.push(Record {
            task: task.name.clone(),
            method: report.method.clone(),
            input: "FG".into(),
            metric: report.metric,
            extraction_s: 0.0,
            transformation_s,
            training_s: report.training_s,
            inference_s: report.inference_s,
            params: report.param_count,
            peak_bytes: peak,
            subgraph_triples: 0,
            trace: report.trace.iter().map(|p| (p.elapsed_s, p.metric)).collect(),
        });

        // --- IBS extraction, then GraphSAINT ------------------------------
        let graph = kgtosa_core::transform(kg).0;
        let ibs = extract_ibs(
            kg,
            &graph,
            &ext_task,
            &IbsConfig { k: 16, threads: 4, ..Default::default() },
        );
        rows.push(nc_tosg_record(task, &ibs, kgtosa_bench::NcMethod::GraphSaint, &cfg));

        // --- The four SPARQL variants -------------------------------------
        let store = RdfStore::new(kg);
        for pattern in GraphPattern::VARIANTS {
            let tosg = extract_sparql(&store, &ext_task, &pattern, &FetchConfig::default())
                .expect("extraction");
            rows.push(nc_tosg_record(task, &tosg, kgtosa_bench::NcMethod::GraphSaint, &cfg));
        }

        print_panel(&format!("Figure 8 — {}", task.name), &rows);
        all.extend(rows);
    }
    save_json("fig8", &all);
}
