//! Update-stream experiment — incremental TOSG repair vs full re-extract.
//!
//! The paper treats extraction as one-time preprocessing (§V-C); the
//! `kgtosa-delta` stack makes it maintainable instead: a live stream of
//! triple deltas patches the KG, the staleness oracle decides which
//! cached TOSGs each delta can touch, and `repair_extraction` splices
//! the delta into the stale ones. This binary drives R rounds of K-op
//! deltas against MAG at two scales and reports, per round:
//!
//! * `repair_s` vs `full_s` — patching the old TOSG vs re-running the
//!   full SPARQL extraction (repair must win, and its cost must track
//!   the delta frontier, not `|KG|`: the per-scale totals expose the
//!   scaling ratio);
//! * the cache-sweep outcome (migrated / repaired / invalidated) and the
//!   staleness window it bounds;
//! * a differential `identical` flag — every repaired TOSG is compared
//!   byte-for-byte against a fresh extraction before it counts.
//!
//! Results land in `results/delta.json`; CI gates on zero mismatches,
//! a non-empty invalidation path, and repair beating full re-extract.

use std::collections::HashMap;
use std::time::Instant;

use kgtosa_bench::{nc_extraction_task, save_json, Env};
use kgtosa_cache::ArtifactCache;
use kgtosa_core::{
    encode_extraction_parts, extract_sparql, extract_sparql_cached_with_fingerprint,
    parent_triples, repair_extraction, sweep_cache_after_delta, ExtractionResult, ExtractionTask,
    GraphPattern, RepairConfig, StalenessOracle,
};
use kgtosa_kg::{apply_delta, fingerprint, DeltaOp, HeteroGraph, KgDelta, MultisetFingerprint};
use kgtosa_rdf::{FetchConfig, RdfStore};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

const ROUNDS: usize = 4;
const OPS_PER_ROUND: usize = 8;

/// One delta round at one scale, all four patterns folded in.
#[derive(Debug, Serialize)]
struct RoundRecord {
    scale: f64,
    round: usize,
    ops: usize,
    kg_triples: usize,
    candidates: usize,
    repair_s: f64,
    full_s: f64,
    identical: bool,
    migrated: usize,
    repaired: usize,
    invalidated: usize,
    staleness_window_s: f64,
}

#[derive(Debug, Serialize, Default)]
struct Totals {
    repair_s: f64,
    full_s: f64,
    migrations: usize,
    repairs: usize,
    invalidations: usize,
    mismatches: usize,
}

#[derive(Debug, Serialize)]
struct Scaling {
    small_scale: f64,
    large_scale: f64,
    small_triples: usize,
    large_triples: usize,
    repair_s_small: f64,
    repair_s_large: f64,
    full_s_small: f64,
    full_s_large: f64,
    /// How much repair slowed down going small → large. The delta size is
    /// identical at both scales, so this ratio staying far below
    /// `full_ratio` is the "cost tracks the frontier, not |KG|" evidence.
    repair_ratio: f64,
    full_ratio: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    rounds: Vec<RoundRecord>,
    totals: Totals,
    scaling: Scaling,
}

fn witness(res: &ExtractionResult) -> (Vec<u8>, String) {
    let mut buf = Vec::new();
    kgtosa_kg::write_snapshot(&res.subgraph.kg, &mut buf).expect("snapshot write");
    (
        buf,
        format!(
            "{:?}|{:?}|{:?}|{}",
            res.subgraph.to_parent, res.subgraph.from_parent, res.targets, res.report.method
        ),
    )
}

/// K ops for round `r`: half adds (a new paper citing an existing one,
/// and existing papers gaining citations), half removes of live triples.
/// Deterministic, and sequential-valid by construction.
fn round_ops(kg: &kgtosa_kg::KnowledgeGraph, r: usize, tag: &str) -> Vec<DeltaOp> {
    let paper = kg.find_class("Paper").expect("mag has Papers");
    let papers = kg.nodes_of_class(paper);
    let mut ops = Vec::new();
    for i in 0..OPS_PER_ROUND / 2 {
        let target = papers[(r * 131 + i * 977) % papers.len()];
        ops.push(DeltaOp::Add {
            s: format!("DeltaPaper_{tag}_{r}_{i}"),
            s_class: "Paper".into(),
            p: "cites".into(),
            o: kg.node_term(target).into(),
            o_class: "Paper".into(),
        });
    }
    let mut taken = std::collections::HashSet::new();
    let triples = kg.triples();
    for i in 0..OPS_PER_ROUND - OPS_PER_ROUND / 2 {
        let mut idx = (r * 8191 + i * 127) % triples.len();
        while !taken.insert(idx) {
            idx = (idx + 1) % triples.len();
        }
        let t = triples[idx];
        ops.push(DeltaOp::Remove {
            s: kg.node_term(t.s).into(),
            p: kg.relation_term(t.p).into(),
            o: kg.node_term(t.o).into(),
        });
    }
    ops
}

fn run_scale(scale: f64, seed: u64, tag: &str, records: &mut Vec<RoundRecord>) -> (f64, f64, usize) {
    let dataset = kgtosa_datagen::mag(scale, seed);
    let task = nc_extraction_task(&dataset.nc[0]);
    let patent_task = {
        let kg = &dataset.gen.kg;
        let c = kg.find_class("Patent").expect("mag has Patents");
        ExtractionTask::node_classification("Patent", "Patent", kg.nodes_of_class(c))
    };
    let dir = std::env::var("KGTOSA_CACHE_DIR")
        .unwrap_or_else(|_| "results/update-bench".into());
    let cache = ArtifactCache::open(format!("{dir}-{tag}")).expect("open cache dir");
    cache.clear().expect("reset cache dir");
    let fetch = FetchConfig::default();

    let mut kg = dataset.gen.kg.clone();
    let mut multiset = MultisetFingerprint::of(&kg);
    let base_triples = kg.num_triples();
    println!(
        "\nscale {scale}: {} nodes, {base_triples} triples",
        kg.num_nodes()
    );
    let (mut scale_repair, mut scale_full) = (0.0f64, 0.0f64);

    for r in 0..ROUNDS {
        let fp = fingerprint(&kg);
        let old_store = RdfStore::new(&kg);
        // The artifact state a server would hold: every pattern of the
        // paper task cached, plus one unrelated (Patent) entry that each
        // sweep must migrate, never invalidate.
        let mut old_results: HashMap<String, ExtractionResult> = HashMap::new();
        for pattern in &GraphPattern::VARIANTS {
            let (res, _) = extract_sparql_cached_with_fingerprint(
                &old_store, &task, pattern, &fetch, &cache, fp,
            )
            .expect("warm extraction");
            old_results.insert(pattern.label(), res);
        }
        extract_sparql_cached_with_fingerprint(
            &old_store,
            &patent_task,
            &GraphPattern::VARIANTS[0],
            &fetch,
            &cache,
            fp,
        )
        .expect("warm patent entry");

        let ops = round_ops(&kg, r, tag);
        let delta = KgDelta { base_fingerprint: fp, ops };
        let num_ops = delta.ops.len();
        let app = apply_delta(&kg, fp, multiset, &delta).expect("delta applies");
        let new_fp = fingerprint(&app.kg);
        let new_store = RdfStore::new(&app.kg);
        let graph = HeteroGraph::build(&app.kg);

        // Repair vs full, differentially checked per pattern.
        let (mut repair_s, mut full_s) = (0.0f64, 0.0f64);
        let mut candidates = 0usize;
        let mut identical = true;
        for pattern in &GraphPattern::VARIANTS {
            let old = &old_results[&pattern.label()];
            let old_triples = parent_triples(&app.kg, &old.subgraph);
            let t0 = Instant::now();
            let (rep, rep_report) = repair_extraction(
                &new_store,
                &graph,
                &task,
                pattern,
                &old_triples,
                &app.added,
                &app.removed,
                &fetch,
                &RepairConfig::default(),
            )
            .expect("repair");
            repair_s += t0.elapsed().as_secs_f64();
            candidates += rep_report.candidates;
            let t1 = Instant::now();
            let fresh = extract_sparql(&new_store, &task, pattern, &fetch).expect("fresh");
            full_s += t1.elapsed().as_secs_f64();
            identical &= witness(&rep) == witness(&fresh);
        }

        // Sweep the cache the way `kgtosa serve` does. Alternate rounds
        // exercise both stale paths: repair-and-republish, and plain
        // invalidation.
        let do_repair = r % 2 == 0;
        let oracle = StalenessOracle::new(&app.kg, &app.added, &app.removed, &app.new_nodes);
        let sweep_started = Instant::now();
        let outcome = sweep_cache_after_delta(
            &cache,
            fp,
            new_fp,
            kg.num_nodes(),
            app.kg.num_nodes(),
            &oracle,
            |info, _payload| {
                if !do_repair {
                    return None;
                }
                let label = info.pattern.as_deref()?;
                let old = old_results.get(label)?;
                let pattern = GraphPattern::VARIANTS.iter().find(|p| p.label() == label)?;
                let old_triples = parent_triples(&app.kg, &old.subgraph);
                let (res, _) = repair_extraction(
                    &new_store,
                    &graph,
                    &task,
                    pattern,
                    &old_triples,
                    &app.added,
                    &app.removed,
                    &fetch,
                    &RepairConfig::default(),
                )
                .ok()?;
                if res.report.completeness < 1.0 {
                    return None;
                }
                let q = kgtosa_kg::quality(&res.subgraph.kg, &res.targets);
                Some(encode_extraction_parts(
                    &res.report.method,
                    &res.subgraph,
                    &res.targets,
                    app.kg.num_nodes(),
                    &q,
                ))
            },
        )
        .expect("cache sweep");
        let staleness_window_s = sweep_started.elapsed().as_secs_f64();

        println!(
            "  round {r}: {num_ops} ops, {candidates} candidates, repair {repair_s:.4}s vs full {full_s:.4}s \
             ({} migrated / {} repaired / {} invalidated, window {:.1}ms, identical: {identical})",
            outcome.report.migrated,
            outcome.repaired,
            outcome.invalidated,
            staleness_window_s * 1e3
        );
        records.push(RoundRecord {
            scale,
            round: r,
            ops: num_ops,
            kg_triples: app.kg.num_triples(),
            candidates,
            repair_s,
            full_s,
            identical,
            migrated: outcome.report.migrated,
            repaired: outcome.repaired,
            invalidated: outcome.invalidated,
            staleness_window_s,
        });
        scale_repair += repair_s;
        scale_full += full_s;
        multiset = app.multiset;
        kg = app.kg;
    }
    (scale_repair, scale_full, base_triples)
}

fn main() {
    let env = Env::from_env();
    println!(
        "Update stream — incremental TOSG repair vs full re-extract on MAG \
         ({ROUNDS} rounds x {OPS_PER_ROUND} ops, scales {} and {})",
        env.scale,
        env.scale * 2.0
    );
    let mut records = Vec::new();
    let (repair_small, full_small, small_triples) =
        run_scale(env.scale, env.seed, "small", &mut records);
    let (repair_large, full_large, large_triples) =
        run_scale(env.scale * 2.0, env.seed, "large", &mut records);

    let totals = Totals {
        repair_s: records.iter().map(|r| r.repair_s).sum(),
        full_s: records.iter().map(|r| r.full_s).sum(),
        migrations: records.iter().map(|r| r.migrated).sum(),
        repairs: records.iter().map(|r| r.repaired).sum(),
        invalidations: records.iter().map(|r| r.invalidated).sum(),
        mismatches: records.iter().filter(|r| !r.identical).count(),
    };
    let scaling = Scaling {
        small_scale: env.scale,
        large_scale: env.scale * 2.0,
        small_triples,
        large_triples,
        repair_s_small: repair_small,
        repair_s_large: repair_large,
        full_s_small: full_small,
        full_s_large: full_large,
        repair_ratio: repair_large / repair_small.max(1e-9),
        full_ratio: full_large / full_small.max(1e-9),
    };
    println!(
        "\ntotals: repair {:.4}s vs full {:.4}s ({:.1}x), {} migrations / {} repairs / {} invalidations, {} mismatches",
        totals.repair_s,
        totals.full_s,
        totals.full_s / totals.repair_s.max(1e-9),
        totals.migrations,
        totals.repairs,
        totals.invalidations,
        totals.mismatches
    );
    println!(
        "scaling (same {OPS_PER_ROUND}-op deltas, {:.2}x more triples): repair {:.2}x slower, full {:.2}x slower",
        large_triples as f64 / small_triples.max(1) as f64,
        scaling.repair_ratio,
        scaling.full_ratio
    );
    save_json("delta", &Report { rounds: records, totals, scaling });
}
