//! `kernels` — serial vs parallel wall time for the `kgtosa-par` kernel
//! layer: dense matmul, RGCN mean aggregation, batched PPR, and CSR
//! construction, each at 1/2/4/8 threads.
//!
//! Every measurement re-checks the determinism contract: the output at
//! every thread count must be bit-identical to the single-threaded run.
//! Results go to `BENCH_kernels.json` in the working directory, and a
//! compact summary record is appended to the perf-history ledger
//! (`results/history.jsonl`, override with `KGTOSA_HISTORY`; set it
//! empty to skip) for the `trace-trend` rolling-window CI gate.

use kgtosa_kg::{HeteroGraph, KnowledgeGraph, Vid};
use kgtosa_nn::mean_aggregate;
use kgtosa_par::with_threads;
use kgtosa_sampler::{approximate_ppr_batch, PprConfig};
use kgtosa_tensor::{xavier_uniform, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

#[derive(Debug, Serialize)]
struct KernelRow {
    kernel: String,
    threads: usize,
    seconds: f64,
    speedup_vs_serial: f64,
}

/// Best-of-`REPS` wall time of `run` at each thread count, with a
/// bit-identity check of `fingerprint` against the serial run.
fn bench_kernel<T: PartialEq + std::fmt::Debug>(
    name: &str,
    rows: &mut Vec<KernelRow>,
    mut run: impl FnMut() -> T,
) {
    let mut serial_time = 0.0f64;
    let mut serial_out: Option<T> = None;
    for &threads in &THREAD_COUNTS {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..REPS {
            let start = std::time::Instant::now();
            let value = with_threads(threads, &mut run);
            best = best.min(start.elapsed().as_secs_f64());
            out = Some(value);
        }
        let out = out.expect("at least one rep");
        match &serial_out {
            None => {
                serial_time = best;
                serial_out = Some(out);
            }
            Some(base) => assert!(
                base == &out,
                "{name}: output at {threads} threads differs from serial"
            ),
        }
        let speedup = serial_time / best;
        println!("{name:<18} threads={threads}  {best:>8.4}s  speedup {speedup:>5.2}x");
        rows.push(KernelRow {
            kernel: name.to_string(),
            threads,
            seconds: best,
            speedup_vs_serial: speedup,
        });
    }
}

fn random_edges(n: u32, m: usize, rng: &mut StdRng) -> Vec<(u32, u32)> {
    (0..m).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect()
}

/// A random KG big enough that 256 PPR pushes dominate graph build time.
fn ppr_graph(rng: &mut StdRng) -> HeteroGraph {
    let n = 20_000u32;
    let mut kg = KnowledgeGraph::with_capacity(n as usize, 120_000);
    for v in 0..n {
        kg.add_node(&format!("n{v}"), &format!("C{}", v % 4));
    }
    for (s, o) in random_edges(n, 120_000, rng) {
        kg.add_triple_terms(&format!("n{s}"), "C0", "r", &format!("n{o}"), "C0");
    }
    HeteroGraph::build(&kg)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows: Vec<KernelRow> = Vec::new();

    // Dense matmul: 384³ ≈ 57M multiply-adds.
    let a = xavier_uniform(384, 384, &mut rng);
    let b = xavier_uniform(384, 384, &mut rng);
    bench_kernel("matmul", &mut rows, || {
        let mut out = Matrix::zeros(384, 384);
        a.matmul_into(&b, &mut out);
        out.data().to_vec()
    });

    // RGCN mean aggregation: 50k nodes, 800k edges, d=64.
    let agg_nodes = 50_000usize;
    let agg_edges = random_edges(agg_nodes as u32, 800_000, &mut rng);
    let csr = kgtosa_kg::Csr::from_edge_list(agg_nodes, &agg_edges);
    let h = xavier_uniform(agg_nodes, 64, &mut rng);
    bench_kernel("mean_aggregate", &mut rows, || {
        let mut out = Matrix::zeros(agg_nodes, 64);
        mean_aggregate(&csr, &h, &mut out);
        out.data().to_vec()
    });

    // Batched PPR: 256 seeds over a 20k-node graph.
    let g = ppr_graph(&mut rng);
    let seeds: Vec<Vid> = (0..256u32).map(|i| Vid(i * 7)).collect();
    let ppr_cfg = PprConfig::default();
    bench_kernel("ppr_batch", &mut rows, || {
        approximate_ppr_batch(&g, &seeds, &ppr_cfg)
            .iter()
            .map(|scores| scores.len())
            .collect::<Vec<_>>()
    });

    // CSR construction: counting sort of 4M edges over 500k vertices.
    let build_edges = random_edges(500_000, 4_000_000, &mut rng);
    bench_kernel("csr_build", &mut rows, || {
        let csr = kgtosa_kg::Csr::from_edge_list(500_000, &build_edges);
        csr.targets().to_vec()
    });

    // Speedups only materialize up to the machine's core count; record it
    // so results from core-starved machines read as what they are.
    #[derive(Serialize)]
    struct Report {
        available_parallelism: usize,
        rows: Vec<KernelRow>,
    }
    let report = Report {
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize kernel rows");
    std::fs::write("BENCH_kernels.json", json).expect("write BENCH_kernels.json");
    eprintln!("[saved BENCH_kernels.json]");

    // Ledger record: one span per (kernel, threads) measurement, keyed
    // `<kernel>@<threads>t` — the same naming the diff/trend parsers give
    // BENCH rows, so a ledger baseline diffs directly against a fresh
    // BENCH_kernels.json.
    let history_path =
        std::env::var("KGTOSA_HISTORY").unwrap_or_else(|_| "results/history.jsonl".to_string());
    if !history_path.is_empty() {
        let aggs: Vec<kgtosa_obs::SpanAgg> = report
            .rows
            .iter()
            .map(|r| kgtosa_obs::SpanAgg {
                name: format!("{}@{}t", r.kernel, r.threads),
                count: 1,
                total_s: r.seconds,
                mean_s: r.seconds,
                p95_s: r.seconds,
                max_s: r.seconds,
                peak_max_bytes: 0,
                allocs: 0,
            })
            .collect();
        let t_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let record = kgtosa_obs::HistoryRecord::from_aggs(
            t_unix,
            &kgtosa_obs::current_git_rev(),
            report.available_parallelism,
            &aggs,
            &[],
        );
        match kgtosa_obs::append_record(&history_path, &record) {
            Ok(()) => eprintln!("[appended ledger record to {history_path}]"),
            Err(e) => eprintln!("[warn] cannot append {history_path}: {e}"),
        }
    }
}
