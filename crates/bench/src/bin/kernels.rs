//! `kernels` — serial vs parallel wall time for the `kgtosa-par` kernel
//! layer: dense matmul (all three transpose variants), RGCN mean
//! aggregation, batched PPR, and CSR construction, each at 1/2/4/8
//! threads (capped by `KGTOSA_THREADS`, so CI can produce a
//! single-thread row set and an 8-thread row set from the same bin).
//!
//! Every measurement re-checks the determinism contract: the output at
//! every thread count must be bit-identical to the single-threaded run.
//! The dense kernels are additionally timed against retained *naive*
//! reference loops (the pre-blocking serial semantics), so
//! `speedup_vs_naive` records what cache blocking + SIMD bought on one
//! core, independent of thread scaling. Rows carry the problem size,
//! warmup count and the machine's `available_parallelism`, so a baseline
//! recorded on a core-starved box reads as what it is.
//!
//! Results go to `BENCH_kernels.json` in the working directory, and a
//! compact summary record is appended to the perf-history ledger
//! (`results/history.jsonl`, override with `KGTOSA_HISTORY`; set it
//! empty to skip) for the `trace-trend` rolling-window CI gate.

use kgtosa_kg::{Csr, HeteroGraph, KnowledgeGraph, Vid};
use kgtosa_nn::mean_aggregate;
use kgtosa_par::with_threads;
use kgtosa_sampler::{approximate_ppr_batch, PprConfig};
use kgtosa_tensor::{xavier_uniform, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;
/// Untimed iterations per thread count before measurement starts.
const WARMUP: usize = 1;

#[derive(Debug, Serialize)]
struct KernelRow {
    kernel: String,
    threads: usize,
    seconds: f64,
    speedup_vs_serial: f64,
    /// Naive-reference serial seconds / this row's seconds; 1.0 for
    /// kernels without a retained naive reference.
    speedup_vs_naive: f64,
    problem: String,
    warmup: usize,
    available_parallelism: usize,
}

/// Thread counts this run measures: `THREAD_COUNTS` capped by
/// `KGTOSA_THREADS` when set (the cap itself is included, so e.g. `=3`
/// measures 1/2/3).
fn thread_counts() -> Vec<usize> {
    let cap = std::env::var("KGTOSA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1));
    match cap {
        None => THREAD_COUNTS.to_vec(),
        Some(cap) => {
            let mut counts: Vec<usize> =
                THREAD_COUNTS.iter().copied().filter(|&t| t <= cap).collect();
            if !counts.contains(&cap) {
                counts.push(cap);
            }
            counts
        }
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Best-of-`REPS` wall time of `run` at each thread count (after
/// `WARMUP` untimed calls), with a bit-identity check of the output
/// against the serial run. `naive_s` is the wall time of the retained
/// naive reference (serial), when the kernel has one.
fn bench_kernel<T: PartialEq + std::fmt::Debug>(
    name: &str,
    problem: &str,
    naive_s: Option<f64>,
    rows: &mut Vec<KernelRow>,
    mut run: impl FnMut() -> T,
) {
    let mut serial_time = 0.0f64;
    let mut serial_out: Option<T> = None;
    for &threads in &thread_counts() {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..WARMUP {
            let _ = with_threads(threads, &mut run);
        }
        for _ in 0..REPS {
            let start = std::time::Instant::now();
            let value = with_threads(threads, &mut run);
            best = best.min(start.elapsed().as_secs_f64());
            out = Some(value);
        }
        let out = out.expect("at least one rep");
        match &serial_out {
            None => {
                serial_time = best;
                serial_out = Some(out);
            }
            Some(base) => assert!(
                base == &out,
                "{name}: output at {threads} threads differs from serial"
            ),
        }
        let speedup = serial_time / best;
        let vs_naive = naive_s.map(|n| n / best).unwrap_or(1.0);
        println!(
            "{name:<18} threads={threads}  {best:>8.4}s  speedup {speedup:>5.2}x  vs-naive {vs_naive:>5.2}x"
        );
        rows.push(KernelRow {
            kernel: name.to_string(),
            threads,
            seconds: best,
            speedup_vs_serial: speedup,
            speedup_vs_naive: vs_naive,
            problem: problem.to_string(),
            warmup: WARMUP,
            available_parallelism: available_parallelism(),
        });
    }
}

/// Times one serial run of a retained naive reference kernel and records
/// it as a `<name>` row at 1 thread (so trace-diff/trend track the
/// reference too, and the committed baseline documents what the blocked
/// kernels are compared against).
fn bench_naive<T>(name: &str, problem: &str, rows: &mut Vec<KernelRow>, mut run: impl FnMut() -> T) -> f64 {
    let _ = run();
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let start = std::time::Instant::now();
        let _ = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!("{name:<18} threads=1  {best:>8.4}s  (naive reference)");
    rows.push(KernelRow {
        kernel: name.to_string(),
        threads: 1,
        seconds: best,
        speedup_vs_serial: 1.0,
        speedup_vs_naive: 1.0,
        problem: problem.to_string(),
        warmup: WARMUP,
        available_parallelism: available_parallelism(),
    });
    best
}

/// The pre-blocking `ikj` triple loop with the `a == 0.0` skip — the
/// serial semantics every `matmul` call had before the packed core.
fn naive_matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.fill_zero();
    let n = b.cols();
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let out_row = &mut out.data_mut()[i * n..(i + 1) * n];
            for j in 0..n {
                out_row[j] += av * b_row[j];
            }
        }
    }
}

/// The pre-strip scalar CSR walk `mean_aggregate` used to run.
fn naive_mean_aggregate(csr: &Csr, h: &Matrix, out: &mut Matrix) {
    out.fill_zero();
    let d = h.cols();
    for i in 0..csr.num_nodes() {
        let nbrs = csr.neighbors(Vid(i as u32));
        if nbrs.is_empty() {
            continue;
        }
        let inv = 1.0 / nbrs.len() as f32;
        let out_row = &mut out.data_mut()[i * d..(i + 1) * d];
        for &j in nbrs {
            let src = h.row(j as usize);
            for k in 0..d {
                out_row[k] += inv * src[k];
            }
        }
    }
}

fn random_edges(n: u32, m: usize, rng: &mut StdRng) -> Vec<(u32, u32)> {
    (0..m).map(|_| (rng.gen_range(0..n), rng.gen_range(0..n))).collect()
}

/// A random KG big enough that 256 PPR pushes dominate graph build time.
fn ppr_graph(rng: &mut StdRng) -> HeteroGraph {
    let n = 20_000u32;
    let mut kg = KnowledgeGraph::with_capacity(n as usize, 120_000);
    for v in 0..n {
        kg.add_node(&format!("n{v}"), &format!("C{}", v % 4));
    }
    for (s, o) in random_edges(n, 120_000, rng) {
        kg.add_triple_terms(&format!("n{s}"), "C0", "r", &format!("n{o}"), "C0");
    }
    HeteroGraph::build(&kg)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows: Vec<KernelRow> = Vec::new();

    // Dense matmul: 768³ ≈ 453M multiply-adds — big enough that thread
    // scaling and blocking both show (the old 384³ case finished in ~8ms,
    // under the noise floor of thread spawns).
    const MM: usize = 768;
    let mm_problem = format!("{MM}x{MM}x{MM}");
    let a = xavier_uniform(MM, MM, &mut rng);
    let b = xavier_uniform(MM, MM, &mut rng);
    let mut out = Matrix::zeros(MM, MM);
    let naive_mm = bench_naive("matmul_naive", &mm_problem, &mut rows, || {
        naive_matmul(&a, &b, &mut out);
        out.data()[0]
    });
    bench_kernel("matmul", &mm_problem, Some(naive_mm), &mut rows, || {
        let mut out = Matrix::zeros(MM, MM);
        a.matmul_into(&b, &mut out);
        out.data().to_vec()
    });

    // Gradient-shaped products over the same operands: Aᵀ@B reduces over
    // rows (ordered-merge partials), A@Bᵀ packs columns.
    bench_kernel("t_matmul", &mm_problem, None, &mut rows, || {
        let mut out = Matrix::zeros(MM, MM);
        a.t_matmul_into(&b, &mut out);
        out.data().to_vec()
    });
    bench_kernel("matmul_t", &mm_problem, None, &mut rows, || {
        let mut out = Matrix::zeros(MM, MM);
        a.matmul_t_into(&b, &mut out);
        out.data().to_vec()
    });

    // RGCN mean aggregation at TOSG scale: 4k nodes × d=64 (a d1h1
    // task-oriented subgraph's feature matrix, ~1 MB — L2-resident,
    // which is the regime the paper's extraction step creates on
    // purpose), 160k edges (avg degree 40). Here the gather hits L2 and
    // the strip kernel's AVX2 + register accumulation shows over the
    // naive loop.
    let agg_nodes = 4_000usize;
    let agg_problem = "4000nx320000exd64";
    let agg_edges = random_edges(agg_nodes as u32, 320_000, &mut rng);
    let csr = Csr::from_edge_list(agg_nodes, &agg_edges);
    let h = xavier_uniform(agg_nodes, 64, &mut rng);
    let mut agg_out = Matrix::zeros(agg_nodes, 64);
    let naive_agg = bench_naive("mean_aggregate_naive", agg_problem, &mut rows, || {
        naive_mean_aggregate(&csr, &h, &mut agg_out);
        agg_out.data()[0]
    });
    bench_kernel("mean_aggregate", agg_problem, Some(naive_agg), &mut rows, || {
        let mut out = Matrix::zeros(agg_nodes, 64);
        mean_aggregate(&csr, &h, &mut out);
        out.data().to_vec()
    });

    // Full-KG-scale aggregation: 50k nodes (12.8 MB feature matrix),
    // 800k edges. The random gather spills past L2, so every kernel —
    // naive or blocked — converges to the memory system's line-fetch
    // floor; this row documents that floor (and why extraction, not
    // kernel tuning, is what makes full-KG aggregation affordable).
    let xl_nodes = 50_000usize;
    let xl_problem = "50000nx800000exd64";
    let xl_edges = random_edges(xl_nodes as u32, 800_000, &mut rng);
    let xl_csr = Csr::from_edge_list(xl_nodes, &xl_edges);
    let xl_h = xavier_uniform(xl_nodes, 64, &mut rng);
    let mut xl_out = Matrix::zeros(xl_nodes, 64);
    let naive_xl = bench_naive("mean_aggregate_xl_naive", xl_problem, &mut rows, || {
        naive_mean_aggregate(&xl_csr, &xl_h, &mut xl_out);
        xl_out.data()[0]
    });
    bench_kernel("mean_aggregate_xl", xl_problem, Some(naive_xl), &mut rows, || {
        let mut out = Matrix::zeros(xl_nodes, 64);
        mean_aggregate(&xl_csr, &xl_h, &mut out);
        out.data().to_vec()
    });

    // Batched PPR: 256 seeds over a 20k-node graph.
    let g = ppr_graph(&mut rng);
    let seeds: Vec<Vid> = (0..256u32).map(|i| Vid(i * 7)).collect();
    let ppr_cfg = PprConfig::default();
    bench_kernel("ppr_batch", "20000nx120000ex256seeds", None, &mut rows, || {
        approximate_ppr_batch(&g, &seeds, &ppr_cfg)
            .iter()
            .map(|scores| scores.len())
            .collect::<Vec<_>>()
    });

    // CSR construction: counting sort of 4M edges over 500k vertices.
    let build_edges = random_edges(500_000, 4_000_000, &mut rng);
    bench_kernel("csr_build", "500000nx4000000e", None, &mut rows, || {
        let csr = Csr::from_edge_list(500_000, &build_edges);
        csr.targets().to_vec()
    });

    // Speedups only materialize up to the machine's core count; record it
    // so results from core-starved machines read as what they are.
    #[derive(Serialize)]
    struct Report {
        available_parallelism: usize,
        rows: Vec<KernelRow>,
    }
    let report = Report {
        available_parallelism: available_parallelism(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize kernel rows");
    std::fs::write("BENCH_kernels.json", json).expect("write BENCH_kernels.json");
    eprintln!("[saved BENCH_kernels.json]");

    // Ledger record: one span per (kernel, threads) measurement, keyed
    // `<kernel>@<threads>t` — the same naming the diff/trend parsers give
    // BENCH rows, so a ledger baseline diffs directly against a fresh
    // BENCH_kernels.json.
    let history_path =
        std::env::var("KGTOSA_HISTORY").unwrap_or_else(|_| "results/history.jsonl".to_string());
    if !history_path.is_empty() {
        let aggs: Vec<kgtosa_obs::SpanAgg> = report
            .rows
            .iter()
            .map(|r| kgtosa_obs::SpanAgg {
                name: format!("{}@{}t", r.kernel, r.threads),
                count: 1,
                total_s: r.seconds,
                mean_s: r.seconds,
                p95_s: r.seconds,
                max_s: r.seconds,
                peak_max_bytes: 0,
                allocs: 0,
            })
            .collect();
        let t_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let record = kgtosa_obs::HistoryRecord::from_aggs(
            t_unix,
            &kgtosa_obs::current_git_rev(),
            report.available_parallelism,
            &aggs,
            &[],
        );
        match kgtosa_obs::append_record(&history_path, &record) {
            Ok(()) => eprintln!("[appended ledger record to {history_path}]"),
            Err(e) => eprintln!("[warn] cannot append {history_path}: {e}"),
        }
    }
}
