//! Cache amortization experiment — cold vs warm TOSG extraction.
//!
//! The paper's cost model (§V-C, Table IV) treats extraction as a
//! one-time preprocessing cost amortized over many training runs. The
//! content-addressed artifact cache makes that amortization literal:
//! the first (cold) extraction per pattern pays the full SPARQL fetch,
//! every later (warm) run loads the published artifact with zero
//! endpoint requests. This binary measures both phases for all four
//! `KG-TOSA_{d,h}` patterns and reports the speedup.

use kgtosa_bench::{measure, nc_extraction_task, save_json, Env};
use kgtosa_cache::{ArtifactCache, CacheOutcome};
use kgtosa_core::{extract_sparql_cached, GraphPattern};
use kgtosa_rdf::{FetchConfig, RdfStore};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

/// One phase of one pattern's extraction.
#[derive(Debug, Serialize)]
struct CacheRecord {
    pattern: String,
    phase: String,
    outcome: String,
    seconds: f64,
    requests: usize,
    triples: usize,
    peak_bytes: usize,
}

fn main() {
    let env = Env::from_env();
    println!(
        "Cache amortization — cold vs warm SPARQL extraction on MAG (scale {})",
        env.scale
    );
    let dataset = kgtosa_datagen::mag(env.scale, env.seed);
    let kg = &dataset.gen.kg;
    let task = nc_extraction_task(&dataset.nc[0]);
    println!("MAG (scaled): {} nodes, {} triples", kg.num_nodes(), kg.num_triples());

    let dir = std::env::var("KGTOSA_CACHE_DIR").unwrap_or_else(|_| "results/cache-bench".into());
    let cache = ArtifactCache::open(&dir).expect("open cache dir");
    cache.clear().expect("reset cache dir"); // cold must mean cold
    let store = RdfStore::new(kg);
    let fetch = FetchConfig::default();

    let mut records: Vec<CacheRecord> = Vec::new();
    println!(
        "{:<8} {:<5} {:<8} {:>10} {:>9} {:>10} {:>12}",
        "pattern", "phase", "outcome", "seconds", "requests", "triples", "peak-mem"
    );
    for pattern in GraphPattern::VARIANTS {
        for phase in ["cold", "warm"] {
            let ((res, outcome), seconds, peak) = measure(|| {
                extract_sparql_cached(&store, &task, &pattern, &fetch, &cache)
                    .expect("extraction")
            });
            let expected = if phase == "cold" { CacheOutcome::Miss } else { CacheOutcome::Hit };
            assert_eq!(outcome, expected, "{phase} {} resolved unexpectedly", pattern.label());
            println!(
                "{:<8} {:<5} {:<8} {:>10.4} {:>9} {:>10} {:>12}",
                pattern.label(),
                phase,
                outcome.label(),
                seconds,
                res.report.requests,
                res.report.triples,
                peak
            );
            records.push(CacheRecord {
                pattern: pattern.label(),
                phase: phase.into(),
                outcome: outcome.label().into(),
                seconds,
                requests: res.report.requests,
                triples: res.report.triples,
                peak_bytes: peak,
            });
        }
    }

    println!("\namortization (cold seconds / warm seconds):");
    for pair in records.chunks(2) {
        if let [cold, warm] = pair {
            println!(
                "  {:<8} {:>8.1}x  ({} requests saved per warm run)",
                cold.pattern,
                cold.seconds / warm.seconds.max(1e-9),
                cold.requests
            );
        }
    }
    let disk = cache.disk_stats().expect("cache stats");
    println!("cache dir {dir}: {} artifacts, {} bytes", disk.entries, disk.bytes);
    save_json("cache", &records);
}
