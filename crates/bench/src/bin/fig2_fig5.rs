//! Figures 2 & 5 — sample composition of the uniform random walk (URW,
//! Figure 2) versus the biased random walk (BRW, Figure 5) on the three
//! NC dataset/task pairs the paper plots: CG/YAGO, PV/MAG, PV/DBLP.
//!
//! The paper reports the target-vertex percentage of each sample (e.g.
//! URW 15.25% vs BRW 36.73% on YAGO) and shows that URW leaves vertices
//! disconnected from every target while BRW does not. Both are walk
//! samplers with h=2 and 20 initial vertices, as in §III-A.

use kgtosa_bench::{print_quality, save_json, Env};
use kgtosa_core::{extract_brw, extract_urw, QualityRow};
use kgtosa_kg::HeteroGraph;
use kgtosa_sampler::WalkConfig;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn main() {
    let env = Env::from_env();
    println!(
        "Figures 2 & 5 — URW vs BRW sample composition (scale {}, h=2, 20 roots)",
        env.scale
    );
    let walk = WalkConfig { roots: 20, walk_length: 2 };

    let yago = kgtosa_datagen::yago30(env.scale, env.seed + 100);
    let mag = kgtosa_datagen::mag(env.scale, env.seed);
    let dblp = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let cases = [
        (&yago, 1usize), // CG/YAGO (second NC task)
        (&mag, 0usize),  // PV/MAG
        (&dblp, 0usize), // PV/DBLP
    ];

    let mut rows = Vec::new();
    for (dataset, task_idx) in cases {
        let task = &dataset.nc[task_idx];
        let kg = &dataset.gen.kg;
        let graph = HeteroGraph::build(kg);
        let ext_task = kgtosa_bench::nc_extraction_task(task);
        let urw = extract_urw(kg, &graph, &ext_task, &walk, env.seed);
        let brw = extract_brw(kg, &graph, &ext_task, &walk, env.seed);
        let mut panel = vec![
            QualityRow::from_extraction(&urw),
            QualityRow::from_extraction(&brw),
        ];
        for r in &mut panel {
            r.method = format!("{} {}", r.method, task.name);
        }
        print_quality(&format!("{} — URW (Fig 2) vs BRW (Fig 5)", task.name), &panel);
        rows.extend(panel);
    }
    println!(
        "\nExpected shape: BRW raises the target-vertex ratio on every task \
         and drives target-disconnection to 0% (URW does not guarantee either)."
    );
    save_json("fig2_fig5", &rows);
}
