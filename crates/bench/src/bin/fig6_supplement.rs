//! Supplementary NC results (the paper shows three of its six NC tasks in
//! Figure 6 "due to space constraints" and defers the rest to the
//! supplementary material): PD/MAG, AC/DBLP, CG/YAGO with all four
//! methods × {FG, KG-TOSA_d1h1}.

use kgtosa_bench::{nc_fg_record, nc_tosg_record, print_panel, save_json, Env, NcMethod};
use kgtosa_core::{extract_sparql, GraphPattern};
use kgtosa_rdf::{FetchConfig, RdfStore};

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!(
        "Figure 6 (supplementary) — remaining NC tasks, scale {}",
        env.scale
    );

    let mag = kgtosa_datagen::mag(env.scale, env.seed);
    let dblp = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let yago = kgtosa_datagen::yago30(env.scale, env.seed + 100);
    let cases = [(&mag, 1usize), (&dblp, 1usize), (&yago, 1usize)];

    let mut all = Vec::new();
    for (dataset, task_idx) in cases {
        let task = &dataset.nc[task_idx];
        let kg = &dataset.gen.kg;
        let ext_task = kgtosa_bench::nc_extraction_task(task);
        let store = RdfStore::new(kg);
        let tosg =
            extract_sparql(&store, &ext_task, &GraphPattern::D1H1, &FetchConfig::default())
                .expect("extraction");
        println!(
            "\n{}: FG {} triples → KG' {} triples ({:.1}%)",
            task.name,
            kg.num_triples(),
            tosg.report.triples,
            100.0 * tosg.report.triples as f64 / kg.num_triples() as f64,
        );
        let mut rows = Vec::new();
        for method in NcMethod::ALL {
            rows.push(nc_fg_record(kg, task, method, &cfg));
            rows.push(nc_tosg_record(task, &tosg, method, &cfg));
        }
        print_panel(&format!("Supplementary — {}", task.name), &rows);
        all.extend(rows);
    }
    save_json("fig6_supplement", &all);
}
