//! Figure 6 — node classification: all four NC methods × {FG, KG'} on the
//! three plotted tasks (PV/MAG at the top, PV/DBLP in the middle,
//! PC/YAGO at the bottom), reporting accuracy, training time including
//! KG-TOSA's preprocessing, and peak training memory.
//!
//! `KG'` is extracted with the paper's NC default `KG-TOSA_{d1h1}`.

use kgtosa_bench::{nc_fg_record, nc_tosg_record, print_panel, save_json, Env, NcMethod};
use kgtosa_core::{extract_sparql, GraphPattern};
use kgtosa_rdf::{FetchConfig, RdfStore};

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!(
        "Figure 6 — NC tasks, 4 methods x (FG, KG-TOSA_d1h1), scale {}",
        env.scale
    );

    let mag = kgtosa_datagen::mag(env.scale, env.seed);
    let dblp = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let yago = kgtosa_datagen::yago30(env.scale, env.seed + 100);
    let cases = [(&mag, 0usize), (&dblp, 0usize), (&yago, 0usize)];

    let mut all = Vec::new();
    for (dataset, task_idx) in cases {
        let task = &dataset.nc[task_idx];
        let kg = &dataset.gen.kg;
        let ext_task = kgtosa_bench::nc_extraction_task(task);
        let store = RdfStore::new(kg);
        let tosg =
            extract_sparql(&store, &ext_task, &GraphPattern::D1H1, &FetchConfig::default())
                .expect("extraction");
        println!(
            "\n{}: FG {} triples → KG' {} triples ({:.1}%), extracted in {:.2}s",
            task.name,
            kg.num_triples(),
            tosg.report.triples,
            100.0 * tosg.report.triples as f64 / kg.num_triples() as f64,
            tosg.report.seconds
        );

        let mut rows = Vec::new();
        for method in NcMethod::ALL {
            rows.push(nc_fg_record(kg, task, method, &cfg));
            rows.push(nc_tosg_record(task, &tosg, method, &cfg));
        }
        print_panel(&format!("Figure 6 — {}", task.name), &rows);
        all.extend(rows);
    }
    save_json("fig6", &all);
}
