//! Figure 7 — link prediction: RGCN, MorsE and LHGNN × {FG, KG'} on the
//! three LP tasks (CA/YAGO3-10, PO/wikikg2, AA/DBLP), reporting Hits@10,
//! training time and peak memory. `KG'` uses the LP default
//! `KG-TOSA_{d2h1}`.
//!
//! Like the paper (where LHGNN exhausted its budget on the two larger
//! KGs), LHGNN runs only on the smallest dataset unless
//! `KGTOSA_LHGNN_ALL=1`.

use kgtosa_bench::{lp_fg_record, lp_tosg_record, print_panel, save_json, Env, LpMethod};
use kgtosa_core::{extract_sparql, GraphPattern};
use kgtosa_rdf::{FetchConfig, RdfStore};

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    let lhgnn_all = std::env::var("KGTOSA_LHGNN_ALL").is_ok();
    println!(
        "Figure 7 — LP tasks, 3 methods x (FG, KG-TOSA_d2h1), scale {}",
        env.scale
    );

    let yago3 = kgtosa_datagen::yago3_10(env.scale, env.seed + 400);
    let wiki = kgtosa_datagen::wikikg2(env.scale, env.seed + 300);
    let dblp = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let cases = [(&yago3, true), (&wiki, false), (&dblp, false)];

    let mut all = Vec::new();
    for (dataset, smallest) in cases {
        let task = &dataset.lp[0];
        let kg = &dataset.gen.kg;
        let ext_task = kgtosa_bench::lp_extraction_task(task, &dataset.gen);
        let store = RdfStore::new(kg);
        let tosg =
            extract_sparql(&store, &ext_task, &GraphPattern::D2H1, &FetchConfig::default())
                .expect("extraction");
        println!(
            "\n{}: FG {} triples → KG' {} triples ({:.1}%), extracted in {:.2}s",
            task.name,
            kg.num_triples(),
            tosg.report.triples,
            100.0 * tosg.report.triples as f64 / kg.num_triples() as f64,
            tosg.report.seconds
        );

        let mut rows = Vec::new();
        for method in LpMethod::ALL {
            if method == LpMethod::Lhgnn && !smallest && !lhgnn_all {
                println!("  (skipping LHGNN on {} — exceeds budget, as in the paper)", task.name);
                continue;
            }
            rows.push(lp_fg_record(kg, task, method, &cfg));
            rows.push(lp_tosg_record(kg, task, &tosg, method, &cfg));
        }
        print_panel(&format!("Figure 7 — {}", task.name), &rows);
        all.extend(rows);
    }
    save_json("fig7", &all);
}
