//! loadgen — replay mixed `/extract` + `/infer` traffic against an
//! in-process `kgtosa-serve` daemon through three regimes, and measure
//! what the robustness layers actually buy:
//!
//! 1. **steady** — a sustainable request mix; expects ~zero sheds and
//!    full goodput.
//! 2. **overload** — far more concurrent clients than the admission
//!    queue admits; the daemon must shed (`429`) instead of letting
//!    latency collapse, while goodput stays positive.
//! 3. **fault-storm** — a 100%-fatal `FaultPlan` is armed at runtime;
//!    uncached extractions give up and trip the circuit breaker (fast
//!    `503`s), cached extractions keep being answered bit-identically
//!    with an explicit `"degraded": true` marker, and once the storm
//!    lifts the breaker probes its way closed again.
//!
//! Prints a per-regime latency/goodput table and writes
//! `results/serve.json` (rows + breaker trajectory + drain report).
//! `--strict-slo` mirrors the CLI flag: with `KGTOSA_SLO` rules armed,
//! any violation exits 3 for CI gating. The run fails hard (exit 1) if
//! an invariant breaks: sheds in overload, breaker trip *and* re-close,
//! degraded answers matching the fresh fingerprint, zero handler panics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use kgtosa_bench::{save_json, Env};
use kgtosa_models::{CheckpointConfig, NcDataset, TrainConfig};
use kgtosa_obs::Json;
use kgtosa_rdf::{BreakerPolicy, RetryPolicy};
use kgtosa_serve::client::{get, post_json};
use kgtosa_serve::{ServeConfig, ServeState, Server};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

/// One request's fate, as observed by the client.
#[derive(Debug, Clone)]
struct Outcome {
    status: u16,
    ms: f64,
    degraded: bool,
    fingerprint: Option<String>,
}

#[derive(Debug, Clone, Serialize)]
struct RegimeRow {
    regime: String,
    requests: usize,
    ok: usize,
    shed_429: usize,
    breaker_503: usize,
    deadline_504: usize,
    other_errors: usize,
    degraded: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    goodput_rps: f64,
    elapsed_s: f64,
}

#[derive(Debug, Serialize)]
struct ServeBenchReport {
    scale: f64,
    seed: u64,
    regimes: Vec<RegimeRow>,
    breaker_trips: u64,
    breaker_closes: u64,
    breaker_trajectory: Vec<String>,
    drained_served: u64,
    drained_sheds: u64,
    handler_panics: u64,
    deadline_expired: u64,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

/// Fans `total` requests out over `clients` threads; `make` renders the
/// (path, body) of the `i`-th global request.
fn run_clients(
    addr: std::net::SocketAddr,
    clients: usize,
    total: usize,
    make: impl Fn(usize) -> (String, String) + Sync,
) -> Vec<Outcome> {
    let next = AtomicUsize::new(0);
    let timeout = Duration::from_secs(60);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            return out;
                        }
                        let (path, body) = make(i);
                        let t0 = Instant::now();
                        match post_json(addr, &path, &body, timeout) {
                            Ok(reply) => {
                                let parsed = Json::parse(&reply.body).ok();
                                let degraded = parsed
                                    .as_ref()
                                    .and_then(|j| j.get("degraded"))
                                    .and_then(Json::as_bool)
                                    .unwrap_or(false);
                                let fingerprint = parsed
                                    .as_ref()
                                    .and_then(|j| j.get("subgraph_fingerprint"))
                                    .and_then(Json::as_str)
                                    .map(str::to_string);
                                out.push(Outcome {
                                    status: reply.status,
                                    ms: t0.elapsed().as_secs_f64() * 1e3,
                                    degraded,
                                    fingerprint,
                                });
                            }
                            Err(_) => out.push(Outcome {
                                status: 0,
                                ms: t0.elapsed().as_secs_f64() * 1e3,
                                degraded: false,
                                fingerprint: None,
                            }),
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    })
}

fn summarize(regime: &str, outcomes: &[Outcome], elapsed_s: f64) -> RegimeRow {
    let mut ok_ms: Vec<f64> = outcomes.iter().filter(|o| o.status == 200).map(|o| o.ms).collect();
    ok_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let count = |s: u16| outcomes.iter().filter(|o| o.status == s).count();
    let ok = ok_ms.len();
    RegimeRow {
        regime: regime.to_string(),
        requests: outcomes.len(),
        ok,
        shed_429: count(429),
        breaker_503: count(503),
        deadline_504: count(504),
        other_errors: outcomes.len() - ok - count(429) - count(503) - count(504),
        degraded: outcomes.iter().filter(|o| o.degraded).count(),
        p50_ms: percentile(&ok_ms, 0.50),
        p95_ms: percentile(&ok_ms, 0.95),
        p99_ms: percentile(&ok_ms, 0.99),
        goodput_rps: if elapsed_s > 0.0 { ok as f64 / elapsed_s } else { 0.0 },
        elapsed_s,
    }
}

fn main() {
    let env = Env::from_env();
    let strict_slo = std::env::args().any(|a| a == "--strict-slo");
    // Mirrors the CLI's --slo handling so CI can gate the daemon's
    // behavior with declarative rules (KGTOSA_SLO spec).
    if let Ok(spec) = std::env::var("KGTOSA_SLO") {
        if !spec.is_empty() {
            let rules = kgtosa_obs::parse_slo_spec(&spec).expect("KGTOSA_SLO spec");
            kgtosa_obs::install_slo_rules(rules);
            kgtosa_obs::start_slo_watchdog(kgtosa_obs::slo_interval_from_env());
        }
    }
    let chrome_out = std::env::var("KGTOSA_CHROME_TRACE").ok().filter(|p| !p.is_empty());
    if chrome_out.is_some() {
        kgtosa_obs::arm_chrome();
    }
    let getn = |k: &str, d: usize| -> usize {
        std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
    };
    let n_steady = getn("KGTOSA_LOADGEN_STEADY", 600);
    let n_overload = getn("KGTOSA_LOADGEN_OVERLOAD", 400);
    let n_storm = getn("KGTOSA_LOADGEN_STORM", 200);

    println!(
        "loadgen — kgtosa-serve under steady / overload / fault-storm regimes (scale {})",
        env.scale
    );

    // A served checkpoint: train a small RGCN on the exact dataset +
    // shape the daemon loads, so /infer answers are the trainer's bits.
    let workdir = std::env::temp_dir().join(format!("kgtosa-loadgen-{}", std::process::id()));
    let ckpt_dir = workdir.join("ckpt");
    let cache_dir = workdir.join("cache");
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");
    let dataset = kgtosa_datagen::mag(env.scale, env.seed);
    let task = &dataset.nc[0];
    let task_name = task.name.clone();
    {
        let (graph, _) = kgtosa_core::transform(&dataset.gen.kg);
        let data = NcDataset {
            kg: &dataset.gen.kg,
            graph: &graph,
            labels: &task.labels,
            num_labels: task.num_labels,
            train: &task.train,
            valid: &task.valid,
            test: &task.test,
        };
        let cfg = TrainConfig {
            epochs: 3,
            dim: env.dim,
            lr: 0.02,
            seed: env.seed,
            checkpoint: Some(CheckpointConfig::new(&ckpt_dir)),
            ..Default::default()
        };
        let report = kgtosa_models::train_rgcn_nc(&data, &cfg);
        println!("trained RGCN checkpoint: metric {:.4}", report.metric);
    }
    let infer_nodes: Vec<String> =
        task.test.iter().take(8).map(|v| v.0.to_string()).collect();
    let infer_nodes = infer_nodes.join(",");
    drop(dataset);

    // A deliberately small daemon: 2 workers and a short queue so the
    // overload regime actually exercises shedding, quick retry giveups
    // and a tight breaker so the storm regime trips and recovers fast.
    let serve_cfg = ServeConfig {
        dataset: "mag".into(),
        scale: env.scale,
        seed: env.seed,
        dim: env.dim,
        lr: 0.02,
        workers: 2,
        queue_cap: 8,
        default_deadline: Duration::from_secs(30),
        max_deadline: Duration::from_secs(60),
        breaker: BreakerPolicy { trip_threshold: 5, cooldown_requests: 8, seed: env.seed },
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff_us: 100,
            max_backoff_us: 1_000,
            jitter_seed: env.seed,
            ..RetryPolicy::default()
        },
        cache_dir: Some(cache_dir),
        checkpoint_dir: Some(ckpt_dir),
        ..ServeConfig::default()
    };
    let state = ServeState::from_dataset(serve_cfg).expect("serve state");
    let server = Server::bind(state).expect("bind daemon");
    let addr = server.addr();
    let server_thread = std::thread::spawn(move || server.run().expect("serve loop"));
    println!("daemon on http://{addr} — steady {n_steady}, overload {n_overload}, storm {n_storm} requests");

    let panics0 = kgtosa_obs::counter("serve.handler_panics").get();
    let extract_body = |pattern: &str| {
        format!("{{\"task\":\"{task_name}\",\"pattern\":\"{pattern}\",\"deadline_ms\":30000}}")
    };
    let infer_body =
        format!("{{\"checkpoint\":\"RGCN\",\"task\":\"{task_name}\",\"nodes\":[{infer_nodes}],\"deadline_ms\":30000}}");

    let mut rows = Vec::new();

    // Regime 1 — steady: 4 clients, 2:1 extract (d1h1/d2h1, warming the
    // artifact cache) to infer.
    let t0 = Instant::now();
    let steady = run_clients(addr, 4, n_steady, |i| match i % 3 {
        0 => ("/infer".into(), infer_body.clone()),
        1 => ("/extract".into(), extract_body("d1h1")),
        _ => ("/extract".into(), extract_body("d2h1")),
    });
    rows.push(summarize("steady", &steady, t0.elapsed().as_secs_f64()));
    // Reference fingerprint for the storm's degraded answers. The storm
    // serves *d1h1* from the cache, so the reference must be a d1h1
    // answer specifically — steady outcomes arrive in client-completion
    // order and mix d1h1 with d2h1, so picking "any fingerprint" races.
    let fresh = post_json(addr, "/extract", &extract_body("d1h1"), Duration::from_secs(30))
        .expect("reference d1h1 extract");
    assert_eq!(fresh.status, 200, "reference d1h1 extract failed: {}", fresh.body);
    let fresh_fingerprint = Json::parse(&fresh.body)
        .ok()
        .and_then(|j| j.get("subgraph_fingerprint").and_then(Json::as_str).map(str::to_string))
        .expect("reference d1h1 answer carries a fingerprint");

    // Regime 2 — overload: 48 clients against a queue of 8 drained by 2
    // workers; /infer is uncacheable full-graph work, so the queue backs
    // up and admission must shed.
    let t0 = Instant::now();
    let overload = run_clients(addr, 48, n_overload, |_| ("/infer".into(), infer_body.clone()));
    rows.push(summarize("overload", &overload, t0.elapsed().as_secs_f64()));

    // Regime 3 — fault storm: 100% fatal faults; d2h2 misses the cache
    // and trips the breaker, d1h1 keeps being served from the cache as an
    // explicitly degraded answer.
    let storm_spec = format!("{{\"spec\":\"seed={},rate=1.0,fatal-rate=1.0\"}}", env.seed);
    let r = post_json(addr, "/admin/fault", &storm_spec, Duration::from_secs(5)).expect("arm fault");
    assert_eq!(r.status, 200, "arming the fault plan failed: {}", r.body);
    let t0 = Instant::now();
    let storm = run_clients(addr, 8, n_storm, |i| {
        if i % 2 == 0 {
            ("/extract".into(), extract_body("d1h1"))
        } else {
            ("/extract".into(), extract_body("d2h2"))
        }
    });
    rows.push(summarize("fault-storm", &storm, t0.elapsed().as_secs_f64()));

    // Recovery: lift the storm and keep knocking until a half-open probe
    // closes the breaker again.
    let r = post_json(addr, "/admin/fault", "{\"off\":true}", Duration::from_secs(5)).expect("clear fault");
    assert_eq!(r.status, 200);
    let mut recovered = false;
    for _ in 0..500 {
        let reply = post_json(addr, "/extract", &extract_body("d2h2"), Duration::from_secs(60))
            .expect("recovery request");
        if reply.status == 200 {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "breaker never re-closed after the storm lifted");

    // Final daemon-side stats, then drain.
    let stats = get(addr, "/serve", Duration::from_secs(5)).expect("GET /serve");
    let stats = Json::parse(&stats.body).expect("stats JSON");
    let breaker = stats.get("breaker").expect("breaker stats");
    let trips = breaker.get("trips").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let closes = breaker.get("closes").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let trajectory: Vec<String> = match breaker.get("trajectory") {
        Some(Json::Arr(items)) => items.iter().filter_map(|j| j.as_str().map(str::to_string)).collect(),
        _ => Vec::new(),
    };
    let r = post_json(addr, "/admin/shutdown", "{}", Duration::from_secs(5)).expect("shutdown");
    assert_eq!(r.status, 202);
    let drain = server_thread.join().expect("server thread");
    let handler_panics = kgtosa_obs::counter("serve.handler_panics").get() - panics0;

    println!(
        "\n{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "regime", "reqs", "ok", "429", "503", "504", "degr", "p50 ms", "p95 ms", "p99 ms", "rps"
    );
    for r in &rows {
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            r.regime, r.requests, r.ok, r.shed_429, r.breaker_503, r.deadline_504, r.degraded,
            r.p50_ms, r.p95_ms, r.p99_ms, r.goodput_rps
        );
    }
    println!(
        "\nbreaker: {trips} trip(s), {closes} close(s); trajectory: {}",
        trajectory.join(" ")
    );
    println!(
        "drain: served={} sheds={} handler_panics={} deadline_expired={}",
        drain.served, drain.sheds, drain.handler_panics, drain.deadline_expired
    );

    // Invariants — these are the point of the daemon; fail loudly.
    assert!(rows[1].shed_429 > 0, "overload regime must shed");
    assert!(rows[1].ok > 0, "overload regime must keep positive goodput");
    assert!(trips > 0, "fault storm must trip the breaker");
    assert!(closes > 0, "breaker must re-close after recovery");
    assert!(rows[2].breaker_503 > 0, "open breaker must fail misses fast");
    assert!(rows[2].degraded > 0, "cached answers must keep flowing, marked degraded");
    assert_eq!(handler_panics, 0, "no handler may panic under load");
    for o in storm.iter().filter(|o| o.degraded) {
        assert_eq!(
            o.fingerprint.as_deref(),
            Some(fresh_fingerprint.as_str()),
            "degraded cache-served subgraph must be bit-identical to the fresh one"
        );
    }

    save_json(
        "serve",
        &ServeBenchReport {
            scale: env.scale,
            seed: env.seed,
            regimes: rows,
            breaker_trips: trips,
            breaker_closes: closes,
            breaker_trajectory: trajectory,
            drained_served: drain.served,
            drained_sheds: drain.sheds,
            handler_panics,
            deadline_expired: drain.deadline_expired,
        },
    );

    let _ = std::fs::remove_dir_all(&workdir);
    if kgtosa_obs::slo_rules_installed() > 0 {
        kgtosa_obs::evaluate_slo_now();
    }
    kgtosa_obs::shutdown();
    if let Some(path) = &chrome_out {
        kgtosa_obs::write_chrome_trace(path).expect("write chrome trace");
        eprintln!("chrome: wrote trace to {path}");
    }
    let violations = kgtosa_obs::slo_violation_count();
    if strict_slo && violations > 0 {
        eprintln!("slo: {violations} violation(s) during the run (--strict-slo)");
        std::process::exit(3);
    }
}
