//! Chaos scenario — SPARQL-based extraction under injected endpoint
//! faults, quantifying what the fault-tolerance layer costs and proving
//! what it guarantees:
//!
//! 1. **baseline** — fault-free extraction.
//! 2. **transient+retry** — every request fails up to `burst` times before
//!    succeeding; the retry layer must absorb all of it and produce a
//!    subgraph *bit-identical* to the baseline (asserted).
//! 3. **fatal+partial** — a fraction of requests fail permanently; partial
//!    mode degrades to an incomplete subgraph with an explicit
//!    completeness fraction instead of aborting.
//!
//! Prints a per-regime table (seconds, retries, completeness) and writes
//! `results/chaos.json`.

use kgtosa_bench::{measure, save_json, Env};
use kgtosa_core::{extract_sparql, ExtractionResult, GraphPattern};
use kgtosa_rdf::{FaultPlan, FetchConfig, FetchMode, RdfStore, RetryPolicy};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

#[derive(Debug, Clone, Serialize)]
struct ChaosRow {
    regime: String,
    seconds: f64,
    triples: usize,
    requests: usize,
    completeness: f64,
    retries: u64,
    giveups: u64,
    faults_injected: u64,
}

fn main() {
    let env = Env::from_env();
    println!(
        "Chaos — KG-TOSA_d2h1 extraction on PV/MAG under injected endpoint faults (scale {})",
        env.scale
    );

    let dataset = kgtosa_datagen::mag(env.scale, env.seed);
    let task = &dataset.nc[0];
    let ext_task = kgtosa_bench::nc_extraction_task(task);
    let store = RdfStore::new(&dataset.gen.kg);
    let pattern = GraphPattern::D2H1;
    // Small pages so the fault schedule has many requests to hit even at
    // bench scales.
    let base_fetch = FetchConfig { batch_size: 256, ..Default::default() };

    let mut rows: Vec<ChaosRow> = Vec::new();
    // Each regime runs inside its own telemetry context, so the
    // fault-layer counters are scoped deltas rather than diffs of the
    // process-global counters — and SLO rules (when armed via
    // KGTOSA_SLO / --slo on the wrapper) see every regime as a separate
    // evaluation subject.
    let mut run = |regime: &str, fetch: &FetchConfig| -> ExtractionResult {
        let ctx = kgtosa_obs::TelemetryContext::new(&format!("chaos.{regime}"));
        let (res, seconds, _) = {
            let _scope = ctx.enter();
            measure(|| {
                extract_sparql(&store, &ext_task, &pattern, fetch)
                    .unwrap_or_else(|e| panic!("{regime} extraction failed: {e}"))
            })
        };
        ctx.finish();
        rows.push(ChaosRow {
            regime: regime.to_string(),
            seconds,
            triples: res.report.triples,
            requests: res.report.requests,
            completeness: res.report.completeness,
            retries: ctx.counter_delta("rdf.retries"),
            giveups: ctx.counter_delta("rdf.giveups"),
            faults_injected: ctx.counter_delta("rdf.faults"),
        });
        res
    };

    let clean = run("baseline", &base_fetch);

    let transient = run(
        "transient+retry",
        &FetchConfig {
            fault: Some(FaultPlan {
                seed: env.seed,
                fault_rate: 1.0,
                max_burst: 2,
                ..Default::default()
            }),
            retry: Some(RetryPolicy { jitter_seed: env.seed, ..Default::default() }),
            ..base_fetch.clone()
        },
    );
    assert_eq!(
        transient.subgraph.kg.triples(),
        clean.subgraph.kg.triples(),
        "transient faults below the retry budget must not change the extraction"
    );
    assert_eq!(transient.report.completeness, 1.0);

    let partial = run(
        "fatal+partial",
        &FetchConfig {
            fault: Some(FaultPlan {
                seed: env.seed,
                fault_rate: 0.3,
                fatal_rate: 0.3,
                ..Default::default()
            }),
            retry: Some(RetryPolicy { jitter_seed: env.seed, ..Default::default() }),
            mode: FetchMode::Partial,
            ..base_fetch
        },
    );
    assert!(
        partial.report.triples <= clean.report.triples,
        "a degraded extraction cannot contain more than the full one"
    );

    println!(
        "\n{:<16} {:>9} {:>9} {:>9} {:>13} {:>8} {:>8} {:>8}",
        "regime", "secs", "triples", "requests", "completeness", "faults", "retries", "giveups"
    );
    for r in &rows {
        println!(
            "{:<16} {:>9.3} {:>9} {:>9} {:>12.1}% {:>8} {:>8} {:>8}",
            r.regime,
            r.seconds,
            r.triples,
            r.requests,
            100.0 * r.completeness,
            r.faults_injected,
            r.retries,
            r.giveups
        );
    }
    let overhead = if rows[0].seconds > 0.0 {
        100.0 * (rows[1].seconds - rows[0].seconds) / rows[0].seconds
    } else {
        0.0
    };
    println!("\nretry-layer overhead under 100% transient fault rate: {overhead:+.1}%");

    save_json("chaos", &rows);
}
