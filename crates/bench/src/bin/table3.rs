//! Table III — subgraph quality statistics for URW, BRW, IBS and
//! KG-TOSA_{d1h1} on the four analyzed tasks (CG/YAGO, PC/YAGO, PV/DBLP,
//! PV/MAG): data sufficiency (V_T count & ratio, |C'|, |R'|), graph
//! topology (target-disconnected %, average distance to target, neighbour
//! type entropy, Eq. 2) and the downstream GraphSAINT accuracy.
//!
//! Walk parameters follow the paper (h = 3, initial set covering V_T,
//! scaled from the 20k of §V-C).

use kgtosa_bench::{nc_tosg_record, save_json, Env, NcMethod};
use kgtosa_core::{
    extract_brw, extract_ibs, extract_sparql, extract_urw, GraphPattern, QualityRow,
};
use kgtosa_kg::HeteroGraph;
use kgtosa_rdf::{FetchConfig, RdfStore};
use kgtosa_sampler::{IbsConfig, WalkConfig};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

#[derive(Serialize)]
struct Row {
    task: String,
    #[serde(flatten)]
    quality: QualityRow,
    accuracy: f64,
}

fn main() {
    let env = Env::from_env();
    let cfg = env.train_config();
    println!("Table III — subgraph quality, URW vs BRW vs IBS vs KG-TOSA_d1h1 (scale {})", env.scale);

    let yago = kgtosa_datagen::yago30(env.scale, env.seed + 100);
    let dblp = kgtosa_datagen::dblp(env.scale, env.seed + 200);
    let mag = kgtosa_datagen::mag(env.scale, env.seed);
    let cases = [
        (&yago, 1usize), // CG/YAGO
        (&yago, 0usize), // PC/YAGO
        (&dblp, 0usize), // PV/DBLP
        (&mag, 0usize),  // PV/MAG
    ];

    let mut all = Vec::new();
    for (dataset, idx) in cases {
        let task = &dataset.nc[idx];
        let kg = &dataset.gen.kg;
        let graph = HeteroGraph::build(kg);
        let ext_task = kgtosa_bench::nc_extraction_task(task);
        let walk = WalkConfig {
            roots: ext_task.targets.len().min(20_000),
            walk_length: 3,
        };
        let store = RdfStore::new(kg);

        let extractions = vec![
            extract_urw(kg, &graph, &ext_task, &walk, env.seed),
            extract_brw(kg, &graph, &ext_task, &walk, env.seed),
            extract_ibs(kg, &graph, &ext_task, &IbsConfig { k: 16, threads: 4, ..Default::default() }),
            extract_sparql(&store, &ext_task, &GraphPattern::D1H1, &FetchConfig::default())
                .expect("extraction"),
        ];

        println!("\n--- {} ---", task.name);
        println!("{} {:>9}", QualityRow::header(), "accuracy");
        for ext in &extractions {
            let quality = QualityRow::from_extraction(ext);
            // Downstream accuracy: GraphSAINT trained on the subgraph.
            let rec = nc_tosg_record(task, ext, NcMethod::GraphSaint, &cfg);
            println!("{} {:>9.4}", quality.format_row(), rec.metric);
            all.push(Row {
                task: task.name.clone(),
                quality,
                accuracy: rec.metric,
            });
        }
    }
    println!(
        "\nExpected shape (paper Table III): URW has the lowest target ratio \
         and non-zero disconnection; BRW/IBS/d1h1 reach 0% disconnection with \
         fewer types and shorter target distances; d1h1 achieves it at \
         negligible extraction cost."
    );
    save_json("table3", &all);
}
