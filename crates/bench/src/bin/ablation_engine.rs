//! Ablation of the SPARQL extraction machinery (the optimizations
//! Algorithm 3 argues for):
//!
//! 1. **pagination batch size** (`bs`) — many tiny pages pay per-request
//!    overhead; one huge page loses the streaming benefit,
//! 2. **worker threads** (`P`) — subqueries are fetched in parallel,
//! 3. **index choice** — hexastore prefix scans vs a forced full scan
//!    (what a store without the six orderings would have to do).

use std::time::Instant;

use kgtosa_bench::Env;
use kgtosa_core::{compile_subqueries, GraphPattern};
use kgtosa_rdf::{fetch_triples, FetchConfig, InProcessEndpoint, RdfStore};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

#[derive(Serialize)]
struct SweepRow {
    what: String,
    value: String,
    seconds: f64,
    requests: usize,
    triples: usize,
}

fn main() {
    let env = Env::from_env();
    println!("Ablation — SPARQL extraction machinery (scale {})", env.scale);
    let dataset = kgtosa_datagen::mag(env.scale, env.seed);
    let kg = &dataset.gen.kg;
    let task = kgtosa_bench::nc_extraction_task(&dataset.nc[0]);
    let store = RdfStore::new(kg);
    // d1h1 keeps a single triple-var projection across subqueries, which
    // keeps the sweep loops simple.
    let subqueries = compile_subqueries(&task, &GraphPattern::D1H1);
    let queries: Vec<_> = subqueries.iter().map(|sq| sq.query.clone()).collect();
    let vars = subqueries[0].triple_vars.clone();
    let mut rows: Vec<SweepRow> = Vec::new();

    println!("\n-- pagination batch size (threads = 2) --");
    println!("{:>10} {:>10} {:>10} {:>10}", "bs", "seconds", "requests", "triples");
    for bs in [64usize, 512, 4096, 32_768, 1_000_000] {
        let ep = InProcessEndpoint::new(&store);
        let start = Instant::now();
        let triples = fetch_triples(
            &ep,
            &store,
            &queries,
            (&vars.0, &vars.1, &vars.2),
            &FetchConfig { batch_size: bs, threads: 2, ..FetchConfig::default() },
        )
        .unwrap();
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:>10} {:>10.4} {:>10} {:>10}",
            bs,
            secs,
            ep.stats().requests(),
            triples.len()
        );
        rows.push(SweepRow {
            what: "batch_size".into(),
            value: bs.to_string(),
            seconds: secs,
            requests: ep.stats().requests(),
            triples: triples.len(),
        });
    }

    println!("\n-- worker threads (bs = 4096) --");
    println!("{:>10} {:>10} {:>10}", "P", "seconds", "triples");
    for threads in [1usize, 2, 4, 8] {
        let ep = InProcessEndpoint::new(&store);
        let start = Instant::now();
        let triples = fetch_triples(
            &ep,
            &store,
            &queries,
            (&vars.0, &vars.1, &vars.2),
            &FetchConfig { batch_size: 4096, threads, ..FetchConfig::default() },
        )
        .unwrap();
        let secs = start.elapsed().as_secs_f64();
        println!("{:>10} {:>10.4} {:>10}", threads, secs, triples.len());
        rows.push(SweepRow {
            what: "threads".into(),
            value: threads.to_string(),
            seconds: secs,
            requests: ep.stats().requests(),
            triples: triples.len(),
        });
    }

    println!("\n-- index choice: hexastore prefix scan vs full scan --");
    let hex = store.hexastore();
    let raw: Vec<[u32; 3]> = hex.scan(None, None, None).collect();
    // Probe: all (s, ?, ?) scans for the first 2000 subjects.
    let probes: Vec<u32> = (0..kg.num_nodes().min(2000) as u32).collect();
    let start = Instant::now();
    let mut indexed_hits = 0usize;
    for &s in &probes {
        indexed_hits += hex.scan(Some(s), None, None).count();
    }
    let indexed = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let mut scan_hits = 0usize;
    for &s in &probes {
        scan_hits += raw.iter().filter(|t| t[0] == s).count();
    }
    let full = start.elapsed().as_secs_f64();
    assert_eq!(indexed_hits, scan_hits);
    println!(
        "{} probes: hexastore {:.4}s vs full scan {:.4}s ({:.0}x)",
        probes.len(),
        indexed,
        full,
        full / indexed.max(1e-9)
    );
    rows.push(SweepRow {
        what: "index".into(),
        value: "hexastore".into(),
        seconds: indexed,
        requests: probes.len(),
        triples: indexed_hits,
    });
    rows.push(SweepRow {
        what: "index".into(),
        value: "full_scan".into(),
        seconds: full,
        requests: probes.len(),
        triples: scan_hits,
    });

    kgtosa_bench::save_json("ablation_engine", &rows);
}
