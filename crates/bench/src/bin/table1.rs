//! Table I — benchmark statistics: nodes, edges, node types, edge types
//! for the five (scaled) KGs.

use kgtosa_bench::{save_json, Env};
use serde::Serialize;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

#[derive(Serialize)]
struct Row {
    dataset: String,
    nodes: usize,
    edges: usize,
    node_types: usize,
    edge_types: usize,
}

fn main() {
    let env = Env::from_env();
    println!("Table I — Benchmark statistics (scale {})", env.scale);
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>8}",
        "KG-Dataset", "#nodes", "#edges", "#n-type", "#e-type"
    );
    let mut rows = Vec::new();
    for d in kgtosa_datagen::all_datasets(env.scale, env.seed) {
        let kg = &d.gen.kg;
        println!(
            "{:<14} {:>9} {:>9} {:>8} {:>8}",
            d.gen.spec.name,
            kg.num_nodes(),
            kg.num_triples(),
            kg.num_classes(),
            kg.num_relations()
        );
        rows.push(Row {
            dataset: d.gen.spec.name.clone(),
            nodes: kg.num_nodes(),
            edges: kg.num_triples(),
            node_types: kg.num_classes(),
            edge_types: kg.num_relations(),
        });
    }
    save_json("table1", &rows);
}
