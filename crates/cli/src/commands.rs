//! Subcommand implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::time::Instant;

use kgtosa_cache::ArtifactCache;
use kgtosa_core::{
    extract_brw, extract_ibs, extract_metapath, extract_sparql, extract_sparql_cached, transform,
    ExtractionResult, ExtractionTask, GraphPattern, MetapathConfig, QualityRow,
};
use kgtosa_obs::{render_trace_table, summarize_jsonl};
use kgtosa_datagen::Dataset;
use kgtosa_kg::{HeteroGraph, KnowledgeGraph, Vid};
use kgtosa_models::{
    train_graphsaint_nc, train_lhgnn_lp, train_morse_lp, train_rgcn_lp, train_rgcn_nc,
    train_sehgnn_nc, train_shadowsaint_nc, CheckpointConfig, LpDataset, NcDataset, SaintSampler,
    TrainConfig, TrainReport,
};
use kgtosa_rdf::{
    read_ntriples, write_ntriples, FaultPlan, FetchConfig, FetchMode, PageCache, RdfStore,
    RetryPolicy, SparqlEngine,
};
use kgtosa_sampler::{IbsConfig, WalkConfig};

use crate::args::Args;

/// Loads a KG from N-Triples (`.nt`) or the binary snapshot format
/// (`.kgb`), auto-detected by extension.
fn load_kg(path: &str) -> Result<KnowledgeGraph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if path.ends_with(".kgb") {
        kgtosa_kg::read_snapshot(BufReader::new(file))
            .map_err(|e| format!("cannot parse snapshot {path}: {e}"))
    } else {
        read_ntriples(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
    }
}

/// Saves a KG as N-Triples, or as a binary snapshot when the path ends in
/// `.kgb`.
fn save_kg(kg: &KnowledgeGraph, path: &str) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    if path.ends_with(".kgb") {
        kgtosa_kg::write_snapshot(kg, BufWriter::new(file))
            .map_err(|e| format!("cannot write snapshot {path}: {e}"))
    } else {
        write_ntriples(kg, BufWriter::new(file)).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

fn dataset_by_name(name: &str, scale: f64, seed: u64) -> Result<Dataset, String> {
    match name {
        "mag" => Ok(kgtosa_datagen::mag(scale, seed)),
        "yago30" => Ok(kgtosa_datagen::yago30(scale, seed)),
        "dblp" => Ok(kgtosa_datagen::dblp(scale, seed)),
        "wikikg2" => Ok(kgtosa_datagen::wikikg2(scale, seed)),
        "yago3-10" => Ok(kgtosa_datagen::yago3_10(scale, seed)),
        other => Err(format!(
            "unknown dataset {other:?} (expected mag|yago30|dblp|wikikg2|yago3-10)"
        )),
    }
}

/// `--checkpoint-dir DIR`, the root under which both fetch page
/// checkpoints and training epoch checkpoints are kept.
fn checkpoint_dir(args: &Args) -> Option<PathBuf> {
    args.options.get("checkpoint-dir").map(PathBuf::from)
}

/// Builds the fetch-layer fault-tolerance config from the CLI flags:
/// `--fault-spec` (deterministic fault injection), `--retry` (backoff
/// policy), `--partial` (degrade instead of aborting), plus an optional
/// page-checkpoint file so an interrupted extraction resumes. Unless
/// `--no-cache`, an in-memory SPARQL page cache dedups repeated
/// rendered subqueries within the invocation (results stay bit-identical;
/// only duplicate endpoint round-trips are saved).
fn fetch_config(args: &Args, checkpoint: Option<PathBuf>) -> Result<FetchConfig, String> {
    let mut cfg = FetchConfig::default();
    if let Some(spec) = args.options.get("fault-spec") {
        cfg.fault = Some(FaultPlan::parse(spec).map_err(|e| format!("--fault-spec: {e}"))?);
    }
    if let Some(spec) = args.options.get("retry") {
        cfg.retry = Some(RetryPolicy::parse(spec).map_err(|e| format!("--retry: {e}"))?);
    }
    if args.flag("partial") {
        cfg.mode = FetchMode::Partial;
    }
    if !args.flag("no-cache") {
        cfg.page_cache = Some(PageCache::new());
    }
    cfg.checkpoint = checkpoint;
    Ok(cfg)
}

/// Resolves the on-disk extraction artifact cache: `--cache-dir DIR`
/// (or `KGTOSA_CACHE_DIR`) opts in, `--no-cache` wins over both, and
/// `--cache-budget BYTES` bounds the directory with LRU eviction.
fn artifact_cache(args: &Args) -> Result<Option<ArtifactCache>, String> {
    if args.flag("no-cache") {
        return Ok(None);
    }
    let dir = match args
        .options
        .get("cache-dir")
        .cloned()
        .or_else(|| std::env::var("KGTOSA_CACHE_DIR").ok())
    {
        Some(d) if !d.is_empty() => d,
        _ => return Ok(None),
    };
    let mut cache =
        ArtifactCache::open(&dir).map_err(|e| format!("cannot open cache dir {dir}: {e}"))?;
    if let Some(spec) = args.options.get("cache-budget") {
        let bytes: u64 = spec
            .parse()
            .map_err(|_| format!("invalid value for --cache-budget: {spec:?}"))?;
        cache = cache.with_budget(bytes);
    }
    Ok(Some(cache))
}

/// SPARQL extraction through the artifact cache when one is configured,
/// falling back to a plain [`extract_sparql`] otherwise. Returns how the
/// cache resolved (`None` when no cache is configured) so callers can
/// report whether the endpoint was touched.
fn extract_sparql_maybe_cached(
    args: &Args,
    store: &RdfStore<'_>,
    task: &ExtractionTask,
    pattern: &GraphPattern,
    fetch: &FetchConfig,
) -> Result<(ExtractionResult, Option<&'static str>), String> {
    match artifact_cache(args)? {
        Some(cache) => {
            let (res, outcome) = extract_sparql_cached(store, task, pattern, fetch, &cache)
                .map_err(|e| e.to_string())?;
            kgtosa_obs::info!(
                "cache: {} for {} ({})",
                outcome.label(),
                pattern.label(),
                cache.dir().display()
            );
            Ok((res, Some(outcome.label())))
        }
        None => extract_sparql(store, task, pattern, fetch)
            .map_err(|e| e.to_string())
            .map(|res| (res, None)),
    }
}

/// Epoch checkpointing for one training run. `run` names a subdirectory
/// (`fg`, `tosg-d1h1`, …) so the FG and TOSG runs of a single
/// `train`/`compare` invocation keep separate snapshots.
fn train_checkpoint(args: &Args, run: &str) -> Result<Option<CheckpointConfig>, String> {
    let Some(dir) = checkpoint_dir(args) else {
        return Ok(None);
    };
    let interval = args.parse_or("checkpoint-interval", 1usize)?;
    if interval == 0 {
        return Err("--checkpoint-interval must be >= 1".into());
    }
    let mut cfg = CheckpointConfig::new(dir.join(run));
    cfg.interval = interval;
    Ok(Some(cfg))
}

fn pattern_by_name(name: &str) -> Result<GraphPattern, String> {
    GraphPattern::VARIANTS
        .into_iter()
        .find(|p| p.label() == name)
        .ok_or_else(|| format!("unknown pattern {name:?} (expected d1h1|d2h1|d1h2|d2h2)"))
}

/// `kgtosa generate`.
pub fn generate(args: &Args) -> Result<(), String> {
    let dataset = args.required("dataset")?;
    let out = args.required("out")?;
    let scale = args.parse_or("scale", 0.1)?;
    let seed = args.parse_or("seed", 7u64)?;
    let d = dataset_by_name(dataset, scale, seed)?;
    save_kg(&d.gen.kg, out)?;
    println!(
        "wrote {out}: {} nodes, {} triples, {} node types, {} edge types",
        d.gen.kg.num_nodes(),
        d.gen.kg.num_triples(),
        d.gen.kg.num_classes(),
        d.gen.kg.num_relations()
    );
    for t in &d.nc {
        kgtosa_obs::info!(
            "  NC task {}: {} targets of class {}",
            t.name,
            t.targets().len(),
            t.target_class
        );
    }
    for t in &d.lp {
        kgtosa_obs::info!(
            "  LP task {}: predicate <{}>, {} train / {} valid / {} test",
            t.name,
            t.predicate,
            t.train.len(),
            t.valid.len(),
            t.test.len()
        );
    }
    Ok(())
}

/// `kgtosa stats`.
pub fn stats(args: &Args) -> Result<(), String> {
    let kg = load_kg(args.required("kg")?)?;
    println!(
        "nodes: {}\ntriples: {}\nnode types: {}\nedge types: {}",
        kg.num_nodes(),
        kg.num_triples(),
        kg.num_classes(),
        kg.num_relations()
    );
    let mut hist: Vec<(usize, String)> = kg
        .class_histogram()
        .into_iter()
        .enumerate()
        .map(|(c, n)| (n, kg.class_term(kgtosa_kg::Cid(c as u32)).to_string()))
        .collect();
    hist.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest classes:");
    for (count, name) in hist.iter().take(10) {
        println!("  {name:<32} {count}");
    }
    if let Some(class) = args.options.get("target-class") {
        let cid = kg
            .find_class(class)
            .ok_or_else(|| format!("class {class:?} not found"))?;
        let targets = kg.nodes_of_class(cid);
        let q = kgtosa_kg::quality(&kg, &targets);
        println!("\nquality w.r.t. {} targets of class {class}:", targets.len());
        println!("  target ratio      {:.2}%", q.target_ratio_pct);
        println!("  disconnected      {:.2}%", q.target_disconnected_pct);
        println!("  avg dist→target   {:.2}", q.avg_dist_to_target);
        println!("  type entropy      {:.3}", q.avg_entropy);
    }
    Ok(())
}

/// `kgtosa query`.
pub fn query(args: &Args) -> Result<(), String> {
    let kg = load_kg(args.required("kg")?)?;
    let sparql = args.required("sparql")?;
    let limit = args.parse_or("limit", 20usize)?;
    let store = RdfStore::new(&kg);
    let engine = SparqlEngine::new(&store);
    let start = Instant::now();
    let rs = engine.execute_str(sparql).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    if args.flag("explain") {
        kgtosa_obs::info!("parsed: {}", kgtosa_rdf::parse(sparql).map_err(|e| e.to_string())?);
    }
    println!("{}", rs.vars.join("\t"));
    for i in 0..rs.len().min(limit) {
        println!("{}", rs.row_terms(&store, i).join("\t"));
    }
    if rs.len() > limit {
        println!("... ({} more rows)", rs.len() - limit);
    }
    kgtosa_obs::info!("{} rows in {:.3}s", rs.len(), elapsed.as_secs_f64());
    Ok(())
}

/// `kgtosa extract`.
pub fn extract(args: &Args) -> Result<(), String> {
    let kg = load_kg(args.required("kg")?)?;
    let class = args.required("target-class")?;
    let out = args.required("out")?;
    let method = args.get_or("method", "sparql");
    let seed = args.parse_or("seed", 7u64)?;
    let cid = kg
        .find_class(class)
        .ok_or_else(|| format!("class {class:?} not found"))?;
    let targets = kg.nodes_of_class(cid);
    let task = ExtractionTask::node_classification("cli", class, targets);

    let mut cache_outcome: Option<&'static str> = None;
    let result: ExtractionResult = match method {
        "sparql" => {
            let pattern = pattern_by_name(args.get_or("pattern", "d1h1"))?;
            let store = RdfStore::new(&kg);
            let fetch = fetch_config(args, checkpoint_dir(args).map(|d| d.join("fetch.ckpt")))?;
            let (res, outcome) = extract_sparql_maybe_cached(args, &store, &task, &pattern, &fetch)?;
            cache_outcome = outcome;
            res
        }
        "brw" => {
            let g = HeteroGraph::build(&kg);
            let cfg = WalkConfig {
                roots: args.parse_or("roots", 2000usize)?,
                walk_length: args.parse_or("walk-length", 3usize)?,
            };
            extract_brw(&kg, &g, &task, &cfg, seed)
        }
        "ibs" => {
            let g = HeteroGraph::build(&kg);
            let cfg = IbsConfig {
                k: args.parse_or("top-k", 16usize)?,
                threads: args.parse_or("threads", kgtosa_par::current_threads())?,
                ..Default::default()
            };
            extract_ibs(&kg, &g, &task, &cfg)
        }
        "metapath" => {
            let g = HeteroGraph::build(&kg);
            let cfg = MetapathConfig {
                max_len: args.parse_or("max-len", 2usize)?,
                max_paths: args.parse_or("max-paths", 8usize)?,
            };
            extract_metapath(&kg, &g, &task, &cfg)
        }
        other => {
            return Err(format!(
                "unknown method {other:?} (expected sparql|brw|ibs|metapath)"
            ))
        }
    };

    println!("{}", QualityRow::header());
    println!("{}", QualityRow::from_extraction(&result).format_row());
    if let Some(outcome) = cache_outcome {
        println!("cache: {outcome}");
    }
    println!(
        "extracted {} triples / {} nodes in {:.3}s ({:.1}% of the input)",
        result.report.triples,
        result.subgraph.kg.num_nodes(),
        result.report.seconds,
        100.0 * result.report.triples as f64 / kg.num_triples().max(1) as f64
    );
    if result.report.completeness < 1.0 {
        println!(
            "WARNING: partial extraction — {:.1}% of planned fetch pages retrieved",
            100.0 * result.report.completeness
        );
    }
    save_kg(&result.subgraph.kg, out)?;
    kgtosa_obs::info!("wrote {out}");
    Ok(())
}

/// `kgtosa trace-summary`: aggregates a JSONL trace (written via
/// `--trace-out` or `KGTOSA_TRACE`) into a per-span table on stdout.
pub fn trace_summary(args: &Args) -> Result<(), String> {
    let path = args
        .positionals
        .first()
        .map(|s| s.as_str())
        .or_else(|| args.options.get("trace").map(|s| s.as_str()))
        .ok_or("usage: kgtosa trace-summary <trace.jsonl>")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let rows = summarize_jsonl(&text)?;
    if rows.is_empty() {
        return Err(format!("{path} contains no span or train.epoch events"));
    }
    print!("{}", render_trace_table(&rows));
    Ok(())
}

/// `kgtosa trace-diff OLD NEW`: per-span comparison of two JSONL traces or
/// BENCH_*.json reports; errors (exit 1) when any span regresses beyond the
/// threshold so CI can gate on it.
pub fn trace_diff(args: &Args) -> Result<(), String> {
    let (old_path, new_path) = match args.positionals.as_slice() {
        [old, new] => (old.as_str(), new.as_str()),
        _ => return Err("usage: kgtosa trace-diff <old> <new> [--threshold PCT]".into()),
    };
    let base = kgtosa_obs::DiffOptions::default();
    let opts = kgtosa_obs::DiffOptions {
        threshold_pct: args.parse_or("threshold", base.threshold_pct)?,
        min_seconds: args.parse_or("min-seconds", base.min_seconds)?,
        ..base
    };
    let old_text =
        std::fs::read_to_string(old_path).map_err(|e| format!("cannot read {old_path}: {e}"))?;
    let new_text =
        std::fs::read_to_string(new_path).map_err(|e| format!("cannot read {new_path}: {e}"))?;
    let report = kgtosa_obs::diff_trace_texts(&old_text, &new_text, &opts)
        .map_err(|e| format!("trace-diff {old_path} vs {new_path}: {e}"))?;
    print!("{}", report.render());
    github_step_summary(&kgtosa_obs::render_markdown(
        &report,
        &format!("trace-diff: {old_path} vs {new_path}"),
    ));
    let regressions = report.regressions();
    if regressions > 0 {
        return Err(format!(
            "{regressions} span(s) regressed beyond {:.0}% (old: {old_path}, new: {new_path})",
            report.threshold_pct
        ));
    }
    Ok(())
}

/// Appends a markdown fragment to the GitHub Actions step summary when
/// `GITHUB_STEP_SUMMARY` points at a writable file (a no-op elsewhere, so
/// local runs stay stderr-only).
fn github_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    if path.is_empty() {
        return;
    }
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(f, "{markdown}");
    }
}

/// `kgtosa trace-trend HISTORY NEW`: gates a new run (JSONL trace or
/// BENCH_*.json) against the rolling-window median of the perf-history
/// ledger. A missing or empty ledger passes — the first run seeds history
/// instead of failing on it.
pub fn trace_trend(args: &Args) -> Result<(), String> {
    if args.flag("compact") {
        return trace_trend_compact(args);
    }
    let (history_path, new_path) = match args.positionals.as_slice() {
        [history, new] => (history.as_str(), new.as_str()),
        _ => {
            return Err(
                "usage: kgtosa trace-trend <history.jsonl> <new> [--window K] [--threshold PCT]"
                    .into(),
            )
        }
    };
    let window: usize = args.parse_or("window", 10)?;
    let base = kgtosa_obs::DiffOptions::default();
    let opts = kgtosa_obs::DiffOptions {
        threshold_pct: args.parse_or("threshold", base.threshold_pct)?,
        min_seconds: args.parse_or("min-seconds", base.min_seconds)?,
        ..base
    };
    let history_text = match std::fs::read_to_string(history_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("cannot read {history_path}: {e}")),
    };
    let new_text =
        std::fs::read_to_string(new_path).map_err(|e| format!("cannot read {new_path}: {e}"))?;
    let new_aggs = kgtosa_obs::parse_trace_or_bench(&new_text)
        .map_err(|e| format!("new run {new_path}: {e}"))?;
    let trend = kgtosa_obs::trend_against_history(&history_text, &new_aggs, window, &opts)
        .map_err(|e| format!("ledger {history_path}: {e}"))?;
    eprintln!(
        "trace-trend: {} ledger record(s) in window (asked {})",
        trend.baseline_records, trend.window
    );
    print!("{}", trend.diff.render());
    github_step_summary(&kgtosa_obs::render_markdown(
        &trend.diff,
        &format!(
            "trace-trend: {new_path} vs median of last {} ledger record(s)",
            trend.baseline_records
        ),
    ));
    let regressions = trend.diff.regressions();
    if regressions > 0 {
        return Err(format!(
            "{regressions} span(s) regressed beyond {:.0}% vs the rolling ledger median \
             (ledger: {history_path}, new: {new_path})",
            trend.diff.threshold_pct
        ));
    }
    Ok(())
}

/// `kgtosa trace-trend --compact HISTORY`: rewrites the perf-history
/// ledger in place, keeping only the newest `--cap` records per
/// (kernel-set, threads) key. Rolling medians gate on the last `--window`
/// records of a key, so any cap ≥ the window leaves every gate decision
/// bit-identical while bounding ledger growth.
fn trace_trend_compact(args: &Args) -> Result<(), String> {
    // `--compact history.jsonl` parses as key=value, `history.jsonl
    // --compact` as a positional — accept the ledger path from either.
    let compact_val = args.options.get("compact").map(|s| s.as_str()).unwrap_or("true");
    let history_path = match args.positionals.as_slice() {
        [history] => history.as_str(),
        [] if compact_val != "true" => compact_val,
        _ => return Err("usage: kgtosa trace-trend --compact <history.jsonl> [--cap 64]".into()),
    };
    let cap: usize = args.parse_or("cap", 64)?;
    let text = std::fs::read_to_string(history_path)
        .map_err(|e| format!("cannot read {history_path}: {e}"))?;
    let (compacted, report) = kgtosa_obs::compact_history(&text, cap)
        .map_err(|e| format!("ledger {history_path}: {e}"))?;
    if report.dropped == 0 {
        println!(
            "trace-trend: {history_path} already within cap ({} record(s), cap {cap} per key)",
            report.kept
        );
        return Ok(());
    }
    // Write-then-rename so a crash mid-compaction never truncates the
    // ledger CI gates on.
    let tmp = format!("{history_path}.tmp");
    std::fs::write(&tmp, &compacted).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, history_path)
        .map_err(|e| format!("cannot replace {history_path}: {e}"))?;
    println!(
        "trace-trend: compacted {history_path}: kept {} record(s), dropped {} (cap {cap} per key)",
        report.kept, report.dropped
    );
    Ok(())
}

/// `kgtosa trace-validate TRACE`: load-validates a Chrome-trace JSON file
/// (as written by `--chrome-out`): event schema, monotone per-track
/// timestamps, balanced B/E nesting, counter tracks. Exits nonzero on a
/// malformed trace so CI can gate on the artifact it uploads.
pub fn trace_validate(args: &Args) -> Result<(), String> {
    let path = args
        .positionals
        .first()
        .map(|s| s.as_str())
        .ok_or("usage: kgtosa trace-validate <trace.json>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let stats = kgtosa_obs::validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid Chrome trace — {} span event(s), {} counter event(s), \
         {} process track(s), max span depth {}",
        stats.span_events, stats.counter_events, stats.pids, stats.max_depth
    );
    Ok(())
}

/// `kgtosa prof flame FOLDED`: renders a collapsed-stack file (as written
/// by `--prof-out`) into a self-contained SVG flamegraph on stdout.
pub fn prof(args: &Args) -> Result<(), String> {
    match args.positionals.as_slice() {
        [action, folded_path] if action.as_str() == "flame" => {
            let text = std::fs::read_to_string(folded_path)
                .map_err(|e| format!("cannot read {folded_path}: {e}"))?;
            let svg = kgtosa_obs::render_flame_svg(&text, folded_path)
                .map_err(|e| format!("{folded_path}: {e}"))?;
            print!("{svg}");
            Ok(())
        }
        _ => Err("usage: kgtosa prof flame <run.folded>  (> flame.svg)".into()),
    }
}

/// `kgtosa report TRACE`: folds a JSONL trace into a single-file HTML run
/// report (span tree with self-time attribution, hot spans, flamegraph,
/// metrics, extraction quality). Writes stdout, or `--out FILE`.
pub fn report(args: &Args) -> Result<(), String> {
    let path = args
        .positionals
        .first()
        .map(|s| s.as_str())
        .ok_or("usage: kgtosa report <trace.jsonl> [--out report.html]")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let html = kgtosa_obs::render_html_report(&text, path)?;
    match args.options.get("out") {
        Some(out) => {
            std::fs::write(out, &html).map_err(|e| format!("cannot write {out}: {e}"))?;
            kgtosa_obs::info!("report: wrote {out} ({} bytes)", html.len());
        }
        None => print!("{html}"),
    }
    Ok(())
}

/// `kgtosa cache <ls|stats|clear>`: inspect or reset the extraction
/// artifact cache. The directory comes from `--cache-dir` or
/// `KGTOSA_CACHE_DIR` (an explicit location — this command never guesses).
pub fn cache(args: &Args) -> Result<(), String> {
    let action = args.positionals.first().map(|s| s.as_str()).unwrap_or("stats");
    let dir = args
        .options
        .get("cache-dir")
        .cloned()
        .or_else(|| std::env::var("KGTOSA_CACHE_DIR").ok())
        .filter(|d| !d.is_empty())
        .ok_or("cache: pass --cache-dir DIR or set KGTOSA_CACHE_DIR")?;
    let cache =
        ArtifactCache::open(&dir).map_err(|e| format!("cannot open cache dir {dir}: {e}"))?;
    match action {
        "ls" => {
            let rows = cache.entries().map_err(|e| e.to_string())?;
            if rows.is_empty() {
                println!("cache {dir}: empty");
                return Ok(());
            }
            println!(
                "{:<21} {:>10}  {:<3} {:<5} {:<24} {:<9} kg-fingerprint",
                "artifact", "bytes", "ver", "ptrn", "task", "extractor"
            );
            for r in rows {
                let or_q = |s: Option<String>| s.unwrap_or_else(|| "?".into());
                println!(
                    "{:<21} {:>10}  {:<3} {:<5} {:<24} {:<9} {}",
                    r.file_name,
                    r.bytes,
                    r.version.map(|v| v.to_string()).unwrap_or_else(|| "?".into()),
                    or_q(r.pattern),
                    or_q(r.task),
                    or_q(r.extractor),
                    r.kg_fingerprint
                        .map(|f| format!("{f:016x}"))
                        .unwrap_or_else(|| "?".into()),
                );
            }
        }
        "stats" => {
            let s = cache.disk_stats().map_err(|e| e.to_string())?;
            println!("dir:         {dir}");
            println!("entries:     {}", s.entries);
            println!("bytes:       {}", s.bytes);
            println!("quarantined: {}", s.quarantined);
        }
        "clear" => {
            let removed = cache.clear().map_err(|e| e.to_string())?;
            println!("cleared {removed} artifact(s) from {dir}");
        }
        other => {
            return Err(format!("unknown cache action {other:?} (expected ls|stats|clear)"))
        }
    }
    Ok(())
}

/// Runs one train/compare variant (FG, or a TOSG extraction + training)
/// inside its own [`kgtosa_obs::TelemetryContext`] so the two runs of a
/// `compare` stay separately attributable in `/contexts`, the Chrome
/// trace, and SLO sweeps. With no telemetry consumer the closure runs
/// uncontexted — numerics are identical either way.
fn in_variant_ctx<T>(label: &str, f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    let ctx = kgtosa_obs::telemetry_active()
        .then(|| kgtosa_obs::TelemetryContext::new(label));
    let out = {
        let _scope = ctx.as_ref().map(|c| c.enter());
        f()
    };
    if let Some(ctx) = ctx {
        ctx.finish();
    }
    out
}

fn print_report(label: &str, r: &TrainReport) {
    println!(
        "{label:<8} {:<12} metric {:.4} | train {:.2}s | infer {:.3}s | {} params",
        r.method, r.metric, r.training_s, r.inference_s, r.param_count
    );
}

/// `kgtosa train` / `kgtosa compare` (with `compare = true` both FG and
/// the KG-TOSA subgraph are trained).
pub fn train(args: &Args, compare: bool) -> Result<(), String> {
    let dataset_name = args.required("dataset")?;
    let task_name = args.required("task")?;
    let method = args.get_or("method", "graphsaint");
    let scale = args.parse_or("scale", 0.1)?;
    let seed = args.parse_or("seed", 7u64)?;
    let cfg = TrainConfig {
        epochs: args.parse_or("epochs", 15usize)?,
        dim: args.parse_or("dim", 16usize)?,
        lr: args.parse_or("lr", 0.02f32)?,
        seed,
        // Per-epoch telemetry: a progress line on stderr (silenced by
        // --quiet) plus train.epoch events when a trace sink is active.
        observer: kgtosa_obs::Observer::new(kgtosa_obs::TelemetryObserver),
        ..Default::default()
    };
    let d = dataset_by_name(dataset_name, scale, seed)?;

    // NC task?
    if let Some(task) = d.nc.iter().find(|t| t.name == task_name) {
        let run_nc = |cfg: &TrainConfig,
                      kg: &KnowledgeGraph,
                      labels: &[u32],
                      train: &[Vid],
                      valid: &[Vid],
                      test: &[Vid]|
         -> Result<TrainReport, String> {
            let (graph, _) = transform(kg);
            let data = NcDataset {
                kg,
                graph: &graph,
                labels,
                num_labels: task.num_labels,
                train,
                valid,
                test,
            };
            Ok(match method {
                "rgcn" => train_rgcn_nc(&data, cfg),
                "graphsaint" => train_graphsaint_nc(&data, cfg, SaintSampler::Uniform),
                "graphsaint-brw" => train_graphsaint_nc(&data, cfg, SaintSampler::Biased),
                "shadowsaint" => train_shadowsaint_nc(&data, cfg),
                "sehgnn" => train_sehgnn_nc(&data, cfg),
                other => return Err(format!("{other:?} is not an NC method")),
            })
        };
        if compare || !args.options.contains_key("tosg") {
            let fg_cfg = TrainConfig { checkpoint: train_checkpoint(args, "fg")?, ..cfg.clone() };
            let r = in_variant_ctx("train.fg", || {
                run_nc(&fg_cfg, &d.gen.kg, &task.labels, &task.train, &task.valid, &task.test)
            })?;
            print_report("FG", &r);
        }
        if compare || args.options.contains_key("tosg") {
            let pattern = pattern_by_name(args.get_or("tosg", "d1h1"))?;
            let r = in_variant_ctx(&format!("train.tosg-{}", pattern.label()), || {
                let store = RdfStore::new(&d.gen.kg);
                let ext = ExtractionTask::node_classification(
                    &task.name,
                    &task.target_class,
                    task.targets(),
                );
                let fetch = fetch_config(
                    args,
                    checkpoint_dir(args)
                        .map(|dir| dir.join(format!("tosg-{}.fetch.ckpt", pattern.label()))),
                )?;
                let (tosg, _) =
                    extract_sparql_maybe_cached(args, &store, &ext, &pattern, &fetch)?;
                let sub = &tosg.subgraph;
                let mut labels = vec![u32::MAX; sub.kg.num_nodes()];
                for v in 0..sub.kg.num_nodes() as u32 {
                    labels[v as usize] = task.labels[sub.map_up(Vid(v)).idx()];
                }
                let map = |ns: &[Vid]| -> Vec<Vid> {
                    ns.iter().filter_map(|&v| sub.map_down(v)).collect()
                };
                let tosg_cfg = TrainConfig {
                    checkpoint: train_checkpoint(args, &format!("tosg-{}", pattern.label()))?,
                    ..cfg.clone()
                };
                run_nc(
                    &tosg_cfg,
                    &sub.kg,
                    &labels,
                    &map(&task.train),
                    &map(&task.valid),
                    &map(&task.test),
                )
            })?;
            print_report(&format!("KG'({})", pattern.label()), &r);
        }
        return Ok(());
    }

    // LP task?
    if let Some(task) = d.lp.iter().find(|t| t.name == task_name) {
        let run_lp = |cfg: &TrainConfig,
                      kg: &KnowledgeGraph,
                      train: &[kgtosa_kg::Triple],
                      valid: &[kgtosa_kg::Triple],
                      test: &[kgtosa_kg::Triple]|
         -> Result<TrainReport, String> {
            let (graph, _) = transform(kg);
            let data = LpDataset { kg, graph: &graph, train, valid, test };
            Ok(match method {
                "rgcn" | "rgcn-lp" => train_rgcn_lp(&data, cfg),
                "morse" => train_morse_lp(&data, cfg),
                "lhgnn" => train_lhgnn_lp(&data, cfg),
                other => return Err(format!("{other:?} is not an LP method")),
            })
        };
        if compare || !args.options.contains_key("tosg") {
            let fg_cfg = TrainConfig { checkpoint: train_checkpoint(args, "fg")?, ..cfg.clone() };
            let r = in_variant_ctx("train.fg", || {
                run_lp(&fg_cfg, &d.gen.kg, &task.train, &task.valid, &task.test)
            })?;
            print_report("FG", &r);
        }
        if compare || args.options.contains_key("tosg") {
            let pattern = pattern_by_name(args.get_or("tosg", "d2h1"))?;
            let r = in_variant_ctx(&format!("train.tosg-{}", pattern.label()), || {
                let store = RdfStore::new(&d.gen.kg);
                let ext = ExtractionTask::link_prediction(
                    &task.name,
                    vec![task.src_class.clone(), task.dst_class.clone()],
                    task.target_nodes(&d.gen),
                    &task.predicate,
                );
                let fetch = fetch_config(
                    args,
                    checkpoint_dir(args)
                        .map(|dir| dir.join(format!("tosg-{}.fetch.ckpt", pattern.label()))),
                )?;
                let (tosg, _) =
                    extract_sparql_maybe_cached(args, &store, &ext, &pattern, &fetch)?;
                let sub = &tosg.subgraph;
                let remap = |ts: &[kgtosa_kg::Triple]| -> Vec<kgtosa_kg::Triple> {
                    ts.iter()
                        .filter_map(|t| {
                            Some(kgtosa_kg::Triple::new(
                                sub.map_down(t.s)?,
                                sub.kg.find_relation(d.gen.kg.relation_term(t.p))?,
                                sub.map_down(t.o)?,
                            ))
                        })
                        .collect()
                };
                let tosg_cfg = TrainConfig {
                    checkpoint: train_checkpoint(args, &format!("tosg-{}", pattern.label()))?,
                    ..cfg.clone()
                };
                run_lp(
                    &tosg_cfg,
                    &sub.kg,
                    &remap(&task.train),
                    &remap(&task.valid),
                    &remap(&task.test),
                )
            })?;
            print_report(&format!("KG'({})", pattern.label()), &r);
        }
        return Ok(());
    }

    let available: Vec<String> = d
        .nc
        .iter()
        .map(|t| t.name.clone())
        .chain(d.lp.iter().map(|t| t.name.clone()))
        .collect();
    Err(format!(
        "task {task_name:?} not found in dataset {dataset_name:?}; available: {available:?}"
    ))
}

/// `kgtosa serve` — the overload-safe extraction/inference daemon.
///
/// Loads one dataset snapshot and a checkpoint registry, binds the
/// address, and serves until SIGTERM/SIGINT (or `POST /admin/shutdown`)
/// drains it. The drain report is printed on stdout; telemetry flushing
/// (JSONL trace, Chrome trace, summary tree) is handled by the shared
/// CLI epilogue, so a drained daemon exits 0 with complete traces.
pub fn serve(args: &Args) -> Result<(), String> {
    use std::time::Duration;

    let mut cfg = kgtosa_serve::ServeConfig {
        addr: args.get_or("addr", "127.0.0.1:0").to_string(),
        dataset: args.get_or("dataset", "mag").to_string(),
        scale: args.parse_or("scale", 0.05)?,
        seed: args.parse_or("seed", 7u64)?,
        dim: args.parse_or("dim", 16usize)?,
        lr: args.parse_or("lr", 0.02f32)?,
        workers: args.parse_or("workers", 4usize)?.max(1),
        queue_cap: args.parse_or("queue-cap", 64usize)?.max(1),
        max_inflight_bytes: args.parse_or("max-inflight-bytes", 8 * 1024 * 1024usize)?,
        max_body_bytes: args.parse_or("max-body-bytes", 1024 * 1024usize)?,
        default_deadline: Duration::from_millis(args.parse_or("default-deadline-ms", 2_000u64)?),
        max_deadline: Duration::from_millis(args.parse_or("max-deadline-ms", 30_000u64)?),
        ..Default::default()
    };
    if let Some(spec) = args.options.get("breaker") {
        cfg.breaker =
            kgtosa_rdf::BreakerPolicy::parse(spec).map_err(|e| format!("--breaker: {e}"))?;
    }
    if let Some(spec) = args.options.get("retry") {
        cfg.retry = RetryPolicy::parse(spec).map_err(|e| format!("--retry: {e}"))?;
    }
    if let Some(spec) = args.options.get("fault-spec") {
        cfg.fault = Some(FaultPlan::parse(spec).map_err(|e| format!("--fault-spec: {e}"))?);
    }
    if !args.flag("no-cache") {
        cfg.cache_dir = args
            .options
            .get("cache-dir")
            .cloned()
            .or_else(|| std::env::var("KGTOSA_CACHE_DIR").ok())
            .filter(|d| !d.is_empty())
            .map(PathBuf::from);
    }
    cfg.checkpoint_dir = checkpoint_dir(args);

    let state = kgtosa_serve::ServeState::from_dataset(cfg)?;
    let server = kgtosa_serve::Server::bind(state)
        .map_err(|e| format!("cannot bind serve address: {e}"))?;
    // The bound address goes to stdout so scripts (and port-0 runs) can
    // read it back.
    println!("serve: listening on http://{}", server.addr());
    let report = server.run().map_err(|e| format!("serve loop failed: {e}"))?;
    println!(
        "serve: drained — served={} sheds={} handler_panics={} deadline_expired={}",
        report.served, report.sheds, report.handler_panics, report.deadline_expired
    );
    Ok(())
}
