//! A small `--key value` argument parser (the workspace's dependency
//! policy keeps external crates to the approved list, so no clap).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs; bare `--flag`s map to `"true"`.
    pub options: BTreeMap<String, String>,
    /// Positional arguments after the subcommand (e.g. the trace file of
    /// `kgtosa trace-summary trace.jsonl`).
    pub positionals: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`-style input (excluding the program name).
    pub fn parse(mut input: impl Iterator<Item = String>) -> Result<Args, String> {
        let command = input.next().unwrap_or_default();
        let mut options = BTreeMap::new();
        let mut positionals = Vec::new();
        let mut pending_key: Option<String> = None;
        for token in input {
            if let Some(stripped) = token.strip_prefix("--") {
                if let Some(key) = pending_key.take() {
                    options.insert(key, "true".to_string());
                }
                pending_key = Some(stripped.to_string());
            } else if let Some(key) = pending_key.take() {
                options.insert(key, token);
            } else {
                positionals.push(token);
            }
        }
        if let Some(key) = pending_key {
            options.insert(key, "true".to_string());
        }
        Ok(Args { command, options, positionals })
    }

    /// Required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Optional parsed option with default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v != "false")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = parse(&["extract", "--kg", "g.nt", "--pattern", "d2h1", "--verbose"]);
        assert_eq!(a.command, "extract");
        assert_eq!(a.required("kg").unwrap(), "g.nt");
        assert_eq!(a.get_or("pattern", "d1h1"), "d2h1");
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn parse_or_types() {
        let a = parse(&["gen", "--scale", "0.25"]);
        assert_eq!(a.parse_or("scale", 1.0).unwrap(), 0.25);
        assert_eq!(a.parse_or("seed", 7u64).unwrap(), 7);
        assert!(a.parse_or::<u64>("scale", 0).is_err());
    }

    #[test]
    fn missing_required_is_error() {
        let a = parse(&["stats"]);
        assert!(a.required("kg").is_err());
    }

    #[test]
    fn collects_positionals() {
        let a = parse(&["trace-summary", "trace.jsonl", "--quiet"]);
        assert_eq!(a.positionals, vec!["trace.jsonl"]);
        assert!(a.flag("quiet"));
        // A value following `--key` still binds to the key, not positionals.
        let b = parse(&["extract", "--kg", "g.nt"]);
        assert!(b.positionals.is_empty());
    }
}
