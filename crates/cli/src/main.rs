//! `kgtosa` — the command-line interface of the KG-TOSA reproduction.
//!
//! ```text
//! kgtosa generate --dataset mag --scale 0.1 --out mag.nt
//! kgtosa stats    --kg mag.nt [--target-class Paper]
//! kgtosa query    --kg mag.nt --sparql 'SELECT ?s WHERE { ?s a <Paper> } LIMIT 5'
//! kgtosa extract  --kg mag.nt --target-class Paper --method sparql --pattern d1h1 --out tosg.nt
//! kgtosa train    --dataset mag --task PV/MAG --method graphsaint [--tosg d1h1]
//! kgtosa compare  --dataset dblp --task PV/DBLP --method rgcn
//! ```

mod args;
mod commands;

use args::Args;

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

const USAGE: &str = "\
kgtosa — task-oriented subgraph extraction for HGNN training (ICDE'24 reproduction)

USAGE: kgtosa <command> [--options]

COMMANDS:
  generate   Generate a benchmark KG and write it out
               --dataset mag|yago30|dblp|wikikg2|yago3-10  --out FILE
               [--scale 0.1] [--seed 7]
               (FILE ending in .kgb writes the compact binary snapshot
                format; anything else writes N-Triples)
  stats      Print statistics of an N-Triples KG
               --kg FILE [--target-class CLASS]
  query      Run a SPARQL query against an N-Triples KG
               --kg FILE --sparql QUERY [--limit N] [--explain]
  extract    Extract a task-oriented subgraph
               --kg FILE --target-class CLASS --out FILE
               [--method sparql|brw|ibs|metapath] [--pattern d1h1|d2h1|d1h2|d2h2]
               [--walk-length 3] [--roots 2000] [--top-k 16] [--seed 7]
               (sparql method also honours the fault-tolerance options)
  train      Train a GNN method on a generated benchmark task
               --dataset NAME --task NAME --method rgcn|graphsaint|shadowsaint|sehgnn|rgcn-lp|morse|lhgnn
               [--tosg d1h1] [--scale 0.1] [--epochs 15] [--dim 16] [--seed 7]
  compare    Train on FG and on the KG-TOSA subgraph, print both
               (same options as train)
  serve      Run the overload-safe extraction/inference daemon
               --addr HOST:PORT (port 0 picks a free port, printed on
               stdout) [--dataset mag] [--scale 0.05] [--seed 7]
               [--dim 16] [--lr 0.02] [--workers 4] [--queue-cap 64]
               [--max-inflight-bytes 8388608] [--max-body-bytes 1048576]
               [--default-deadline-ms 2000] [--max-deadline-ms 30000]
               [--breaker trip=5,cooldown=16,seed=7] [--retry SPEC]
               [--fault-spec SPEC] [--cache-dir DIR]
               [--checkpoint-dir DIR (serves its *.ckpt via POST /infer)]
             Routes: POST /extract {task|target_class, pattern,
             deadline_ms}, POST /infer {checkpoint, task, nodes},
             GET /serve (live stats), POST /admin/fault, POST
             /admin/shutdown, plus the obs /metrics family. Admission
             beyond --queue-cap or the in-flight byte budget sheds with
             429; SIGTERM/SIGINT drains gracefully and exits 0.
  cache      Inspect or reset the extraction artifact cache
               kgtosa cache ls|stats|clear (--cache-dir DIR or
               KGTOSA_CACHE_DIR=DIR)
  trace-summary
             Aggregate a JSONL trace into a per-span table
               kgtosa trace-summary trace.jsonl
  trace-diff Compare two JSONL traces (or BENCH_*.json reports) per span
             and exit nonzero on regressions beyond the threshold
               kgtosa trace-diff OLD NEW [--threshold 25]
               [--min-seconds 0.001]
  trace-trend
             Gate a new run against the rolling-window median of the
             perf-history ledger (results/history.jsonl); exits nonzero
             on regressions, passes when the ledger is empty
               kgtosa trace-trend HISTORY NEW [--window 10]
               [--threshold 25] [--min-seconds 0.001]
             With --compact, rewrite the ledger in place instead,
             keeping only the newest records per (kernel, threads) key
             so rolling medians are unaffected
               kgtosa trace-trend --compact HISTORY [--cap 64]
  trace-validate
             Load-validate a Chrome-trace JSON file (as written by
             --chrome-out): schema, per-track span nesting discipline,
             counter tracks; exits nonzero on malformed traces
               kgtosa trace-validate trace.json
  prof       Profiler utilities
               kgtosa prof flame run.folded > flame.svg
             renders a collapsed-stack file (from --prof-out) as a
             self-contained SVG flamegraph
  report     Fold a JSONL trace into a single-file HTML run report (span
             tree with self-time %, hot spans, flamegraph, metrics,
             extraction quality, Table IV cost breakdown)
               kgtosa report trace.jsonl [--out report.html]
  help       Show this message

GLOBAL OPTIONS (any command):
  --trace-out FILE   Write a JSONL event trace (spans, train.epoch, logs,
                     final metrics); KGTOSA_TRACE=FILE does the same
  --metrics-addr H:P Serve live Prometheus /metrics plus /spans and
                     /progress JSON on HOST:PORT while the command runs;
                     KGTOSA_METRICS_ADDR=H:P does the same (port 0 picks
                     a free port and prints it)
  --threads N        Worker threads for parallel kernels (matmul, sampling,
                     CSR build, SPARQL fetch); KGTOSA_THREADS=N does the
                     same; defaults to the machine's available parallelism.
                     Results are bit-identical at any thread count.
  --chrome-out FILE  Write a Chrome-trace / Perfetto JSON file at exit:
                     each telemetry context is a process track, each
                     worker thread a thread track, with B/E span events
                     and counter tracks sampled at every heartbeat;
                     KGTOSA_CHROME_TRACE=FILE does the same (open the
                     result in ui.perfetto.dev or chrome://tracing)
  --slo SPEC         Arm the SLO watchdog with declarative per-context
                     rules, e.g. 'latency_s<=30;retries<=10;
                     completeness_milli>=990;cache_hit_ratio>=0.5';
                     signals: latency_s, retries, giveups,
                     completeness_milli, cache_hit_ratio, counter:NAME,
                     gauge:NAME; violations emit slo.violation events
                     and flip /healthz to 503; KGTOSA_SLO=SPEC does the
                     same, KGTOSA_SLO_MS sets the sweep interval
  --strict-slo       Exit with status 3 when any SLO rule was violated
                     during the run (for CI gating)
  --prof-out FILE    Arm the profiler (span-stack mirroring plus a
                     KGTOSA_PROF_HZ sampling tick, default 97 Hz; 0
                     disables the tick) and write collapsed stacks to
                     FILE at exit — feed it to `kgtosa prof flame`;
                     setting KGTOSA_PROF_HZ alone also arms the profiler
  --quiet            Silence progress chatter on stderr (result lines on
                     stdout are unaffected)

CACHING (extract with --method sparql; train/compare TOSG runs):
  --cache-dir DIR    Content-addressed artifact cache: a completed
                     extraction is published under DIR keyed by the
                     source KG fingerprint + task + pattern + extractor,
                     and a later identical run loads it bit-for-bit
                     without touching the endpoint;
                     KGTOSA_CACHE_DIR=DIR does the same
  --cache-budget N   Cap the cache directory at N bytes (least-recently-
                     used artifacts are evicted)
  --no-cache         Disable both the artifact cache and the in-memory
                     SPARQL page cache for this run

FAULT TOLERANCE (extract with --method sparql; train/compare TOSG runs):
  --fault-spec SPEC  Inject a deterministic endpoint fault schedule, e.g.
                     'seed=7,rate=0.3,burst=2' (keys: seed, rate, burst,
                     fatal-rate, latency-rate, latency-us)
  --retry SPEC       Retry transient endpoint failures with seeded-jitter
                     exponential backoff, e.g. 'attempts=5,base-us=200'
                     (keys: attempts, base-us, max-us, seed,
                     request-deadline-ms, fetch-deadline-ms)
  --partial          Degrade to a partial subgraph (with a reported
                     completeness fraction) instead of aborting when a
                     page permanently fails
  --checkpoint-dir DIR
                     Persist fetch page checkpoints and per-epoch training
                     snapshots under DIR; re-running the same command
                     resumes both. train/compare keep per-run
                     subdirectories (fg/, tosg-<pattern>/)
  --checkpoint-interval N
                     Save a training snapshot every N epochs (default 1)
";

fn main() {
    // Crash-path telemetry: a panic emits a final `panic` event (message,
    // location, live span stack) and flushes the JSONL trace before the
    // default hook prints its backtrace.
    kgtosa_obs::install_panic_hook();
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.flag("quiet") {
        kgtosa_obs::set_quiet(true);
    }
    match args.options.get("threads").map(|t| t.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => kgtosa_par::set_threads(n),
        Some(_) => {
            eprintln!("error: --threads expects a positive integer\n\n{USAGE}");
            std::process::exit(2);
        }
        None => {}
    }
    // Arm the profiler when an output path is given or a sampling rate is
    // configured; off otherwise, so the span hot path stays a single
    // relaxed atomic load.
    let prof_out = args.options.get("prof-out").cloned();
    if prof_out.is_some() || std::env::var("KGTOSA_PROF_HZ").is_ok() {
        kgtosa_obs::enable_prof_from_env();
    }
    let traced = match args.options.get("trace-out") {
        Some(path) => kgtosa_obs::init_trace_to(path)
            .map(|()| true)
            .map_err(|e| format!("cannot open trace file {path:?}: {e}")),
        None => Ok(kgtosa_obs::init_trace_from_env()),
    };
    let served = match args.options.get("metrics-addr") {
        Some(addr) => kgtosa_obs::serve_metrics(addr)
            .map(|bound| eprintln!("metrics: serving on http://{bound}/metrics"))
            .map_err(|e| format!("cannot bind metrics server on {addr:?}: {e}")),
        None => {
            kgtosa_obs::init_serve_from_env();
            Ok(())
        }
    };
    // Chrome-trace export: arm the collector before any span runs so the
    // epoch covers the whole invocation.
    let chrome_out = args
        .options
        .get("chrome-out")
        .cloned()
        .or_else(|| std::env::var("KGTOSA_CHROME_TRACE").ok().filter(|p| !p.is_empty()));
    if chrome_out.is_some() {
        kgtosa_obs::arm_chrome();
    }
    // SLO watchdog: parse the rule spec up front (a malformed spec is a
    // usage error, same as any bad flag), then arm the sweeping thread.
    let strict_slo = args.flag("strict-slo");
    let slo_spec = args
        .options
        .get("slo")
        .cloned()
        .or_else(|| std::env::var("KGTOSA_SLO").ok().filter(|s| !s.is_empty()));
    if let Some(spec) = &slo_spec {
        match kgtosa_obs::parse_slo_spec(spec) {
            Ok(rules) => {
                kgtosa_obs::install_slo_rules(rules);
                kgtosa_obs::start_slo_watchdog(kgtosa_obs::slo_interval_from_env());
            }
            Err(e) => {
                eprintln!("error: --slo: {e}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    // The run context scopes every span and instrument delta of this
    // invocation under one trace id, so `/contexts`, the Chrome trace,
    // and SLO rules all see per-request numbers. Created only when a
    // consumer exists — silent runs skip the (cheap, but nonzero) scoped
    // bookkeeping entirely.
    let run_ctx = (kgtosa_obs::telemetry_active()
        || chrome_out.is_some()
        || kgtosa_obs::slo_rules_installed() > 0)
    .then(|| kgtosa_obs::TelemetryContext::new(&format!("cli.{}", args.command)));
    let result = traced.and(served).and_then(|_| {
        let _scope = run_ctx.as_ref().map(|c| c.enter());
        match args.command.as_str() {
            "generate" => commands::generate(&args),
            "stats" => commands::stats(&args),
            "query" => commands::query(&args),
            "extract" => commands::extract(&args),
            "train" => commands::train(&args, false),
            "compare" => commands::train(&args, true),
            "serve" => commands::serve(&args),
            "cache" => commands::cache(&args),
            "trace-summary" => commands::trace_summary(&args),
            "trace-diff" => commands::trace_diff(&args),
            "trace-trend" => commands::trace_trend(&args),
            "trace-validate" => commands::trace_validate(&args),
            "prof" => commands::prof(&args),
            "report" => commands::report(&args),
            "help" | "" | "--help" | "-h" => {
                println!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
        }
    });
    // Freeze the run context's wall clock and take a final SLO sweep over
    // it so a violation in the last interval still counts (and still
    // matters to --strict-slo even in short-lived batch runs that never
    // saw a watchdog tick).
    if let Some(ctx) = &run_ctx {
        ctx.finish();
    }
    if kgtosa_obs::slo_rules_installed() > 0 {
        kgtosa_obs::evaluate_slo_now();
    }
    // Final accounting: the summary tree goes to stderr (it is telemetry,
    // not command output), and shutdown flushes the JSONL sink.
    if !kgtosa_obs::is_quiet() {
        let tree = kgtosa_obs::render_summary_tree();
        if !tree.is_empty() {
            eprint!("{tree}");
        }
    }
    kgtosa_obs::shutdown();
    if let Some(path) = &chrome_out {
        match kgtosa_obs::write_chrome_trace(path) {
            Ok(()) => eprintln!("chrome: wrote trace to {path} (open in ui.perfetto.dev)"),
            Err(e) => eprintln!("chrome: cannot write {path}: {e}"),
        }
    }
    if let Some(path) = &prof_out {
        match kgtosa_obs::write_folded(path) {
            Ok(()) => eprintln!("prof: wrote collapsed stacks to {path}"),
            Err(e) => eprintln!("prof: cannot write {path}: {e}"),
        }
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    let violations = kgtosa_obs::slo_violation_count();
    if strict_slo && violations > 0 {
        eprintln!("slo: {violations} violation(s) during the run (--strict-slo)");
        std::process::exit(3);
    }
}
