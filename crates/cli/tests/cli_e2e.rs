//! End-to-end CLI tests driving the actual `kgtosa` binary.

use std::path::PathBuf;
use std::process::Command;

fn kgtosa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kgtosa"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kgtosa-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_stats_extract_query_pipeline() {
    let kg_path = tmp("pipeline.nt");
    let tosg_path = tmp("pipeline-tosg.nt");

    // generate
    let out = kgtosa()
        .args([
            "generate", "--dataset", "yago3-10", "--scale", "0.05",
            "--out", kg_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("node types"), "{stdout}");

    // stats
    let out = kgtosa()
        .args(["stats", "--kg", kg_path.to_str().unwrap(), "--target-class", "Person"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("target ratio"), "{stdout}");

    // query
    let out = kgtosa()
        .args([
            "query", "--kg", kg_path.to_str().unwrap(),
            "--sparql", "SELECT (COUNT(*) AS ?c) WHERE { ?s a <Person> }",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // extract
    let out = kgtosa()
        .args([
            "extract", "--kg", kg_path.to_str().unwrap(),
            "--target-class", "Person", "--method", "sparql",
            "--pattern", "d2h1", "--out", tosg_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("extracted"), "{stdout}");
    assert!(tosg_path.exists());

    // the extracted file is loadable again
    let out = kgtosa()
        .args(["stats", "--kg", tosg_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn snapshot_format_roundtrips_via_cli() {
    let kgb = tmp("snap.kgb");
    let out = kgtosa()
        .args([
            "generate", "--dataset", "yago3-10", "--scale", "0.05",
            "--out", kgb.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = kgtosa()
        .args(["stats", "--kg", kgb.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("triples"), "{stdout}");
}

#[test]
fn train_command_runs() {
    let out = kgtosa()
        .args([
            "train", "--dataset", "dblp", "--task", "PV/DBLP",
            "--method", "graphsaint", "--scale", "0.03", "--epochs", "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("metric"), "{stdout}");
}

#[test]
fn trace_out_emits_parseable_jsonl_and_summary_renders() {
    let trace = tmp("train-trace.jsonl");
    // `--tosg` routes through SPARQL extraction + transform, so the trace
    // covers the whole pipeline, not just training.
    let out = kgtosa()
        .args([
            "train", "--dataset", "dblp", "--task", "PV/DBLP",
            "--method", "rgcn", "--scale", "0.05", "--epochs", "3",
            "--tosg", "d1h1", "--quiet",
            "--trace-out", trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // --quiet: no chatter, no summary tree on stderr.
    assert!(out.stderr.is_empty(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&trace).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    let mut epoch_events = 0usize;
    let mut saw_transform = false;
    for line in text.lines() {
        let v = kgtosa_obs::Json::parse(line)
            .unwrap_or_else(|e| panic!("invalid JSONL line {line:?}: {e}"));
        let ev = v
            .get("ev")
            .and_then(|e| e.as_str())
            .expect("every event has an `ev` kind")
            .to_string();
        assert!(
            v.get("t").and_then(|t| t.as_f64()).is_some(),
            "every event has a timestamp"
        );
        match ev.as_str() {
            "span" => {
                let name = v.get("name").and_then(|n| n.as_str()).unwrap();
                if name.contains("pipeline.transform") {
                    saw_transform = true;
                }
            }
            "train.epoch" => {
                epoch_events += 1;
                assert!(v.get("loss").and_then(|l| l.as_f64()).unwrap().is_finite());
                assert!(v.get("peak_bytes").and_then(|p| p.as_f64()).unwrap() > 0.0);
            }
            _ => {}
        }
        kinds.insert(ev);
    }
    assert!(saw_transform, "trace must contain a pipeline.transform span:\n{text}");
    assert_eq!(epoch_events, 3, "one train.epoch event per epoch:\n{text}");
    assert!(kinds.contains("metrics"), "final metrics event missing:\n{text}");

    // The summary subcommand aggregates the trace into a table.
    let out = kgtosa()
        .args(["trace-summary", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pipeline.transform"), "{stdout}");
    assert!(stdout.contains("train.epoch[RGCN]"), "{stdout}");
}

#[test]
fn trace_diff_identical_passes_and_regression_fails() {
    let old = tmp("diff-old.jsonl");
    let new_ok = tmp("diff-new-ok.jsonl");
    let new_bad = tmp("diff-new-bad.jsonl");
    let span = |wall: f64| {
        format!(
            "{{\"ev\":\"span\",\"t\":0.1,\"name\":\"kernel.spmm\",\"wall_s\":{wall},\
             \"live_bytes\":0,\"peak_delta_bytes\":1024,\"allocs\":10}}\n"
        )
    };
    std::fs::write(&old, span(1.0)).unwrap();
    std::fs::write(&new_ok, span(1.0)).unwrap();
    std::fs::write(&new_bad, span(3.0)).unwrap();

    // Identical traces: exit 0, every span OK.
    let out = kgtosa()
        .args(["trace-diff", old.to_str().unwrap(), new_ok.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kernel.spmm"), "{stdout}");
    assert!(!stdout.contains("REGRESSED"), "{stdout}");

    // 3x wall time: exit nonzero with the regression named.
    let out = kgtosa()
        .args([
            "trace-diff", old.to_str().unwrap(), new_bad.to_str().unwrap(),
            "--threshold", "25",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "3x slowdown must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED(wall)"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regressed"), "{stderr}");

    // A generous threshold lets the same pair pass.
    let out = kgtosa()
        .args([
            "trace-diff", old.to_str().unwrap(), new_bad.to_str().unwrap(),
            "--threshold", "400",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

/// The `metric X.XXXX` token from a train run's stdout — the part of the
/// output that must be invariant across fault regimes (wall times are not).
fn metric_of(stdout: &str) -> String {
    stdout
        .split_whitespace()
        .skip_while(|w| *w != "metric")
        .nth(1)
        .unwrap_or_else(|| panic!("no metric in output: {stdout}"))
        .to_string()
}

/// Does the trace record a strictly positive value for `counter`?
fn trace_counter_positive(trace_text: &str, counter: &str) -> bool {
    let needle = format!("\"{counter}\":");
    trace_text.find(&needle).is_some_and(|i| {
        trace_text[i + needle.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() && c != '0')
    })
}

#[test]
fn chaos_train_with_retry_matches_fault_free_metric() {
    let trace = tmp("chaos-trace.jsonl");
    let run = |extra: &[&str]| {
        let out = kgtosa()
            .args([
                "train", "--dataset", "dblp", "--task", "PV/DBLP",
                "--method", "rgcn", "--scale", "0.02", "--epochs", "2",
                "--tosg", "d1h1", "--quiet",
            ])
            .args(extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    let clean = run(&[]);
    // Every request fails twice before succeeding; the retry budget (5)
    // absorbs all of it, so training must see an identical ToSG.
    let faulted = run(&[
        "--fault-spec", "seed=11,rate=1.0,burst=2",
        "--retry", "attempts=5,base-us=50",
        "--trace-out", trace.to_str().unwrap(),
    ]);
    assert_eq!(
        metric_of(&clean),
        metric_of(&faulted),
        "transient faults below the retry budget must not change the metric"
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        trace_counter_positive(&text, "rdf.retries"),
        "the trace must record the retries the run survived:\n{text}"
    );
    assert!(
        !trace_counter_positive(&text, "rdf.giveups"),
        "no request may exhaust the retry budget:\n{text}"
    );
}

#[test]
fn checkpointed_rerun_resumes_and_reproduces_the_metric() {
    let dir = tmp("resume-ckpt");
    let _ = std::fs::remove_dir_all(&dir); // fresh run, not a stale resume
    let trace = tmp("resume-trace.jsonl");
    let run = |extra: &[&str]| {
        let out = kgtosa()
            .args([
                "train", "--dataset", "dblp", "--task", "PV/DBLP",
                "--method", "rgcn", "--scale", "0.02", "--epochs", "2",
                "--tosg", "d1h1", "--quiet",
                "--checkpoint-dir", dir.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    let first = run(&[]);
    let second = run(&["--trace-out", trace.to_str().unwrap()]);
    assert_eq!(
        metric_of(&first),
        metric_of(&second),
        "a resumed run must reproduce the original metric bit-for-bit"
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        trace_counter_positive(&text, "train.checkpoint.resumes"),
        "the rerun must actually resume from the snapshot:\n{text}"
    );
    assert!(
        trace_counter_positive(&text, "rdf.fetch.pages.resumed"),
        "the rerun must reuse the fetch checkpoint:\n{text}"
    );
}

/// The full artifact-cache lifecycle through the binary: a cold extract
/// publishes, a warm re-run loads bit-identically without a single
/// endpoint page, `cache stats`/`ls` see the artifact, and `cache clear`
/// returns the next run to a miss.
#[test]
fn cache_lifecycle_extract_twice_then_clear() {
    let kg_path = tmp("cache-kg.kgb");
    let cache_dir = tmp("cache-dir-e2e");
    let _ = std::fs::remove_dir_all(&cache_dir);

    let out = kgtosa()
        .args([
            "generate", "--dataset", "yago3-10", "--scale", "0.05",
            "--out", kg_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let run_extract = |out_name: &str, trace_name: &str| {
        let tosg = tmp(out_name);
        let trace = tmp(trace_name);
        let _ = std::fs::remove_file(&trace);
        let out = kgtosa()
            .args([
                "extract", "--kg", kg_path.to_str().unwrap(),
                "--target-class", "Person", "--method", "sparql",
                "--pattern", "d1h1", "--out", tosg.to_str().unwrap(),
                "--cache-dir", cache_dir.to_str().unwrap(),
                "--trace-out", trace.to_str().unwrap(), "--quiet",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            std::fs::read(&tosg).unwrap(),
            std::fs::read_to_string(&trace).unwrap(),
        )
    };

    // Cold: a miss that fetches pages and publishes the artifact.
    let (cold_out, cold_bytes, cold_trace) = run_extract("cache-tosg-cold.kgb", "cache-cold.jsonl");
    assert!(cold_out.contains("cache: miss"), "{cold_out}");
    assert!(
        trace_counter_positive(&cold_trace, "cache.misses"),
        "cold run must record the miss:\n{cold_trace}"
    );
    assert!(
        trace_counter_positive(&cold_trace, "rdf.fetch.pages"),
        "cold run must actually fetch:\n{cold_trace}"
    );

    // Warm: a hit that is bit-identical and never touches the endpoint.
    let (warm_out, warm_bytes, warm_trace) = run_extract("cache-tosg-warm.kgb", "cache-warm.jsonl");
    assert!(warm_out.contains("cache: hit"), "{warm_out}");
    assert_eq!(cold_bytes, warm_bytes, "cached TOSG snapshot must be bit-identical");
    assert!(
        trace_counter_positive(&warm_trace, "cache.hits"),
        "warm run must record the hit:\n{warm_trace}"
    );
    assert!(
        !trace_counter_positive(&warm_trace, "rdf.fetch.pages"),
        "a cache hit must fetch zero endpoint pages:\n{warm_trace}"
    );

    // The quality row (first data line under the header) is invariant.
    let quality_line = |s: &str| s.lines().nth(1).unwrap_or_default().to_string();
    assert_eq!(quality_line(&cold_out), quality_line(&warm_out));

    // cache stats / ls see the artifact with its embedded key.
    let out = kgtosa()
        .args(["cache", "stats", "--cache-dir", cache_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("entries:     1"), "{stdout}");

    let out = kgtosa()
        .args(["cache", "ls", "--cache-dir", cache_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nc:Person"), "{stdout}");
    assert!(stdout.contains("d1h1"), "{stdout}");
    assert!(stdout.contains("sparql"), "{stdout}");

    // clear empties the slot: the next run misses (and re-publishes).
    let out = kgtosa()
        .args(["cache", "clear", "--cache-dir", cache_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cleared 1 artifact(s)"), "{stdout}");

    let (cleared_out, cleared_bytes, _) =
        run_extract("cache-tosg-cleared.kgb", "cache-cleared.jsonl");
    assert!(cleared_out.contains("cache: miss"), "{cleared_out}");
    assert_eq!(cold_bytes, cleared_bytes, "re-extraction is still deterministic");
}

/// `--no-cache` bypasses the artifact cache even when a directory is
/// configured, and `cache` without a directory fails with guidance.
#[test]
fn no_cache_flag_and_missing_dir_guidance() {
    let kg_path = tmp("nocache-kg.kgb");
    let cache_dir = tmp("nocache-dir");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let out = kgtosa()
        .args([
            "generate", "--dataset", "yago3-10", "--scale", "0.03",
            "--out", kg_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let tosg = tmp("nocache-tosg.kgb");
    let out = kgtosa()
        .args([
            "extract", "--kg", kg_path.to_str().unwrap(),
            "--target-class", "Person", "--method", "sparql",
            "--out", tosg.to_str().unwrap(),
            "--cache-dir", cache_dir.to_str().unwrap(), "--no-cache", "--quiet",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("cache:"), "--no-cache must bypass the cache: {stdout}");
    assert!(
        !cache_dir.exists() || std::fs::read_dir(&cache_dir).unwrap().next().is_none(),
        "--no-cache must not publish artifacts"
    );

    let out = kgtosa()
        .env_remove("KGTOSA_CACHE_DIR")
        .args(["cache", "stats"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cache-dir"), "{stderr}");
}

#[test]
fn metrics_addr_binds_and_reports_endpoint() {
    // Port 0 picks a free port; the CLI prints the bound address so the
    // user (and this test) can find the scrape endpoint.
    let out = kgtosa()
        .args([
            "stats", "--kg", "/nonexistent-but-flag-parses.nt",
            "--metrics-addr", "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    // The command itself fails (missing file) but the server must have
    // bound first and reported where it listens.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("metrics: serving on http://127.0.0.1:"),
        "{stderr}"
    );
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = kgtosa().args(["bogus"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn missing_options_fail_cleanly() {
    let out = kgtosa().args(["extract"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing required option"), "{stderr}");
}

#[test]
fn chrome_out_writes_a_trace_that_trace_validate_accepts() {
    let chrome = tmp("chrome-trace.json");
    let _ = std::fs::remove_file(&chrome);
    let out = kgtosa()
        .args([
            "train", "--dataset", "dblp", "--task", "PV/DBLP",
            "--method", "rgcn", "--scale", "0.03", "--epochs", "2",
            "--quiet", "--chrome-out", chrome.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("chrome: wrote trace"), "{stderr}");
    assert!(chrome.exists());

    // Round-trip: the CLI's own validator must accept the artifact it
    // just wrote, and report at least one span event and process track.
    let out = kgtosa()
        .args(["trace-validate", chrome.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid Chrome trace"), "{stdout}");

    // A malformed trace must exit nonzero.
    let broken = tmp("chrome-broken.json");
    std::fs::write(&broken, "{\"traceEvents\":[{\"ph\":\"E\"}]}").unwrap();
    let out = kgtosa()
        .args(["trace-validate", broken.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn strict_slo_passes_lenient_rules_and_exits_3_on_violation() {
    // Lenient requirements every run meets: exit 0.
    let out = kgtosa()
        .args([
            "train", "--dataset", "dblp", "--task", "PV/DBLP",
            "--method", "rgcn", "--scale", "0.03", "--epochs", "2",
            "--quiet", "--slo", "latency_s<=3600;retries<=1000000",
            "--strict-slo",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // An unmeetable latency requirement: the final sweep flags the run
    // context and --strict-slo maps that to exit code 3 (distinct from
    // the generic error exit 1).
    let out = kgtosa()
        .args([
            "train", "--dataset", "dblp", "--task", "PV/DBLP",
            "--method", "rgcn", "--scale", "0.03", "--epochs", "2",
            "--quiet", "--slo", "latency_s<=0", "--strict-slo",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("violation"), "{stderr}");

    // A malformed rule spec is a usage error (exit 2), not a crash.
    let out = kgtosa()
        .args(["stats", "--kg", "x.nt", "--slo", "latency_s<>nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn trace_trend_compact_caps_the_ledger_in_place() {
    let ledger = tmp("compact-ledger.jsonl");
    let mut text = String::new();
    for t in 0..6 {
        text.push_str(&format!(
            "{{\"t\":{t},\"rev\":\"r{t}\",\"threads\":4,\"spans\":{{\"kern\":{{\"wall_s\":1.0,\
             \"self_s\":1.0,\"peak_bytes\":0,\"allocs\":0}}}},\"counters\":{{}}}}\n"
        ));
    }
    std::fs::write(&ledger, &text).unwrap();
    let out = kgtosa()
        .args(["trace-trend", "--compact", ledger.to_str().unwrap(), "--cap", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kept 2"), "{stdout}");
    assert!(stdout.contains("dropped 4"), "{stdout}");
    let after = std::fs::read_to_string(&ledger).unwrap();
    assert_eq!(after.lines().count(), 2);
    // Newest records survive.
    assert!(after.contains("\"rev\":\"r4\"") && after.contains("\"rev\":\"r5\""), "{after}");

    // Idempotent second pass: already within cap.
    let out = kgtosa()
        .args(["trace-trend", "--compact", ledger.to_str().unwrap(), "--cap", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("already within cap"), "{stdout}");
    assert_eq!(std::fs::read_to_string(&ledger).unwrap(), after);
}
