//! Robustness fuzzing for the `KGTOSAD1` delta-log decoder, in the style
//! of `fuzz_snapshot.rs`: arbitrary and adversarially mutated byte streams
//! must never panic, and the delta checksum means corruption can never
//! survive to the apply path — a delta either decodes exactly or is
//! rejected whole. Apply itself is all-or-nothing on top of that: a
//! rejected delta leaves the base graph byte-identical.

use proptest::prelude::*;
use std::io::Cursor;

use kgtosa_kg::{
    apply_delta, fingerprint, read_delta, write_delta, DeltaOp, KgDelta, KnowledgeGraph,
    MultisetFingerprint,
};

/// A small random KG: up to 12 nodes across 3 classes, 4 relations.
fn arb_kg() -> impl Strategy<Value = KnowledgeGraph> {
    (
        1usize..12,
        proptest::collection::vec((0usize..12, 0usize..4, 0usize..12), 0..60),
    )
        .prop_map(|(n, triples)| {
            let mut kg = KnowledgeGraph::new();
            for i in 0..n {
                kg.add_node(&format!("n{i}"), ["A", "B", "C"][i % 3]);
            }
            for (s, p, o) in triples {
                if s < n && o < n {
                    kg.add_triple_terms(
                        &format!("n{s}"),
                        ["A", "B", "C"][s % 3],
                        ["r0", "r1", "r2", "r3"][p],
                        &format!("n{o}"),
                        ["A", "B", "C"][o % 3],
                    );
                }
            }
            kg
        })
}

/// A random op: adds over a small term universe plus removes that may or
/// may not resolve against the graph (apply must reject the bad ones).
fn arb_op() -> impl Strategy<Value = DeltaOp> {
    (0usize..2, 0usize..16, 0usize..4, 0usize..16).prop_map(|(kind, s, p, o)| {
        if kind == 0 {
            DeltaOp::Add {
                s: format!("n{s}"),
                s_class: ["A", "B", "C"][s % 3].into(),
                p: ["r0", "r1", "r2", "r3"][p].into(),
                o: format!("n{o}"),
                o_class: ["A", "B", "C"][o % 3].into(),
            }
        } else {
            DeltaOp::Remove {
                s: format!("n{s}"),
                p: ["r0", "r1", "r2", "r3"][p].into(),
                o: format!("n{o}"),
            }
        }
    })
}

fn arb_delta() -> impl Strategy<Value = KgDelta> {
    (any::<u64>(), proptest::collection::vec(arb_op(), 0..20))
        .prop_map(|(base_fingerprint, ops)| KgDelta { base_fingerprint, ops })
}

fn delta_bytes(delta: &KgDelta) -> Vec<u8> {
    let mut buf = Vec::new();
    write_delta(delta, &mut buf).expect("in-memory write cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure noise never panics the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_delta(Cursor::new(bytes));
    }

    /// Noise behind a valid magic reaches the varint/op decoders — hostile
    /// op counts, oversized varints, bad tags — and still never panics.
    #[test]
    fn magic_prefixed_noise_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut buf = b"KGTOSAD1".to_vec();
        buf.extend_from_slice(&bytes);
        let _ = read_delta(Cursor::new(buf));
    }

    /// Bit flips of a real delta never panic, and the trailing checksum
    /// guarantees a flip can never yield a *different* delta: whatever
    /// decodes must equal the original exactly.
    #[test]
    fn bit_flips_never_yield_wrong_delta(delta in arb_delta(), byte_pick in 0usize..1 << 16, bit in 0u8..8) {
        let mut buf = delta_bytes(&delta);
        let i = byte_pick % buf.len();
        buf[i] ^= 1 << bit;
        if let Ok(decoded) = read_delta(Cursor::new(buf)) {
            prop_assert_eq!(decoded, delta);
        }
    }

    /// Every truncation point errors: the checksum trailer makes any
    /// proper prefix undecodable, so a cut stream can never apply at all
    /// (let alone partially).
    #[test]
    fn truncation_always_rejected(delta in arb_delta(), cut_pick in 0usize..1 << 16) {
        let buf = delta_bytes(&delta);
        let at = cut_pick % buf.len();
        prop_assert!(read_delta(Cursor::new(&buf[..at])).is_err());
    }

    /// Round-trip is exact.
    #[test]
    fn roundtrip_exact(delta in arb_delta()) {
        let buf = delta_bytes(&delta);
        let back = read_delta(Cursor::new(&buf)).expect("own delta must read");
        prop_assert_eq!(back, delta);
    }

    /// Apply is all-or-nothing: random op streams either produce a patched
    /// graph whose incrementally maintained multiset fingerprint matches a
    /// full recomputation, or they are rejected with the base graph
    /// untouched. There is no partial-application state.
    #[test]
    fn apply_never_partial(kg in arb_kg(), ops in proptest::collection::vec(arb_op(), 0..20)) {
        let fp = fingerprint(&kg);
        let ms = MultisetFingerprint::of(&kg);
        let delta = KgDelta { base_fingerprint: fp, ops };
        match apply_delta(&kg, fp, ms, &delta) {
            Ok(app) => {
                prop_assert_eq!(app.multiset, MultisetFingerprint::of(&app.kg));
            }
            Err(_) => {
                prop_assert_eq!(fingerprint(&kg), fp, "rejected delta must not mutate");
            }
        }
    }
}
