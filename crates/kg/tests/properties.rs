//! Property-based tests for the KG data-model invariants.

use proptest::prelude::*;

use kgtosa_kg::{
    distances_to_targets, induced_subgraph, neighbor_type_entropy, Dictionary, HeteroGraph,
    KnowledgeGraph, NodeSet, Vid,
};

/// Strategy: a random small KG as raw (s_class, p, o_class) edge templates
/// over bounded id spaces, plus node counts.
fn arb_kg() -> impl Strategy<Value = KnowledgeGraph> {
    (2usize..40, 1usize..5, 1usize..6).prop_flat_map(|(n, num_rel, num_cls)| {
        let edges = proptest::collection::vec((0..n, 0..num_rel, 0..n), 0..120);
        edges.prop_map(move |edges| {
            let mut kg = KnowledgeGraph::with_capacity(n, edges.len());
            for v in 0..n {
                kg.add_node(&format!("n{v}"), &format!("C{}", v % num_cls));
            }
            for r in 0..num_rel {
                kg.add_relation(&format!("r{r}"));
            }
            for (s, p, o) in edges {
                kg.add_triple(
                    Vid(s as u32),
                    kg.find_relation(&format!("r{p}")).unwrap(),
                    Vid(o as u32),
                );
            }
            kg
        })
    })
}

proptest! {
    /// Interning any sequence of strings is a bijection onto 0..len.
    #[test]
    fn dictionary_bijection(terms in proptest::collection::vec("[a-z]{1,12}", 1..100)) {
        let mut d = Dictionary::new();
        let ids: Vec<u32> = terms.iter().map(|t| d.intern(t)).collect();
        // resolve(intern(t)) == t
        for (term, &id) in terms.iter().zip(&ids) {
            prop_assert_eq!(d.resolve(id), term.as_str());
        }
        // ids are dense
        let mut unique: Vec<u32> = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), d.len());
        prop_assert_eq!(*unique.last().unwrap() as usize, d.len() - 1);
    }

    /// Sum of per-vertex merged out-degrees equals the triple count, and the
    /// undirected view stores exactly twice the triples.
    #[test]
    fn csr_degree_sums(kg in arb_kg()) {
        let g = HeteroGraph::build(&kg);
        let out_sum: usize = (0..g.num_nodes())
            .map(|v| g.merged_out().degree(Vid(v as u32)))
            .sum();
        prop_assert_eq!(out_sum, kg.num_triples());
        prop_assert_eq!(g.undirected().num_edges(), kg.num_triples() * 2);
    }

    /// Per-relation CSRs partition the triple set.
    #[test]
    fn relation_partition(kg in arb_kg()) {
        let g = HeteroGraph::build(&kg);
        let rel_sum: usize = (0..g.num_relations())
            .map(|r| g.relation(kgtosa_kg::Rid(r as u32)).out.num_edges())
            .sum();
        prop_assert_eq!(rel_sum, kg.num_triples());
    }

    /// An induced subgraph never invents vertices, triples, classes or
    /// relations, and every kept triple's endpoints are kept vertices.
    #[test]
    fn induced_subgraph_is_subset(kg in arb_kg(), mask in proptest::collection::vec(any::<bool>(), 40)) {
        let keep = NodeSet::from_iter(
            kg.num_nodes(),
            (0..kg.num_nodes()).filter(|&v| mask[v % mask.len()]).map(|v| Vid(v as u32)),
        );
        let sub = induced_subgraph(&kg, &keep);
        prop_assert_eq!(sub.kg.num_nodes(), keep.len());
        prop_assert!(sub.kg.num_triples() <= kg.num_triples());
        // Round-trip: every subgraph triple exists in the parent.
        for t in sub.kg.triples() {
            let ps = sub.map_up(t.s);
            let po = sub.map_up(t.o);
            let rel = kg.find_relation(sub.kg.relation_term(t.p)).unwrap();
            prop_assert!(kg.triples().iter().any(|pt| pt.s == ps && pt.o == po && pt.p == rel));
        }
    }

    /// BFS distances satisfy the triangle property along edges: for every
    /// undirected edge (u,v), |d(u) - d(v)| <= 1 when both are reachable.
    #[test]
    fn bfs_distance_lipschitz(kg in arb_kg()) {
        if kg.num_nodes() == 0 { return Ok(()); }
        let g = HeteroGraph::build(&kg);
        let targets = vec![Vid(0)];
        let d = distances_to_targets(&g, &targets);
        for t in kg.triples() {
            let (du, dv) = (d[t.s.idx()], d[t.o.idx()]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                // One endpoint reachable implies the other is too.
                prop_assert_eq!(du, dv);
            }
        }
    }

    /// Entropy is non-negative and bounded by log2(#distinct buckets).
    #[test]
    fn entropy_bounds(kg in arb_kg()) {
        let g = HeteroGraph::build(&kg);
        let h = neighbor_type_entropy(&g);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= ((g.num_nodes().max(1)) as f64).log2() + 1e-12);
    }

    /// NodeSet iteration yields ascending unique ids matching membership.
    #[test]
    fn nodeset_iter_consistent(ids in proptest::collection::vec(0u32..500, 0..200)) {
        let set = NodeSet::from_iter(500, ids.iter().map(|&i| Vid(i)));
        let collected: Vec<u32> = set.iter().map(|v| v.raw()).collect();
        let mut expect: Vec<u32> = ids.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(collected, expect);
        prop_assert_eq!(set.len(), set.iter().count());
    }
}

/// Determinism of parallel CSR construction: the chunked counting sort
/// must place every edge in the same slot as the serial two-pass sort, at
/// every thread count — including graphs big enough to take the parallel
/// path (≥ `MIN_PAR_WORK` edges).
mod parallel_csr_determinism {
    use super::*;
    use kgtosa_kg::Csr;
    use kgtosa_par::{with_threads, MIN_PAR_WORK};

    /// Reference serial counting sort, kept independent of the production
    /// code path.
    fn reference_csr(n: usize, edges: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
        let mut counts = vec![0u32; n + 1];
        for &(s, _) in edges {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        for &(s, d) in edges {
            targets[cursor[s as usize] as usize] = d;
            cursor[s as usize] += 1;
        }
        (offsets, targets)
    }

    fn flat_csr(csr: &Csr) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = vec![0u32];
        for v in 0..csr.num_nodes() {
            offsets.push(offsets[v] + csr.degree(Vid(v as u32)) as u32);
        }
        (offsets, csr.targets().to_vec())
    }

    /// Deterministic pseudo-random edge list large enough to exercise the
    /// parallel sort (proptest inputs stay below the work threshold).
    fn big_edges(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed | 1;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..m)
            .map(|_| ((step() % n as u64) as u32, (step() % n as u64) as u32))
            .collect()
    }

    #[test]
    fn big_csr_bit_identical_across_thread_counts() {
        let n = 4000;
        let edges = big_edges(n, MIN_PAR_WORK * 2, 42);
        let expect = reference_csr(n, &edges);
        for threads in [1usize, 2, 3, 4, 8] {
            let csr = with_threads(threads, || Csr::from_edge_list(n, &edges));
            assert_eq!(flat_csr(&csr), expect, "threads={threads}");
        }
    }

    #[test]
    fn big_hetero_graph_bit_identical_across_thread_counts() {
        let n = 3000usize;
        let mut kg = KnowledgeGraph::with_capacity(n, MIN_PAR_WORK);
        for v in 0..n {
            kg.add_node(&format!("n{v}"), &format!("C{}", v % 3));
        }
        for r in 0..3 {
            kg.add_relation(&format!("r{r}"));
        }
        for (i, (s, o)) in big_edges(n, MIN_PAR_WORK, 7).into_iter().enumerate() {
            kg.add_triple(Vid(s), kgtosa_kg::Rid((i % 3) as u32), Vid(o));
        }
        let base = with_threads(1, || HeteroGraph::build(&kg));
        for threads in [2usize, 4, 8] {
            let g = with_threads(threads, || HeteroGraph::build(&kg));
            assert_eq!(
                g.merged_out().csr().targets(),
                base.merged_out().csr().targets(),
                "merged targets, threads={threads}"
            );
            assert_eq!(
                g.undirected().csr().targets(),
                base.undirected().csr().targets(),
                "undirected targets, threads={threads}"
            );
            for r in 0..3u32 {
                assert_eq!(
                    g.relation(kgtosa_kg::Rid(r)).out.targets(),
                    base.relation(kgtosa_kg::Rid(r)).out.targets(),
                    "relation {r} out, threads={threads}"
                );
                assert_eq!(
                    g.relation(kgtosa_kg::Rid(r)).inc.targets(),
                    base.relation(kgtosa_kg::Rid(r)).inc.targets(),
                    "relation {r} inc, threads={threads}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random small/medium edge lists: production CSR equals the
        /// reference at every thread count (these mostly take the serial
        /// plan; the dedicated big tests above force the parallel one).
        #[test]
        fn csr_matches_reference(n in 1usize..200,
                                 edges in proptest::collection::vec((0u32..200, 0u32..200), 0..400)) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(s, o)| (s % n as u32, o % n as u32))
                .collect();
            let expect = reference_csr(n, &edges);
            for threads in [1usize, 2, 4] {
                let csr = with_threads(threads, || Csr::from_edge_list(n, &edges));
                prop_assert_eq!(flat_csr(&csr), expect.clone(), "threads={}", threads);
            }
        }
    }
}
