//! Robustness fuzzing for the `KGTOSA1` snapshot reader, in the style of
//! `crates/rdf/tests/fuzz_parser.rs`: arbitrary and adversarially mutated
//! byte streams must never panic, abort, or silently produce a *different*
//! graph — they either error or round-trip exactly.

use proptest::prelude::*;
use std::io::Cursor;

use kgtosa_kg::{fingerprint, read_snapshot, write_snapshot, KnowledgeGraph, Triple, Vid};

/// A small random KG: up to 12 nodes across 3 classes, 4 relations.
fn arb_kg() -> impl Strategy<Value = KnowledgeGraph> {
    (
        1usize..12,
        proptest::collection::vec((0usize..12, 0usize..4, 0usize..12), 0..60),
    )
        .prop_map(|(n, triples)| {
            let mut kg = KnowledgeGraph::new();
            for i in 0..n {
                kg.add_node(&format!("n{i}"), ["A", "B", "C"][i % 3]);
            }
            for (s, p, o) in triples {
                if s < n && o < n {
                    kg.add_triple_terms(
                        &format!("n{s}"),
                        ["A", "B", "C"][s % 3],
                        ["r0", "r1", "r2", "r3"][p],
                        &format!("n{o}"),
                        ["A", "B", "C"][o % 3],
                    );
                }
            }
            kg
        })
}

fn snapshot_bytes(kg: &KnowledgeGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(kg, &mut buf).expect("in-memory write cannot fail");
    buf
}

fn sorted_triples(kg: &KnowledgeGraph) -> Vec<Triple> {
    let mut t = kg.triples().to_vec();
    t.sort_unstable();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure noise never panics the reader.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_snapshot(Cursor::new(bytes));
    }

    /// Noise behind a valid magic gets past the header check and into the
    /// dictionary/triple decoders — still never panics.
    #[test]
    fn magic_prefixed_noise_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut buf = b"KGTOSA1\n".to_vec();
        buf.extend_from_slice(&bytes);
        let _ = read_snapshot(Cursor::new(buf));
    }

    /// Single bit-flips of a real snapshot either fail cleanly or decode to
    /// a graph; they must never panic. (A flip can land in a term string
    /// and legitimately produce a different-but-valid graph, so we only
    /// assert no-panic here; checksummed artifacts in `kgtosa-cache` are
    /// what detect silent term corruption.)
    #[test]
    fn bit_flips_never_panic(kg in arb_kg(), byte_pick in 0usize..1 << 16, bit in 0u8..8) {
        let mut buf = snapshot_bytes(&kg);
        if !buf.is_empty() {
            let i = byte_pick % buf.len();
            buf[i] ^= 1 << bit;
            let _ = read_snapshot(Cursor::new(buf));
        }
    }

    /// Truncation at every possible length errors; it never yields a graph
    /// claiming to be the original. (Only the exact full stream may decode
    /// to the original triple multiset.)
    #[test]
    fn truncation_never_yields_wrong_graph(kg in arb_kg(), cut_pick in 0usize..1 << 16) {
        let buf = snapshot_bytes(&kg);
        let at = cut_pick % buf.len().max(1);
        match read_snapshot(Cursor::new(&buf[..at])) {
            Err(_) => {}
            Ok(decoded) => {
                // A truncated prefix can only decode if the cut landed
                // after a complete triple — then it's a strict prefix
                // graph, never one that fingerprints like the original
                // while differing.
                if fingerprint(&decoded) == fingerprint(&kg) {
                    prop_assert_eq!(sorted_triples(&decoded), sorted_triples(&kg));
                }
            }
        }
    }

    /// The full round-trip invariant under fuzzing: write → read is exact.
    #[test]
    fn roundtrip_exact(kg in arb_kg()) {
        let buf = snapshot_bytes(&kg);
        let back = read_snapshot(Cursor::new(&buf)).expect("own snapshot must read");
        prop_assert_eq!(back.num_nodes(), kg.num_nodes());
        prop_assert_eq!(sorted_triples(&back), sorted_triples(&kg));
        for v in 0..kg.num_nodes() as u32 {
            prop_assert_eq!(back.node_term(Vid(v)), kg.node_term(Vid(v)));
        }
        prop_assert_eq!(fingerprint(&back), fingerprint(&kg));
    }
}
