//! # kgtosa-kg — knowledge-graph data model
//!
//! The foundation layer of the KG-TOSA reproduction: interned-term
//! knowledge graphs (Definition 2.1 of the paper), CSR adjacency views for
//! message passing and sampling, induced-subgraph extraction, and the
//! data-sufficiency / graph-topology quality statistics of §III-A.
//!
//! Everything here is pure data structure: no I/O, no randomness, no
//! training. Other crates layer the RDF engine (`kgtosa-rdf`), samplers
//! (`kgtosa-sampler`), the KG-TOSA extraction algorithms (`kgtosa-core`)
//! and GNN methods (`kgtosa-models`) on top.
//!
//! ## Quick tour
//!
//! ```
//! use kgtosa_kg::{KnowledgeGraph, HeteroGraph, NodeSet, induced_subgraph};
//!
//! let mut kg = KnowledgeGraph::new();
//! kg.add_triple_terms("a1", "Author", "writes", "p1", "Paper");
//! kg.add_triple_terms("p1", "Paper", "publishedIn", "v1", "Venue");
//!
//! let graph = HeteroGraph::build(&kg);
//! assert_eq!(graph.num_edges(), 2);
//!
//! let keep = NodeSet::from_iter(kg.num_nodes(), [
//!     kg.find_node("a1").unwrap(),
//!     kg.find_node("p1").unwrap(),
//! ]);
//! let sub = induced_subgraph(&kg, &keep);
//! assert_eq!(sub.kg.num_triples(), 1); // only a1-writes-p1 survives
//! ```

pub mod delta;
pub mod dict;
pub mod fingerprint;
pub mod fxhash;
pub mod graph;
pub mod ids;
pub mod metapath;
pub mod snapshot;
pub mod stats;
pub mod subgraph;
pub mod triples;

pub use delta::{
    apply_delta, read_delta, write_delta, DeltaApplication, DeltaError, DeltaOp, KgDelta,
    MultisetFingerprint,
};
pub use dict::Dictionary;
pub use fxhash::{FxHashMap, FxHashSet};
pub use graph::{Csr, HeteroGraph, LabeledCsr, RelAdj};
pub use ids::{Cid, Rid, Vid};
pub use metapath::{count_instances, schema_metapaths, Metapath, MetapathStep, SchemaMetapath};
pub use fingerprint::{fingerprint, fnv64, Fnv64, HashingReader, HashingWriter};
pub use snapshot::{
    read_snapshot, read_snapshot_fingerprinted, write_snapshot, write_snapshot_fingerprinted,
};
pub use stats::{
    average_degree, distances_to_targets, neighbor_type_entropy, quality, quality_with_graph,
    KgStats, SubgraphQuality,
};
pub use subgraph::{
    induced_subgraph, live_classes, live_relations, map_targets, subgraph_from_triples,
    subgraph_from_triples_and_nodes, InducedSubgraph, NodeSet,
};
pub use triples::{KnowledgeGraph, Triple};
