//! Two-way string interning dictionaries.
//!
//! RDF terms (IRIs, literals), relation names and class names are interned to
//! dense `u32` ids so that every downstream algorithm — index scans, random
//! walks, PPR, GNN batching — works on integers instead of strings. This is
//! the same design used by production RDF engines: strings are touched only
//! at load and report time.

use crate::fxhash::FxHashMap;

/// A generic two-way dictionary mapping strings to dense `u32` ids.
///
/// Ids are assigned in first-seen order starting from 0 and never reused,
/// so `resolve(intern(s)) == s` always holds and ids can directly index
/// parallel `Vec`s (node classes, features, ...).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    forward: FxHashMap<Box<str>, u32>,
    reverse: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with capacity for `n` terms.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            forward: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            reverse: Vec::with_capacity(n),
        }
    }

    /// Interns `term`, returning its id. Existing terms return their
    /// original id; new terms are assigned the next dense id.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.forward.get(term) {
            return id;
        }
        let id = self.reverse.len() as u32;
        let boxed: Box<str> = term.into();
        self.forward.insert(boxed.clone(), id);
        self.reverse.push(boxed);
        id
    }

    /// Looks up an already-interned term without inserting.
    pub fn get(&self, term: &str) -> Option<u32> {
        self.forward.get(term).copied()
    }

    /// Resolves an id back to its term. Panics if the id was never issued.
    pub fn resolve(&self, id: u32) -> &str {
        &self.reverse[id as usize]
    }

    /// Resolves an id if it exists.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.reverse.get(id as usize).map(|s| &**s)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.reverse
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, &**s))
    }

    /// Approximate heap footprint in bytes (strings + tables), used by the
    /// experiment harness to report transformation memory.
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.reverse.iter().map(|s| s.len()).sum();
        // Each map entry holds a boxed str clone plus bookkeeping.
        strings * 2
            + self.reverse.capacity() * std::mem::size_of::<Box<str>>()
            + self.forward.capacity()
                * (std::mem::size_of::<Box<str>>() + std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("mag:Paper");
        let b = d.intern("mag:Paper");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.resolve(1), "b");
    }

    #[test]
    fn get_does_not_insert() {
        let mut d = Dictionary::new();
        assert_eq!(d.get("missing"), None);
        d.intern("present");
        assert_eq!(d.get("present"), Some(0));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn try_resolve_out_of_range() {
        let d = Dictionary::new();
        assert_eq!(d.try_resolve(0), None);
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let collected: Vec<_> = d.iter().collect();
        assert_eq!(collected, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn with_capacity_preallocates() {
        let d = Dictionary::with_capacity(100);
        assert!(d.is_empty());
        assert!(d.reverse.capacity() >= 100);
    }
}
