//! Vertex sets and induced-subgraph extraction.
//!
//! Every TOSG extraction method in the paper ends with
//! `extractSubgraph(V_s, KG)`: take the sampled vertex set and keep all
//! triples whose endpoints both fall inside it (Algorithm 1 line 7,
//! Algorithm 2 line 5). [`NodeSet`] provides O(1) membership over dense
//! vertex ids and [`induced_subgraph`] performs the extraction with compact
//! re-indexing so downstream training sees a small, dense id space.

use crate::ids::Vid;
use crate::triples::{KnowledgeGraph, Triple};

/// A fixed-capacity bitset over vertex ids.
#[derive(Debug, Clone)]
pub struct NodeSet {
    bits: Vec<u64>,
    len: usize,
    capacity: usize,
}

impl NodeSet {
    /// Creates an empty set able to hold ids `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            bits: vec![0u64; n.div_ceil(64)],
            len: 0,
            capacity: n,
        }
    }

    /// Builds a set from an iterator of vertices.
    pub fn from_iter(n: usize, vs: impl IntoIterator<Item = Vid>) -> Self {
        let mut set = Self::new(n);
        for v in vs {
            set.insert(v);
        }
        set
    }

    /// Inserts `v`; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, v: Vid) -> bool {
        let (word, bit) = (v.idx() / 64, v.idx() % 64);
        let mask = 1u64 << bit;
        let fresh = self.bits[word] & mask == 0;
        self.bits[word] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: Vid) -> bool {
        let (word, bit) = (v.idx() / 64, v.idx() % 64);
        self.bits
            .get(word)
            .is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum id capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = Vid> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let base = (wi * 64) as u32;
            BitIter { word: w, base }
        })
    }

    /// In-place union with another set of the same capacity.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut len = 0usize;
        for (a, &b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = Vid;

    #[inline]
    fn next(&mut self) -> Option<Vid> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(Vid(self.base + tz))
    }
}

/// The result of extracting and compacting an induced subgraph.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The compacted subgraph (`KG'` in the paper). Relation and class id
    /// spaces are re-interned so `|R'|`, `|C'|` reflect only what survives.
    pub kg: KnowledgeGraph,
    /// For each new vertex id, its id in the parent graph.
    pub to_parent: Vec<Vid>,
    /// For each parent vertex, its new id (or `None` if dropped).
    pub from_parent: Vec<Option<Vid>>,
}

impl InducedSubgraph {
    /// Maps a parent vertex into the subgraph.
    pub fn map_down(&self, parent: Vid) -> Option<Vid> {
        self.from_parent.get(parent.idx()).copied().flatten()
    }

    /// Maps a subgraph vertex back to the parent graph.
    pub fn map_up(&self, sub: Vid) -> Vid {
        self.to_parent[sub.idx()]
    }
}

/// Extracts the subgraph of `kg` induced by `keep`: all kept vertices plus
/// every triple with both endpoints kept. Terms are preserved; ids are
/// compacted.
pub fn induced_subgraph(kg: &KnowledgeGraph, keep: &NodeSet) -> InducedSubgraph {
    assert!(
        keep.capacity() >= kg.num_nodes(),
        "node set too small for graph"
    );
    let mut sub = KnowledgeGraph::with_capacity(keep.len(), kg.num_triples() / 4);
    let mut from_parent: Vec<Option<Vid>> = vec![None; kg.num_nodes()];
    let mut to_parent: Vec<Vid> = Vec::with_capacity(keep.len());
    for v in keep.iter() {
        let new_id = sub.add_node(kg.node_term(v), kg.class_term(kg.class_of(v)));
        from_parent[v.idx()] = Some(new_id);
        to_parent.push(v);
    }
    for t in kg.triples() {
        if let (Some(ns), Some(no)) = (from_parent[t.s.idx()], from_parent[t.o.idx()]) {
            let np = sub.add_relation(kg.relation_term(t.p));
            sub.add_triple(ns, np, no);
        }
    }
    InducedSubgraph {
        kg: sub,
        to_parent,
        from_parent,
    }
}

/// Builds a compacted subgraph directly from a set of parent triples (used
/// by the SPARQL extraction path, whose output is a triple stream rather
/// than a vertex set).
pub fn subgraph_from_triples(kg: &KnowledgeGraph, triples: &[Triple]) -> InducedSubgraph {
    subgraph_from_triples_and_nodes(kg, triples, &[])
}

/// Like [`subgraph_from_triples`] but additionally retains `extra_nodes`
/// even when no fetched triple touches them (e.g. isolated target vertices,
/// which must stay visible to the training task).
pub fn subgraph_from_triples_and_nodes(
    kg: &KnowledgeGraph,
    triples: &[Triple],
    extra_nodes: &[Vid],
) -> InducedSubgraph {
    let mut keep = NodeSet::new(kg.num_nodes());
    for t in triples {
        keep.insert(t.s);
        keep.insert(t.o);
    }
    for &v in extra_nodes {
        keep.insert(v);
    }
    let mut sub = KnowledgeGraph::with_capacity(keep.len(), triples.len());
    let mut from_parent: Vec<Option<Vid>> = vec![None; kg.num_nodes()];
    let mut to_parent: Vec<Vid> = Vec::with_capacity(keep.len());
    for v in keep.iter() {
        let new_id = sub.add_node(kg.node_term(v), kg.class_term(kg.class_of(v)));
        from_parent[v.idx()] = Some(new_id);
        to_parent.push(v);
    }
    let mut sorted: Vec<Triple> = triples.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for t in &sorted {
        let ns = from_parent[t.s.idx()].expect("endpoint collected above");
        let no = from_parent[t.o.idx()].expect("endpoint collected above");
        let np = sub.add_relation(kg.relation_term(t.p));
        sub.add_triple(ns, np, no);
    }
    InducedSubgraph {
        kg: sub,
        to_parent,
        from_parent,
    }
}

/// Remaps a set of parent-graph target vertices into subgraph ids, dropping
/// any that were not retained.
pub fn map_targets(sub: &InducedSubgraph, targets: &[Vid]) -> Vec<Vid> {
    targets.iter().filter_map(|&v| sub.map_down(v)).collect()
}

/// Classes referenced by at least one vertex of `kg` (i.e. `|C'|` counting
/// only live classes, as reported in Table III).
pub fn live_classes(kg: &KnowledgeGraph) -> usize {
    let mut seen = vec![false; kg.num_classes()];
    for &c in kg.node_classes() {
        seen[c.idx()] = true;
    }
    seen.iter().filter(|&&b| b).count()
}

/// Relations referenced by at least one triple of `kg` (`|R'|`).
pub fn live_relations(kg: &KnowledgeGraph) -> usize {
    let mut seen = vec![false; kg.num_relations()];
    for t in kg.triples() {
        seen[t.p.idx()] = true;
    }
    seen.iter().filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_kg() -> KnowledgeGraph {
        // a -r-> b -r-> c -s-> d
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("a", "A", "r", "b", "B");
        kg.add_triple_terms("b", "B", "r", "c", "C");
        kg.add_triple_terms("c", "C", "s", "d", "D");
        kg
    }

    #[test]
    fn nodeset_insert_contains_len() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(Vid(0)));
        assert!(s.insert(Vid(129)));
        assert!(!s.insert(Vid(0)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Vid(129)));
        assert!(!s.contains(Vid(64)));
    }

    #[test]
    fn nodeset_iter_ascending() {
        let s = NodeSet::from_iter(200, [Vid(5), Vid(64), Vid(199), Vid(5)]);
        let got: Vec<u32> = s.iter().map(|v| v.raw()).collect();
        assert_eq!(got, vec![5, 64, 199]);
    }

    #[test]
    fn nodeset_union() {
        let mut a = NodeSet::from_iter(100, [Vid(1), Vid(2)]);
        let b = NodeSet::from_iter(100, [Vid(2), Vid(3)]);
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(Vid(3)));
    }

    #[test]
    fn induced_subgraph_keeps_internal_triples_only() {
        let kg = chain_kg();
        let keep = NodeSet::from_iter(
            kg.num_nodes(),
            ["a", "b", "c"].iter().map(|t| kg.find_node(t).unwrap()),
        );
        let sub = induced_subgraph(&kg, &keep);
        assert_eq!(sub.kg.num_nodes(), 3);
        // a->b and b->c survive; c->d is cut.
        assert_eq!(sub.kg.num_triples(), 2);
        assert_eq!(live_relations(&sub.kg), 1);
    }

    #[test]
    fn mapping_roundtrips() {
        let kg = chain_kg();
        let b = kg.find_node("b").unwrap();
        let keep = NodeSet::from_iter(kg.num_nodes(), [b]);
        let sub = induced_subgraph(&kg, &keep);
        let down = sub.map_down(b).unwrap();
        assert_eq!(sub.map_up(down), b);
        assert_eq!(sub.kg.node_term(down), "b");
        let a = kg.find_node("a").unwrap();
        assert_eq!(sub.map_down(a), None);
    }

    #[test]
    fn subgraph_from_triples_dedups() {
        let kg = chain_kg();
        let t = kg.triples()[0];
        let sub = subgraph_from_triples(&kg, &[t, t, kg.triples()[1]]);
        assert_eq!(sub.kg.num_triples(), 2);
        assert_eq!(sub.kg.num_nodes(), 3);
    }

    #[test]
    fn live_counts_ignore_dead_ids() {
        let kg = chain_kg();
        assert_eq!(live_classes(&kg), 4);
        assert_eq!(live_relations(&kg), 2);
    }

    #[test]
    fn map_targets_filters_dropped() {
        let kg = chain_kg();
        let a = kg.find_node("a").unwrap();
        let d = kg.find_node("d").unwrap();
        let keep = NodeSet::from_iter(kg.num_nodes(), [a]);
        let sub = induced_subgraph(&kg, &keep);
        let mapped = map_targets(&sub, &[a, d]);
        assert_eq!(mapped.len(), 1);
    }
}
