//! Compact binary snapshots of a [`KnowledgeGraph`].
//!
//! N-Triples (in `kgtosa-rdf`) is the interchange format; this is the fast
//! path — the equivalent of an RDF engine's bulk-load image. Layout:
//!
//! ```text
//! magic "KGTOSA1\n"
//! u32 num_classes    then length-prefixed class terms
//! u32 num_relations  then length-prefixed relation terms
//! u32 num_nodes      then (u32 class_id, length-prefixed term) per node
//! u64 num_triples    then (varint s, varint p, varint o) per triple,
//!                    with subjects delta-encoded over the sorted list
//! ```
//!
//! Varint + delta encoding makes triples ~3–5 bytes each instead of 12.

use std::io::{self, Read, Write};

use crate::fingerprint::{HashingReader, HashingWriter};
use crate::ids::{Rid, Vid};
use crate::triples::KnowledgeGraph;

const MAGIC: &[u8; 8] = b"KGTOSA1\n";

/// Cap on `Vec::with_capacity` driven by header counts: a hostile
/// header must not be able to force a multi-gigabyte preallocation
/// before any payload byte has been validated. Real data beyond the
/// cap still loads — the vectors just grow normally.
const MAX_PREALLOC: usize = 1 << 16;

/// Writes a snapshot of `kg`.
pub fn write_snapshot(kg: &KnowledgeGraph, mut w: impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    // Class dictionary.
    write_u32(&mut w, kg.num_classes() as u32)?;
    for (_, term) in kg.classes() {
        write_str(&mut w, term)?;
    }
    // Relation dictionary.
    write_u32(&mut w, kg.num_relations() as u32)?;
    for (_, term) in kg.relations() {
        write_str(&mut w, term)?;
    }
    // Nodes.
    write_u32(&mut w, kg.num_nodes() as u32)?;
    for v in 0..kg.num_nodes() as u32 {
        let vid = Vid(v);
        write_u32(&mut w, kg.class_of(vid).raw())?;
        write_str(&mut w, kg.node_term(vid))?;
    }
    // Triples, sorted + delta-encoded on subject.
    let mut triples: Vec<[u32; 3]> = kg.triples().iter().map(|t| t.raw()).collect();
    triples.sort_unstable();
    w.write_all(&(triples.len() as u64).to_le_bytes())?;
    let mut prev_s = 0u32;
    for [s, p, o] in triples {
        write_varint(&mut w, (s - prev_s) as u64)?;
        write_varint(&mut w, p as u64)?;
        write_varint(&mut w, o as u64)?;
        prev_s = s;
    }
    Ok(())
}

/// Reads a snapshot produced by [`write_snapshot`].
pub fn read_snapshot(mut r: impl Read) -> io::Result<KnowledgeGraph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic: not a KGTOSA snapshot"));
    }
    let num_classes = read_u32(&mut r)? as usize;
    let mut class_terms = Vec::with_capacity(num_classes.min(MAX_PREALLOC));
    for _ in 0..num_classes {
        class_terms.push(read_str(&mut r)?);
    }
    let num_relations = read_u32(&mut r)? as usize;
    let mut kg = KnowledgeGraph::new();
    for term in &class_terms {
        kg.add_class(term);
    }
    for _ in 0..num_relations {
        let term = read_str(&mut r)?;
        kg.add_relation(&term);
    }
    let num_nodes = read_u32(&mut r)? as usize;
    for i in 0..num_nodes {
        let class_id = read_u32(&mut r)? as usize;
        let term = read_str(&mut r)?;
        let class = class_terms
            .get(class_id)
            .ok_or_else(|| bad("node references unknown class"))?;
        let vid = kg.add_node(&term, class);
        if vid.idx() != i {
            return Err(bad("duplicate node term in snapshot"));
        }
    }
    let mut len_buf = [0u8; 8];
    r.read_exact(&mut len_buf)?;
    let num_triples = u64::from_le_bytes(len_buf);
    // With ids bounded by num_nodes/num_relations there can be at most
    // nodes² · relations distinct triples; a count beyond that is a
    // forged header (the multiset in `kg` allows duplicates, but a
    // duplicate-heavy header that large is equally implausible and
    // would only make us loop on garbage).
    let max_triples = (num_nodes as u64)
        .saturating_mul(num_nodes as u64)
        .saturating_mul(num_relations.max(1) as u64);
    if num_triples > max_triples {
        return Err(bad("triple count exceeds what the dictionaries allow"));
    }
    let mut prev_s = 0u32;
    for _ in 0..num_triples {
        let ds = read_varint_u32(&mut r)?;
        let p = read_varint_u32(&mut r)?;
        let o = read_varint_u32(&mut r)?;
        let s = prev_s
            .checked_add(ds)
            .ok_or_else(|| bad("subject delta overflows u32"))?;
        prev_s = s;
        if s as usize >= num_nodes || o as usize >= num_nodes || p as usize >= num_relations {
            return Err(bad("triple id out of range"));
        }
        kg.add_triple(Vid(s), Rid(p), Vid(o));
    }
    Ok(kg)
}

/// Writes a snapshot of `kg` while folding every emitted byte into an
/// FNV-1a hash; returns the graph's content fingerprint. This is the
/// "free" way to obtain [`crate::fingerprint::fingerprint`] when a
/// snapshot is being persisted anyway.
pub fn write_snapshot_fingerprinted(kg: &KnowledgeGraph, w: impl Write) -> io::Result<u64> {
    let mut hw = HashingWriter::new(w);
    write_snapshot(kg, &mut hw)?;
    Ok(hw.finish())
}

/// Reads a snapshot while hashing the consumed bytes; returns the graph
/// together with its content fingerprint (equal to what
/// [`write_snapshot_fingerprinted`] returned when the bytes were
/// produced, since the reader consumes exactly the canonical stream).
pub fn read_snapshot_fingerprinted(r: impl Read) -> io::Result<(KnowledgeGraph, u64)> {
    let mut hr = HashingReader::new(r);
    let kg = read_snapshot(&mut hr)?;
    Ok((kg, hr.finish()))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_varint(r)? as usize;
    if len > 1 << 24 {
        return Err(bad("unreasonable string length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("invalid UTF-8 in snapshot"))
}

/// LEB128 unsigned varint.
pub(crate) fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a varint that must fit in a `u32` (an id or delta). The
/// unchecked `as u32` cast this replaces silently truncated hostile
/// values like `u32::MAX + 2` down to small in-range ids, yielding a
/// *wrong graph* instead of an error.
fn read_varint_u32(r: &mut impl Read) -> io::Result<u32> {
    let v = read_varint(r)?;
    u32::try_from(v).map_err(|_| bad("id varint exceeds u32 range"))
}

pub(crate) fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(bad("varint overflow"));
        }
        out |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triples::Triple;
    use std::io::Cursor;

    fn sample() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..50 {
            kg.add_triple_terms(
                &format!("p{i}"),
                "Paper",
                "cites",
                &format!("p{}", i / 2),
                "Paper",
            );
            kg.add_triple_terms(&format!("a{}", i % 7), "Author", "writes", &format!("p{i}"), "Paper");
        }
        kg.add_node("isolated", "Misc");
        kg
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let kg = sample();
        let mut buf = Vec::new();
        write_snapshot(&kg, &mut buf).unwrap();
        let back = read_snapshot(Cursor::new(&buf)).unwrap();
        assert_eq!(back.num_nodes(), kg.num_nodes());
        assert_eq!(back.num_relations(), kg.num_relations());
        assert_eq!(back.num_classes(), kg.num_classes());
        assert_eq!(back.num_triples(), kg.num_triples());
        // Node terms and classes survive by id.
        for v in 0..kg.num_nodes() as u32 {
            assert_eq!(back.node_term(Vid(v)), kg.node_term(Vid(v)));
            assert_eq!(
                back.class_term(back.class_of(Vid(v))),
                kg.class_term(kg.class_of(Vid(v)))
            );
        }
        // Triple multisets match (snapshot sorts them).
        let mut a: Vec<Triple> = kg.triples().to_vec();
        let mut b: Vec<Triple> = back.triples().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_is_compact() {
        let kg = sample();
        let mut bin = Vec::new();
        write_snapshot(&kg, &mut bin).unwrap();
        // Compare with a naive 12-bytes-per-triple + strings layout.
        let naive = kg.num_triples() * 12;
        assert!(
            bin.len() < naive + kg.num_nodes() * 16,
            "binary {} should beat naive {}",
            bin.len(),
            naive
        );
    }

    #[test]
    fn rejects_corruption() {
        let kg = sample();
        let mut buf = Vec::new();
        write_snapshot(&kg, &mut buf).unwrap();
        // Bad magic.
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(read_snapshot(Cursor::new(&bad_magic)).is_err());
        // Truncation at any point errors rather than panics.
        for cut in [8usize, 20, buf.len() / 2, buf.len() - 1] {
            assert!(read_snapshot(Cursor::new(&buf[..cut])).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut Cursor::new(&buf)).unwrap(), v);
        }
    }

    /// Byte offset of the `u64` triple-count header in a snapshot.
    fn triple_count_offset(buf: &[u8]) -> usize {
        // Everything before the final num_triples u64 + triple payload
        // is dictionaries and nodes; find it by re-writing the graph
        // without triples is fragile, so compute from the known sample:
        // the count sits 8 bytes before the triple payload. Easiest
        // robust approach: locate the little-endian count value itself.
        let kg = sample();
        let needle = (kg.num_triples() as u64).to_le_bytes();
        buf.windows(8)
            .rposition(|w| w == needle)
            .expect("triple count header present")
    }

    #[test]
    fn rejects_forged_triple_count() {
        let kg = sample();
        let mut buf = Vec::new();
        write_snapshot(&kg, &mut buf).unwrap();
        let off = triple_count_offset(&buf);
        // A count far beyond nodes² · relations must be rejected up
        // front instead of looping until EOF on garbage.
        buf[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_snapshot(Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_oversized_id_varint() {
        let kg = sample();
        let mut buf = Vec::new();
        write_snapshot(&kg, &mut buf).unwrap();
        let off = triple_count_offset(&buf);
        // Replace the triple payload with one triple whose subject
        // delta is u32::MAX + 2 — under the old `as u32` cast this
        // silently truncated to 1 and produced a wrong (but valid-
        // looking) graph.
        buf.truncate(off);
        buf.extend_from_slice(&1u64.to_le_bytes());
        write_varint(&mut buf, u64::from(u32::MAX) + 2).unwrap();
        write_varint(&mut buf, 0).unwrap();
        write_varint(&mut buf, 0).unwrap();
        let err = read_snapshot(Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_subject_delta_overflow() {
        // Two triples whose deltas sum past u32::MAX must error on the
        // checked add, not wrap around to a small subject id.
        let kg = sample();
        let mut buf = Vec::new();
        write_snapshot(&kg, &mut buf).unwrap();
        let off = triple_count_offset(&buf);
        buf.truncate(off);
        buf.extend_from_slice(&2u64.to_le_bytes());
        for _ in 0..2 {
            write_varint(&mut buf, u64::from(u32::MAX)).unwrap();
            write_varint(&mut buf, 0).unwrap();
            write_varint(&mut buf, 0).unwrap();
        }
        let err = read_snapshot(Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn hostile_dictionary_count_does_not_preallocate() {
        // magic + num_classes = u32::MAX, then nothing: must fail on
        // the missing class terms, not abort in with_capacity.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_snapshot(Cursor::new(&buf)).is_err());
    }

    #[test]
    fn fingerprinted_roundtrip_matches() {
        let kg = sample();
        let mut buf = Vec::new();
        let fp_w = write_snapshot_fingerprinted(&kg, &mut buf).unwrap();
        let (back, fp_r) = read_snapshot_fingerprinted(Cursor::new(&buf)).unwrap();
        assert_eq!(fp_w, fp_r);
        assert_eq!(back.num_triples(), kg.num_triples());
        assert_eq!(fp_w, crate::fingerprint::fingerprint(&kg));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let kg = KnowledgeGraph::new();
        let mut buf = Vec::new();
        write_snapshot(&kg, &mut buf).unwrap();
        let back = read_snapshot(Cursor::new(&buf)).unwrap();
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_triples(), 0);
    }
}
