//! Metapath utilities.
//!
//! A metapath (§II of the paper) is a sequence of typed relation steps,
//! `c_1 -r_1-> c_2 -r_2-> … -r_h-> c_{h+1}`. The SPARQL extraction method
//! claims (§IV-C) that merging per-target subgraphs "maintains longer
//! metapaths … while still maintaining a smaller number of hops from the
//! target vertices". This module provides schema-level metapath discovery
//! and instance counting so that claim can be measured (see the
//! `metapath_preservation` integration test and the `ablation` benches).

use crate::graph::HeteroGraph;
use crate::ids::{Cid, Rid, Vid};
use crate::triples::KnowledgeGraph;

/// One step of a metapath: a relation traversed forward (`s → o`) or
/// backward (`o → s`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetapathStep {
    /// The relation.
    pub rel: Rid,
    /// `true` = follow subject→object direction.
    pub forward: bool,
}

/// A sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Metapath {
    /// The steps, in order.
    pub steps: Vec<MetapathStep>,
}

impl Metapath {
    /// Builds a metapath from `(relation, forward)` pairs.
    pub fn new(steps: impl IntoIterator<Item = (Rid, bool)>) -> Self {
        Self {
            steps: steps
                .into_iter()
                .map(|(rel, forward)| MetapathStep { rel, forward })
                .collect(),
        }
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Renders the path with relation names, e.g.
    /// `-writes-> <-cites-`.
    pub fn display(&self, kg: &KnowledgeGraph) -> String {
        self.steps
            .iter()
            .map(|s| {
                let name = kg.relation_term(s.rel);
                if s.forward {
                    format!("-{name}->")
                } else {
                    format!("<-{name}-")
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A schema-level metapath: the step sequence plus the class sequence it
/// connects (length `steps + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaMetapath {
    /// The relation/direction steps.
    pub path: Metapath,
    /// The classes visited, starting at the source class.
    pub classes: Vec<Cid>,
    /// How many edge instances support the *first* step (a cheap
    /// upper-bound prior used for ranking).
    pub support: usize,
}

/// Discovers schema-level metapaths of up to `max_len` hops starting at
/// `from_class`, derived from the *observed* class pairs of each relation
/// (not a declared schema — real KGs rarely have one).
///
/// Results are capped at `max_paths`, preferring higher first-step support
/// and shorter paths.
pub fn schema_metapaths(
    kg: &KnowledgeGraph,
    from_class: Cid,
    max_len: usize,
    max_paths: usize,
) -> Vec<SchemaMetapath> {
    // Observed (src_class, rel, dst_class) triples with support counts.
    let mut observed: crate::fxhash::FxHashMap<(u32, u32, bool), (u32, usize)> =
        crate::fxhash::FxHashMap::default();
    for t in kg.triples() {
        let (cs, co) = (kg.class_of(t.s), kg.class_of(t.o));
        let e = observed
            .entry((cs.raw(), t.p.raw(), true))
            .or_insert((co.raw(), 0));
        e.1 += 1;
        let e = observed
            .entry((co.raw(), t.p.raw(), false))
            .or_insert((cs.raw(), 0));
        e.1 += 1;
    }
    // NOTE: a (class, rel, dir) key may map to several destination classes
    // in noisy data; the entry API above keeps the first seen, which is the
    // dominant one for generated KGs. Good enough for ranking.

    let mut out: Vec<SchemaMetapath> = Vec::new();
    let mut frontier: Vec<SchemaMetapath> = vec![SchemaMetapath {
        path: Metapath::default(),
        classes: vec![from_class],
        support: usize::MAX,
    }];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for sp in &frontier {
            let last_class = *sp.classes.last().unwrap();
            for (&(c, rel, forward), &(dst, support)) in &observed {
                if c != last_class.raw() {
                    continue;
                }
                let mut path = sp.path.clone();
                path.steps.push(MetapathStep {
                    rel: Rid(rel),
                    forward,
                });
                let mut classes = sp.classes.clone();
                classes.push(Cid(dst));
                next.push(SchemaMetapath {
                    path,
                    classes,
                    support: sp.support.min(support),
                });
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(a.path.len().cmp(&b.path.len()))
            .then(a.classes.cmp(&b.classes))
    });
    out.truncate(max_paths);
    out
}

/// Counts metapath instances starting from `starts`: the number of walks
/// following the steps exactly. Multiplicities count (two distinct walks
/// to the same endpoint are two instances).
pub fn count_instances(g: &HeteroGraph, starts: &[Vid], path: &Metapath) -> u64 {
    // Dynamic programming on walk counts per vertex.
    let mut counts = vec![0u64; g.num_nodes()];
    for &v in starts {
        counts[v.idx()] += 1;
    }
    for step in &path.steps {
        let adj = g.relation(step.rel);
        let csr = if step.forward { &adj.out } else { &adj.inc };
        let mut next = vec![0u64; g.num_nodes()];
        for (v, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            for &u in csr.neighbors(Vid(v as u32)) {
                next[u as usize] += c;
            }
        }
        counts = next;
    }
    counts.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a —w→ p1 —c→ p2 —in→ v ; a —w→ p2.
    fn kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("a", "Author", "writes", "p1", "Paper");
        kg.add_triple_terms("a", "Author", "writes", "p2", "Paper");
        kg.add_triple_terms("p1", "Paper", "cites", "p2", "Paper");
        kg.add_triple_terms("p2", "Paper", "publishedIn", "v", "Venue");
        kg
    }

    #[test]
    fn counts_simple_chain() {
        let kg = kg();
        let g = HeteroGraph::build(&kg);
        let writes = kg.find_relation("writes").unwrap();
        let pub_in = kg.find_relation("publishedIn").unwrap();
        let cites = kg.find_relation("cites").unwrap();
        let a = kg.find_node("a").unwrap();
        // Author -writes-> Paper: two instances.
        let p = Metapath::new([(writes, true)]);
        assert_eq!(count_instances(&g, &[a], &p), 2);
        // APV via cites: a-writes-p1-cites-p2-publishedIn-v = 1, plus
        // a-writes-p2-publishedIn-v is a different (shorter) path.
        let apcv = Metapath::new([(writes, true), (cites, true), (pub_in, true)]);
        assert_eq!(count_instances(&g, &[a], &apcv), 1);
        // Backward step: Paper <-writes- gives the author.
        let back = Metapath::new([(writes, false)]);
        let p1 = kg.find_node("p1").unwrap();
        assert_eq!(count_instances(&g, &[p1], &back), 1);
    }

    #[test]
    fn empty_path_counts_starts() {
        let kg = kg();
        let g = HeteroGraph::build(&kg);
        let a = kg.find_node("a").unwrap();
        assert_eq!(count_instances(&g, &[a, a], &Metapath::default()), 2);
    }

    #[test]
    fn schema_discovery_finds_apv() {
        let kg = kg();
        let author = kg.find_class("Author").unwrap();
        let paths = schema_metapaths(&kg, author, 2, 50);
        assert!(!paths.is_empty());
        // Author -writes-> Paper must be among the 1-hop paths.
        let writes = kg.find_relation("writes").unwrap();
        assert!(paths.iter().any(|sp| {
            sp.path.len() == 1 && sp.path.steps[0].rel == writes && sp.path.steps[0].forward
        }));
        // And a 2-hop extension through cites or publishedIn exists.
        assert!(paths.iter().any(|sp| sp.path.len() == 2));
    }

    #[test]
    fn display_renders_directions() {
        let kg = kg();
        let writes = kg.find_relation("writes").unwrap();
        let cites = kg.find_relation("cites").unwrap();
        let p = Metapath::new([(writes, true), (cites, false)]);
        assert_eq!(p.display(&kg), "-writes-> <-cites-");
    }
}
