//! A fast, non-cryptographic hasher for integer-keyed and short-string maps.
//!
//! This is the well-known "Fx" multiply-rotate hash used by rustc. The
//! standard library's SipHash is HashDoS-resistant but slow for the hot
//! interning and adjacency maps in this workspace; all keys here are
//! internally generated (never attacker-controlled), so the faster hash is
//! safe to use.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn string_keys_hash_consistently() {
        let mut s: FxHashSet<String> = FxHashSet::default();
        s.insert("hello".to_string());
        assert!(s.contains("hello"));
        assert!(!s.contains("world"));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        // Sanity: hashing 10k sequential ints produces 10k distinct hashes.
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn unaligned_tail_bytes_are_hashed() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh_tail");
        let mut b = FxHasher::default();
        b.write(b"abcdefgh_tail2");
        assert_ne!(a.finish(), b.finish());
    }
}
