//! The knowledge-graph container: interned terms, typed vertices, triples.
//!
//! Follows Definition 2.1 of the paper: `KG = (V, C, L, R, T)` where every
//! vertex has a class in `C` and every triple `(s, p, o)` connects a subject
//! vertex to an object vertex or literal via a predicate in `R`. Literals are
//! modelled as vertices carrying the reserved class [`KnowledgeGraph::LITERAL_CLASS`],
//! which keeps all traversal code uniform while still letting statistics and
//! extraction distinguish them.

use crate::dict::Dictionary;
use crate::ids::{Cid, Rid, Vid};

/// A single `(subject, predicate, object)` edge with interned ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject vertex.
    pub s: Vid,
    /// Predicate (relation).
    pub p: Rid,
    /// Object vertex (entity or literal vertex).
    pub o: Vid,
}

impl Triple {
    /// Creates a triple from raw ids.
    #[inline]
    pub const fn new(s: Vid, p: Rid, o: Vid) -> Self {
        Self { s, p, o }
    }

    /// Returns the triple as a `[s, p, o]` raw array (used by the hexastore).
    #[inline]
    pub const fn raw(self) -> [u32; 3] {
        [self.s.0, self.p.0, self.o.0]
    }
}

/// An in-memory heterogeneous knowledge graph.
///
/// Vertices, relations and classes each have their own dense id space backed
/// by a [`Dictionary`]. Triples are stored as a flat `Vec` in insertion
/// order; graph views (CSR adjacency, hexastore indices) are built on demand
/// by [`crate::graph::HeteroGraph`] and `kgtosa-rdf`.
#[derive(Debug, Default, Clone)]
pub struct KnowledgeGraph {
    nodes: Dictionary,
    relations: Dictionary,
    classes: Dictionary,
    node_class: Vec<Cid>,
    triples: Vec<Triple>,
}

impl KnowledgeGraph {
    /// Reserved class name assigned to literal vertices.
    pub const LITERAL_CLASS: &'static str = "__literal__";

    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph preallocating for `nodes` vertices and
    /// `triples` edges.
    pub fn with_capacity(nodes: usize, triples: usize) -> Self {
        Self {
            nodes: Dictionary::with_capacity(nodes),
            relations: Dictionary::new(),
            classes: Dictionary::new(),
            node_class: Vec::with_capacity(nodes),
            triples: Vec::with_capacity(triples),
        }
    }

    /// Interns (or finds) a vertex with the given term and class.
    ///
    /// If the vertex already exists its class is left unchanged — the first
    /// declaration wins, mirroring `rdf:type` assertions at load time.
    pub fn add_node(&mut self, term: &str, class: &str) -> Vid {
        let cid = Cid(self.classes.intern(class));
        let vid = self.nodes.intern(term);
        if vid as usize == self.node_class.len() {
            self.node_class.push(cid);
        }
        Vid(vid)
    }

    /// Interns a literal vertex (class [`Self::LITERAL_CLASS`]).
    pub fn add_literal(&mut self, value: &str) -> Vid {
        self.add_node(value, Self::LITERAL_CLASS)
    }

    /// Interns (or finds) a relation.
    pub fn add_relation(&mut self, term: &str) -> Rid {
        Rid(self.relations.intern(term))
    }

    /// Interns (or finds) a class without creating any vertex.
    pub fn add_class(&mut self, term: &str) -> Cid {
        Cid(self.classes.intern(term))
    }

    /// Appends a triple between already-created vertices.
    ///
    /// # Panics
    /// Panics in debug builds if any id is out of range.
    pub fn add_triple(&mut self, s: Vid, p: Rid, o: Vid) {
        debug_assert!(s.idx() < self.node_class.len(), "subject out of range");
        debug_assert!(o.idx() < self.node_class.len(), "object out of range");
        debug_assert!((p.idx()) < self.relations.len(), "relation out of range");
        self.triples.push(Triple::new(s, p, o));
    }

    /// Convenience: intern all three terms and append the triple. The
    /// subject and object classes are only used when the vertex is new.
    pub fn add_triple_terms(
        &mut self,
        s: &str,
        s_class: &str,
        p: &str,
        o: &str,
        o_class: &str,
    ) -> Triple {
        let s = self.add_node(s, s_class);
        let p = self.add_relation(p);
        let o = self.add_node(o, o_class);
        self.add_triple(s, p, o);
        Triple::new(s, p, o)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of vertices (entities + literals).
    pub fn num_nodes(&self) -> usize {
        self.node_class.len()
    }

    /// Number of distinct relations (edge types), `|R|`.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of distinct classes (node types), `|C|`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of triples, `|T|`.
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// The class of a vertex.
    #[inline]
    pub fn class_of(&self, v: Vid) -> Cid {
        self.node_class[v.idx()]
    }

    /// Slice of all vertex classes, indexed by vertex id.
    pub fn node_classes(&self) -> &[Cid] {
        &self.node_class
    }

    /// All triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Vertex term for an id.
    pub fn node_term(&self, v: Vid) -> &str {
        self.nodes.resolve(v.0)
    }

    /// Relation term for an id.
    pub fn relation_term(&self, r: Rid) -> &str {
        self.relations.resolve(r.0)
    }

    /// Class term for an id.
    pub fn class_term(&self, c: Cid) -> &str {
        self.classes.resolve(c.0)
    }

    /// Looks up a vertex by term.
    pub fn find_node(&self, term: &str) -> Option<Vid> {
        self.nodes.get(term).map(Vid)
    }

    /// Looks up a relation by term.
    pub fn find_relation(&self, term: &str) -> Option<Rid> {
        self.relations.get(term).map(Rid)
    }

    /// Looks up a class by term.
    pub fn find_class(&self, term: &str) -> Option<Cid> {
        self.classes.get(term).map(Cid)
    }

    /// All vertices of a given class, in id order.
    pub fn nodes_of_class(&self, c: Cid) -> Vec<Vid> {
        self.node_class
            .iter()
            .enumerate()
            .filter(|(_, &cls)| cls == c)
            .map(|(i, _)| Vid(i as u32))
            .collect()
    }

    /// Number of vertices per class, indexed by class id.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes()];
        for &c in &self.node_class {
            hist[c.idx()] += 1;
        }
        hist
    }

    /// The class id of literal vertices, if any literal was added.
    pub fn literal_class(&self) -> Option<Cid> {
        self.find_class(Self::LITERAL_CLASS)
    }

    /// Iterates `(id, term)` for every relation.
    pub fn relations(&self) -> impl Iterator<Item = (Rid, &str)> {
        self.relations.iter().map(|(i, s)| (Rid(i), s))
    }

    /// Iterates `(id, term)` for every class.
    pub fn classes(&self) -> impl Iterator<Item = (Cid, &str)> {
        self.classes.iter().map(|(i, s)| (Cid(i), s))
    }

    /// Approximate heap footprint in bytes, used in experiment reports.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes()
            + self.relations.heap_bytes()
            + self.classes.heap_bytes()
            + self.node_class.capacity() * std::mem::size_of::<Cid>()
            + self.triples.capacity() * std::mem::size_of::<Triple>()
    }

    /// Keeps only the triples for which `f` returns `true`, preserving
    /// insertion order. Vertices, relations and classes are never removed:
    /// dictionaries are append-only so ids stay stable across mutations
    /// (the delta layer depends on this to patch extracted subgraphs
    /// without remapping).
    pub fn retain_triples(&mut self, f: impl FnMut(&Triple) -> bool) {
        self.triples.retain(f);
    }

    /// Sorts and deduplicates the triple list in place, returning the number
    /// of duplicates removed. Mirrors the `dropDuplicates` step of
    /// Algorithm 3 in the paper.
    pub fn dedup_triples(&mut self) -> usize {
        let before = self.triples.len();
        self.triples.sort_unstable();
        self.triples.dedup();
        before - self.triples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("p1", "Paper", "publishedIn", "v1", "Venue");
        kg.add_triple_terms("a1", "Author", "writes", "p1", "Paper");
        kg
    }

    #[test]
    fn counts_reflect_inserts() {
        let kg = tiny();
        assert_eq!(kg.num_nodes(), 3);
        assert_eq!(kg.num_relations(), 2);
        assert_eq!(kg.num_classes(), 3);
        assert_eq!(kg.num_triples(), 2);
    }

    #[test]
    fn first_class_declaration_wins() {
        let mut kg = KnowledgeGraph::new();
        let v1 = kg.add_node("x", "A");
        let v2 = kg.add_node("x", "B");
        assert_eq!(v1, v2);
        assert_eq!(kg.class_term(kg.class_of(v1)), "A");
        // "B" was still interned as a class.
        assert_eq!(kg.num_classes(), 2);
    }

    #[test]
    fn literal_vertices_get_reserved_class() {
        let mut kg = KnowledgeGraph::new();
        let l = kg.add_literal("2024");
        assert_eq!(kg.class_term(kg.class_of(l)), KnowledgeGraph::LITERAL_CLASS);
        assert_eq!(kg.literal_class(), Some(kg.class_of(l)));
    }

    #[test]
    fn nodes_of_class_filters() {
        let kg = tiny();
        let paper = kg.find_class("Paper").unwrap();
        let papers = kg.nodes_of_class(paper);
        assert_eq!(papers.len(), 1);
        assert_eq!(kg.node_term(papers[0]), "p1");
    }

    #[test]
    fn class_histogram_sums_to_node_count() {
        let kg = tiny();
        let hist = kg.class_histogram();
        assert_eq!(hist.iter().sum::<usize>(), kg.num_nodes());
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut kg = tiny();
        let t = kg.triples()[0];
        kg.add_triple(t.s, t.p, t.o);
        assert_eq!(kg.num_triples(), 3);
        assert_eq!(kg.dedup_triples(), 1);
        assert_eq!(kg.num_triples(), 2);
    }

    #[test]
    fn term_lookups_roundtrip() {
        let kg = tiny();
        let v = kg.find_node("a1").unwrap();
        assert_eq!(kg.node_term(v), "a1");
        let r = kg.find_relation("writes").unwrap();
        assert_eq!(kg.relation_term(r), "writes");
        assert_eq!(kg.find_node("nope"), None);
    }

    #[test]
    fn raw_triple_layout() {
        let t = Triple::new(Vid(1), Rid(2), Vid(3));
        assert_eq!(t.raw(), [1, 2, 3]);
    }
}
