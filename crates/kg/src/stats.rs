//! Data-sufficiency and graph-topology quality indicators.
//!
//! Section III-A of the paper grounds TOSG extraction in two families of
//! measurements, reported for every sampler in Table III:
//!
//! * **Data sufficiency** — how many target vertices the subgraph contains
//!   (absolute and as a ratio), and how many node/edge types survive.
//! * **Graph topology** — what fraction of non-target vertices is
//!   disconnected from every target, the average hop distance from
//!   non-target to the nearest target, and the Shannon entropy (Eq. 2) of
//!   the per-vertex count of distinct neighbour node types.

use std::collections::VecDeque;

use crate::graph::HeteroGraph;
use crate::ids::Vid;
use crate::subgraph::{live_classes, live_relations, NodeSet};
use crate::triples::KnowledgeGraph;

/// Quality indicators of a (sub)graph with respect to a target vertex set.
/// Field names mirror the columns of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct SubgraphQuality {
    /// Total vertices in the subgraph.
    pub num_nodes: usize,
    /// Total triples in the subgraph.
    pub num_triples: usize,
    /// Number of target vertices present.
    pub target_count: usize,
    /// Target vertices as a percentage of all vertices.
    pub target_ratio_pct: f64,
    /// Live node types, `|C'|`.
    pub num_classes: usize,
    /// Live edge types, `|R'|`.
    pub num_relations: usize,
    /// Percentage of non-target vertices unreachable from every target.
    pub target_disconnected_pct: f64,
    /// Mean hop distance from reachable non-target vertices to the nearest
    /// target (undirected).
    pub avg_dist_to_target: f64,
    /// Shannon entropy of the neighbour-node-type-count distribution (Eq 2).
    pub avg_entropy: f64,
}

/// Computes all indicators for `kg` given its targets.
///
/// Builds a transient [`HeteroGraph`]; when the caller already has one, use
/// [`quality_with_graph`] to avoid rebuilding adjacency.
pub fn quality(kg: &KnowledgeGraph, targets: &[Vid]) -> SubgraphQuality {
    let g = HeteroGraph::build(kg);
    quality_with_graph(kg, &g, targets)
}

/// Computes all indicators given a prebuilt adjacency view.
pub fn quality_with_graph(
    kg: &KnowledgeGraph,
    g: &HeteroGraph,
    targets: &[Vid],
) -> SubgraphQuality {
    let n = kg.num_nodes();
    let target_set = NodeSet::from_iter(n, targets.iter().copied());
    let dist = distances_to_targets(g, targets);

    let mut reachable_non_target = 0usize;
    let mut unreachable_non_target = 0usize;
    let mut dist_sum = 0u64;
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        if target_set.contains(Vid(v as u32)) {
            continue;
        }
        match dist[v] {
            u32::MAX => unreachable_non_target += 1,
            d => {
                reachable_non_target += 1;
                dist_sum += d as u64;
            }
        }
    }
    let non_target = reachable_non_target + unreachable_non_target;

    SubgraphQuality {
        num_nodes: n,
        num_triples: kg.num_triples(),
        target_count: target_set.len(),
        target_ratio_pct: pct(target_set.len(), n),
        num_classes: live_classes(kg),
        num_relations: live_relations(kg),
        target_disconnected_pct: pct(unreachable_non_target, non_target),
        avg_dist_to_target: if reachable_non_target == 0 {
            0.0
        } else {
            dist_sum as f64 / reachable_non_target as f64
        },
        avg_entropy: neighbor_type_entropy(g),
    }
}

#[inline]
fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Multi-source BFS over the undirected merged adjacency. Returns, for each
/// vertex, the hop distance to the nearest target (`u32::MAX` when
/// unreachable). Targets themselves have distance 0.
pub fn distances_to_targets(g: &HeteroGraph, targets: &[Vid]) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    let mut queue = VecDeque::with_capacity(targets.len());
    for &t in targets {
        if dist[t.idx()] == u32::MAX {
            dist[t.idx()] = 0;
            queue.push_back(t);
        }
    }
    while let Some(v) = queue.pop_front() {
        let next = dist[v.idx()] + 1;
        for &u in g.undirected().neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = next;
                queue.push_back(Vid(u));
            }
        }
    }
    dist
}

/// Shannon entropy (Eq. 2) of the distribution of "number of distinct
/// neighbour node types" across all vertices.
///
/// For each vertex we count the distinct classes among its (undirected)
/// neighbours; `P(k)` is the fraction of vertices whose count is `k`;
/// `H = -Σ P(k) · log2 P(k)`. Higher values mean a more diverse topology.
pub fn neighbor_type_entropy(g: &HeteroGraph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut histogram: Vec<usize> = Vec::new();
    let mut seen = vec![u32::MAX; g.num_classes().max(1)];
    for v in 0..n {
        let vid = Vid(v as u32);
        let mut distinct = 0usize;
        for &u in g.undirected().neighbors(vid) {
            let c = g.class_of(Vid(u)).idx();
            if seen[c] != v as u32 {
                seen[c] = v as u32;
                distinct += 1;
            }
        }
        if distinct >= histogram.len() {
            histogram.resize(distinct + 1, 0);
        }
        histogram[distinct] += 1;
    }
    let total = n as f64;
    histogram
        .iter()
        .filter(|&&count| count > 0)
        .map(|&count| {
            let p = count as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Average degree of a vertex set within `g` (used to reason about the
/// extraction cost term `O(d · |V_s|)` in §IV).
pub fn average_degree(g: &HeteroGraph, nodes: &[Vid]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let sum: usize = nodes.iter().map(|&v| g.total_degree(v)).sum();
    sum as f64 / nodes.len() as f64
}

/// Whole-KG summary statistics used by extractor selection and the serve
/// `/serve` endpoint.
///
/// Historically these were computed once at load time and silently went
/// stale when the graph changed. They are now part of the serve epoch:
/// [`KgStats::adjust`] patches them in O(|delta|) on every delta apply,
/// and the regression tests assert the adjusted values always equal a
/// from-scratch [`KgStats::compute`] over the patched graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KgStats {
    /// `|V|` — vertices (entities + literals).
    pub num_nodes: usize,
    /// `|T|` — triples.
    pub num_triples: usize,
    /// `|C|` — interned classes (including currently unused terms).
    pub num_classes: usize,
    /// `|R|` — interned relations (including currently unused terms).
    pub num_relations: usize,
    /// Vertices per class, indexed by class id.
    pub class_histogram: Vec<usize>,
    /// Triples per relation, indexed by relation id.
    pub relation_histogram: Vec<usize>,
}

impl KgStats {
    /// Full O(|KG|) computation, used once at load time.
    pub fn compute(kg: &KnowledgeGraph) -> Self {
        let mut relation_histogram = vec![0usize; kg.num_relations()];
        for t in kg.triples() {
            relation_histogram[t.p.idx()] += 1;
        }
        KgStats {
            num_nodes: kg.num_nodes(),
            num_triples: kg.num_triples(),
            num_classes: kg.num_classes(),
            num_relations: kg.num_relations(),
            class_histogram: kg.class_histogram(),
            relation_histogram,
        }
    }

    /// Patches the stats to describe `app.kg` after a delta apply, in
    /// O(|delta|) — no rescan of the graph. Dictionary growth extends the
    /// histograms; touched triples adjust the per-relation counts; new
    /// vertices bump their class bucket.
    pub fn adjust(&mut self, app: &crate::delta::DeltaApplication) {
        self.num_nodes = app.kg.num_nodes();
        self.num_classes = app.kg.num_classes();
        self.num_relations = app.kg.num_relations();
        self.class_histogram.resize(self.num_classes, 0);
        self.relation_histogram.resize(self.num_relations, 0);
        for &v in &app.new_nodes {
            self.class_histogram[app.kg.class_of(v).idx()] += 1;
        }
        for t in &app.added {
            self.relation_histogram[t.p.idx()] += 1;
            self.num_triples += 1;
        }
        for t in &app.removed {
            self.relation_histogram[t.p.idx()] -= 1;
            self.num_triples -= 1;
        }
    }

    /// Mean out-degree `|T| / |V|`, the `d` of the §IV cost term
    /// `O(d · |V_s|)` that extractor selection reasons about.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_triples as f64 / self.num_nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{apply_delta, DeltaOp, KgDelta, MultisetFingerprint};
    use crate::fingerprint::fingerprint;

    /// star: t is target; x1,x2 adjacent to t; y adjacent to x1; z isolated.
    fn star() -> (KnowledgeGraph, Vec<Vid>) {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("t", "T", "r", "x1", "X");
        kg.add_triple_terms("t", "T", "r", "x2", "X");
        kg.add_triple_terms("x1", "X", "s", "y", "Y");
        kg.add_node("z", "Z");
        let t = kg.find_node("t").unwrap();
        (kg, vec![t])
    }

    #[test]
    fn distances_multi_source() {
        let (kg, targets) = star();
        let g = HeteroGraph::build(&kg);
        let d = distances_to_targets(&g, &targets);
        let idx = |s: &str| kg.find_node(s).unwrap().idx();
        assert_eq!(d[idx("t")], 0);
        assert_eq!(d[idx("x1")], 1);
        assert_eq!(d[idx("y")], 2);
        assert_eq!(d[idx("z")], u32::MAX);
    }

    #[test]
    fn quality_counts_disconnected() {
        let (kg, targets) = star();
        let q = quality(&kg, &targets);
        assert_eq!(q.num_nodes, 5);
        assert_eq!(q.target_count, 1);
        assert!((q.target_ratio_pct - 20.0).abs() < 1e-9);
        // z is the only disconnected non-target among 4 non-targets.
        assert!((q.target_disconnected_pct - 25.0).abs() < 1e-9);
        // distances: x1=1, x2=1, y=2 → avg 4/3.
        assert!((q.avg_dist_to_target - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_zero_for_uniform_counts() {
        // Every vertex has exactly one neighbour type → single bucket → H=0.
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("a", "A", "r", "b", "A");
        let g = HeteroGraph::build(&kg);
        assert!(neighbor_type_entropy(&g).abs() < 1e-12);
    }

    #[test]
    fn entropy_positive_for_mixed_counts() {
        let (kg, _) = star();
        let g = HeteroGraph::build(&kg);
        // t has 1 distinct type (X); x1 has 2 (T,Y); x2 1 (T); y 1 (X); z 0.
        // Buckets {0:1, 1:3, 2:1} → entropy of (0.2, 0.6, 0.2).
        let expect = -(0.2f64.log2() * 0.2 + 0.6f64.log2() * 0.6 + 0.2f64.log2() * 0.2);
        assert!((neighbor_type_entropy(&g) - expect).abs() < 1e-9);
    }

    #[test]
    fn entropy_bounded_by_log_buckets() {
        let (kg, _) = star();
        let g = HeteroGraph::build(&kg);
        let h = neighbor_type_entropy(&g);
        assert!(h >= 0.0);
        assert!(h <= (g.num_nodes() as f64).log2());
    }

    #[test]
    fn average_degree_simple() {
        let (kg, _) = star();
        let g = HeteroGraph::build(&kg);
        let t = kg.find_node("t").unwrap();
        let z = kg.find_node("z").unwrap();
        assert!((average_degree(&g, &[t, z]) - 1.0).abs() < 1e-12);
        assert_eq!(average_degree(&g, &[]), 0.0);
    }

    #[test]
    fn no_targets_all_disconnected() {
        let (kg, _) = star();
        let q = quality(&kg, &[]);
        assert_eq!(q.target_count, 0);
        assert!((q.target_disconnected_pct - 100.0).abs() < 1e-9);
        assert_eq!(q.avg_dist_to_target, 0.0);
    }

    #[test]
    fn kg_stats_compute_matches_graph() {
        let (kg, _) = star();
        let s = KgStats::compute(&kg);
        assert_eq!(s.num_nodes, kg.num_nodes());
        assert_eq!(s.num_triples, kg.num_triples());
        assert_eq!(s.class_histogram.iter().sum::<usize>(), kg.num_nodes());
        assert_eq!(s.relation_histogram.iter().sum::<usize>(), kg.num_triples());
    }

    /// Regression: load-time stats must not go stale under delta apply —
    /// the O(|delta|) adjustment has to equal a full recomputation.
    #[test]
    fn kg_stats_adjust_equals_recompute() {
        let (kg, _) = star();
        let mut stats = KgStats::compute(&kg);
        let delta = KgDelta {
            base_fingerprint: fingerprint(&kg),
            ops: vec![
                DeltaOp::Add {
                    s: "w".into(),
                    s_class: "W".into(),
                    p: "r".into(),
                    o: "t".into(),
                    o_class: "T".into(),
                },
                DeltaOp::Add {
                    s: "t".into(),
                    s_class: "T".into(),
                    p: "q".into(),
                    o: "w".into(),
                    o_class: "W".into(),
                },
                DeltaOp::Remove { s: "x1".into(), p: "s".into(), o: "y".into() },
            ],
        };
        let app =
            apply_delta(&kg, fingerprint(&kg), MultisetFingerprint::of(&kg), &delta).unwrap();
        stats.adjust(&app);
        assert_eq!(stats, KgStats::compute(&app.kg));
        assert!(stats.avg_degree() > 0.0);
    }
}
