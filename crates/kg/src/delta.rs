//! Versioned, checksummed triple add/remove deltas over KG snapshots.
//!
//! The paper's extraction pipeline (Algorithms 1–3) assumes a frozen KG;
//! this module is the mutation story layered on top of it. A [`KgDelta`]
//! is an ordered log of term-level [`DeltaOp`]s pinned to the canonical
//! fingerprint of the base graph it applies to. Applying a delta is
//! **all-or-nothing**: [`apply_delta`] works on a clone and either returns
//! the fully patched graph or an error with the input untouched — a delta
//! never applies partially, mirroring the reject-don't-repair stance of
//! the snapshot decoder.
//!
//! ## Id stability
//!
//! Dictionaries are append-only and [`KnowledgeGraph::retain_triples`]
//! never drops vertices, so every vertex/relation/class id of the base
//! graph is valid — with the same meaning — in the patched graph. The
//! incremental TOSG repair in `kgtosa-core` depends on this: cached
//! parent-space mappings survive a delta without remapping.
//!
//! ## Incremental fingerprinting
//!
//! The canonical fingerprint ([`crate::fingerprint::fingerprint`]) hashes
//! a serialized byte stream and cannot be patched in place. The
//! [`MultisetFingerprint`] is its order-independent companion: a wrapping
//! sum of per-element hashes (classes, relations, typed vertices, triples),
//! so an add is a `wrapping_add` and a remove a `wrapping_sub` — O(1) per
//! op instead of O(|KG|) per epoch. [`apply_delta`] maintains it
//! incrementally; the differential test suite asserts it always equals a
//! from-scratch [`MultisetFingerprint::of`] over the patched graph.
//!
//! ## Wire format (`KGTOSAD1`)
//!
//! ```text
//! magic "KGTOSAD1" | varint version | varint base_fingerprint |
//! varint num_ops | ops... | u64-le FNV-1a checksum of everything
//!                           between magic and checksum
//! ```
//!
//! Each op is a tag byte (0 = add, 1 = remove) followed by
//! length-prefixed UTF-8 terms. The decoder mirrors the snapshot
//! decoder's hardening: bounded preallocation, capped term lengths and
//! op counts, varint overflow rejection, and checksum verification —
//! hostile bytes produce `InvalidData`, never a panic and never a
//! partially decoded delta.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::fingerprint::{Fnv64, HashingReader, HashingWriter};
use crate::fxhash::FxHashMap;
use crate::ids::Vid;
use crate::snapshot::{read_varint, write_varint};
use crate::triples::{KnowledgeGraph, Triple};

/// Magic prefix of the delta wire format.
pub const DELTA_MAGIC: &[u8; 8] = b"KGTOSAD1";
/// Current format version.
pub const DELTA_VERSION: u64 = 1;

/// Hard cap on the declared op count: a hostile header cannot make the
/// decoder loop forever or balloon memory.
const MAX_OPS: u64 = 1 << 24;
/// Hard cap on a single term's byte length (matches the snapshot codec).
const MAX_TERM_LEN: u64 = 1 << 24;
/// Never preallocate more than this many elements from untrusted counts.
const MAX_PREALLOC: usize = 1 << 16;

/// One term-level mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Assert a triple, interning any new vertices/relations/classes.
    /// The class terms only take effect when the vertex is new (first
    /// declaration wins, as at load time).
    Add { s: String, s_class: String, p: String, o: String, o_class: String },
    /// Retract **one occurrence** of an existing triple. All three terms
    /// must already be interned and the triple must be present, otherwise
    /// the whole delta is rejected.
    Remove { s: String, p: String, o: String },
}

/// An ordered op log pinned to the canonical fingerprint of its base KG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KgDelta {
    /// Canonical fingerprint ([`crate::fingerprint::fingerprint`]) of the
    /// graph this delta was authored against.
    pub base_fingerprint: u64,
    /// Mutations, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl KgDelta {
    /// Creates a delta pinned to `base_fingerprint`.
    pub fn new(base_fingerprint: u64) -> Self {
        KgDelta { base_fingerprint, ops: Vec::new() }
    }
}

// ----------------------------------------------------------------------
// Wire codec
// ----------------------------------------------------------------------

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let len = read_varint(r)?;
    if len > MAX_TERM_LEN {
        return Err(bad("delta term length exceeds cap"));
    }
    let mut buf = vec![0u8; (len as usize).min(MAX_PREALLOC)];
    let mut out = Vec::with_capacity(buf.len());
    let mut remaining = len as usize;
    while remaining > 0 {
        let chunk = remaining.min(buf.len());
        r.read_exact(&mut buf[..chunk])?;
        out.extend_from_slice(&buf[..chunk]);
        remaining -= chunk;
    }
    String::from_utf8(out).map_err(|_| bad("delta term is not valid UTF-8"))
}

/// Serializes `delta` in the `KGTOSAD1` format, trailing checksum included.
pub fn write_delta(delta: &KgDelta, mut w: impl Write) -> io::Result<()> {
    w.write_all(DELTA_MAGIC)?;
    let mut hw = HashingWriter::new(w);
    write_varint(&mut hw, DELTA_VERSION)?;
    write_varint(&mut hw, delta.base_fingerprint)?;
    write_varint(&mut hw, delta.ops.len() as u64)?;
    for op in &delta.ops {
        match op {
            DeltaOp::Add { s, s_class, p, o, o_class } => {
                hw.write_all(&[0])?;
                for term in [s, s_class, p, o, o_class] {
                    write_str(&mut hw, term)?;
                }
            }
            DeltaOp::Remove { s, p, o } => {
                hw.write_all(&[1])?;
                for term in [s, p, o] {
                    write_str(&mut hw, term)?;
                }
            }
        }
    }
    let checksum = hw.finish();
    let mut w = hw.into_inner();
    w.write_all(&checksum.to_le_bytes())
}

/// Decodes a `KGTOSAD1` delta, verifying the trailing checksum.
///
/// Any malformed input — wrong magic, unknown version, hostile op count,
/// oversized varint or term, bad tag, truncation, checksum mismatch —
/// yields `InvalidData`/`UnexpectedEof`. Nothing is ever half-decoded:
/// the delta is only returned after the checksum verifies.
pub fn read_delta(mut r: impl Read) -> io::Result<KgDelta> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != DELTA_MAGIC {
        return Err(bad("not a KGTOSAD1 delta (bad magic)"));
    }
    let mut hr = HashingReader::new(r);
    let version = read_varint(&mut hr)?;
    if version != DELTA_VERSION {
        return Err(bad("unsupported delta version"));
    }
    let base_fingerprint = read_varint(&mut hr)?;
    let num_ops = read_varint(&mut hr)?;
    if num_ops > MAX_OPS {
        return Err(bad("delta op count implausible"));
    }
    let mut ops = Vec::with_capacity((num_ops as usize).min(MAX_PREALLOC));
    for _ in 0..num_ops {
        let mut tag = [0u8; 1];
        hr.read_exact(&mut tag)?;
        let op = match tag[0] {
            0 => DeltaOp::Add {
                s: read_str(&mut hr)?,
                s_class: read_str(&mut hr)?,
                p: read_str(&mut hr)?,
                o: read_str(&mut hr)?,
                o_class: read_str(&mut hr)?,
            },
            1 => DeltaOp::Remove {
                s: read_str(&mut hr)?,
                p: read_str(&mut hr)?,
                o: read_str(&mut hr)?,
            },
            _ => return Err(bad("unknown delta op tag")),
        };
        ops.push(op);
    }
    let computed = hr.finish();
    let mut r = hr.into_inner();
    let mut trailer = [0u8; 8];
    r.read_exact(&mut trailer)?;
    if u64::from_le_bytes(trailer) != computed {
        return Err(bad("delta checksum mismatch"));
    }
    Ok(KgDelta { base_fingerprint, ops })
}

// ----------------------------------------------------------------------
// Multiset fingerprint
// ----------------------------------------------------------------------

/// Order-independent content fingerprint: the wrapping sum of per-element
/// FNV-1a hashes over tagged, length-prefixed term encodings. Elements are
/// class terms, relation terms, typed vertices `(term, class term)` and
/// triples `(s term, p term, o term)`. Adding an element is `wrapping_add`
/// of its hash, removing is `wrapping_sub` — which is what makes it
/// maintainable in O(1) per delta op.
///
/// This complements (does not replace) the canonical stream fingerprint:
/// cache keys stay on [`crate::fingerprint::fingerprint`]; the multiset
/// value is the cheap invariant the differential harness checks after
/// every apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultisetFingerprint(u64);

const TAG_CLASS: u8 = 1;
const TAG_RELATION: u8 = 2;
const TAG_NODE: u8 = 3;
const TAG_TRIPLE: u8 = 4;

fn elem_hash(tag: u8, parts: &[&str]) -> u64 {
    let mut h = Fnv64::new();
    h.update(&[tag]);
    for p in parts {
        h.update(&(p.len() as u64).to_le_bytes());
        h.update(p.as_bytes());
    }
    h.finish()
}

fn triple_hash(kg: &KnowledgeGraph, t: Triple) -> u64 {
    elem_hash(
        TAG_TRIPLE,
        &[kg.node_term(t.s), kg.relation_term(t.p), kg.node_term(t.o)],
    )
}

impl MultisetFingerprint {
    /// The empty multiset.
    pub fn empty() -> Self {
        MultisetFingerprint(0)
    }

    /// Full recomputation over every element of `kg`. O(|KG|); used at
    /// load time and by the differential tests as ground truth.
    pub fn of(kg: &KnowledgeGraph) -> Self {
        let mut acc = 0u64;
        for (_, term) in kg.classes() {
            acc = acc.wrapping_add(elem_hash(TAG_CLASS, &[term]));
        }
        for (_, term) in kg.relations() {
            acc = acc.wrapping_add(elem_hash(TAG_RELATION, &[term]));
        }
        for v in 0..kg.num_nodes() {
            let v = Vid(v as u32);
            let cls = kg.class_term(kg.class_of(v));
            acc = acc.wrapping_add(elem_hash(TAG_NODE, &[kg.node_term(v), cls]));
        }
        for &t in kg.triples() {
            acc = acc.wrapping_add(triple_hash(kg, t));
        }
        MultisetFingerprint(acc)
    }

    /// The raw 64-bit value.
    pub fn value(self) -> u64 {
        self.0
    }

    fn add(&mut self, h: u64) {
        self.0 = self.0.wrapping_add(h);
    }

    fn sub(&mut self, h: u64) {
        self.0 = self.0.wrapping_sub(h);
    }
}

// ----------------------------------------------------------------------
// Apply
// ----------------------------------------------------------------------

/// Why a delta was rejected. Rejection is total: the base graph is never
/// modified (apply works on a clone that is discarded on error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta was authored against a different graph version.
    BaseMismatch { expected: u64, actual: u64 },
    /// A remove op referenced a vertex term that is not interned.
    UnknownNode(String),
    /// A remove op referenced a relation term that is not interned.
    UnknownRelation(String),
    /// A remove op referenced a triple with no live occurrence.
    MissingTriple { s: String, p: String, o: String },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BaseMismatch { expected, actual } => write!(
                f,
                "delta base fingerprint {expected:016x} does not match live graph {actual:016x}"
            ),
            DeltaError::UnknownNode(t) => write!(f, "remove references unknown vertex {t:?}"),
            DeltaError::UnknownRelation(t) => {
                write!(f, "remove references unknown relation {t:?}")
            }
            DeltaError::MissingTriple { s, p, o } => {
                write!(f, "remove references missing triple ({s:?}, {p:?}, {o:?})")
            }
        }
    }
}

impl Error for DeltaError {}

/// The result of a successful [`apply_delta`].
#[derive(Debug, Clone)]
pub struct DeltaApplication {
    /// The patched graph. Base ids are all still valid (see module docs).
    pub kg: KnowledgeGraph,
    /// Multiset fingerprint of `kg`, maintained incrementally.
    pub multiset: MultisetFingerprint,
    /// Triples asserted by the delta, in the (stable) id space of `kg`.
    /// A triple both added and removed by one delta appears in both lists.
    pub added: Vec<Triple>,
    /// Triples retracted by the delta (one entry per retracted occurrence).
    pub removed: Vec<Triple>,
    /// Vertices interned by the delta (ids ≥ the base graph's node count).
    pub new_nodes: Vec<Vid>,
}

/// Applies `delta` to `kg`, returning the patched graph plus everything
/// downstream layers need to react incrementally (touched triples, new
/// vertices, updated multiset fingerprint).
///
/// `kg_fingerprint` is the caller's cached canonical fingerprint of `kg`
/// (so apply never pays an O(|KG|) hash); `multiset` is the matching
/// multiset fingerprint. Ops apply sequentially — a remove may retract a
/// triple added earlier in the same delta. Any failing op rejects the
/// whole delta and leaves `kg` untouched.
pub fn apply_delta(
    kg: &KnowledgeGraph,
    kg_fingerprint: u64,
    multiset: MultisetFingerprint,
    delta: &KgDelta,
) -> Result<DeltaApplication, DeltaError> {
    if delta.base_fingerprint != kg_fingerprint {
        return Err(DeltaError::BaseMismatch {
            expected: delta.base_fingerprint,
            actual: kg_fingerprint,
        });
    }

    let base_nodes = kg.num_nodes();
    let mut new = kg.clone();
    let mut ms = multiset;
    let mut added = Vec::new();
    let mut removed = Vec::new();

    // Live occurrence counts, built lazily on the first remove op: the
    // common add-only delta never pays the O(|T|) scan.
    let mut counts: Option<FxHashMap<Triple, u64>> = None;
    let mut to_remove: FxHashMap<Triple, u64> = FxHashMap::default();

    for op in &delta.ops {
        match op {
            DeltaOp::Add { s, s_class, p, o, o_class } => {
                let (nodes0, rels0, classes0) =
                    (new.num_nodes(), new.num_relations(), new.num_classes());
                let t = new.add_triple_terms(s, s_class, p, o, o_class);
                // Fold in any dictionary entries this op interned. Classes
                // are interned even when the vertex already existed (first
                // declaration wins for the vertex, but the term enters the
                // dictionary), which the canonical snapshot also records.
                for c in classes0..new.num_classes() {
                    ms.add(elem_hash(TAG_CLASS, &[new.class_term(crate::ids::Cid(c as u32))]));
                }
                for r in rels0..new.num_relations() {
                    ms.add(elem_hash(
                        TAG_RELATION,
                        &[new.relation_term(crate::ids::Rid(r as u32))],
                    ));
                }
                for v in nodes0..new.num_nodes() {
                    let v = Vid(v as u32);
                    let cls = new.class_term(new.class_of(v));
                    ms.add(elem_hash(TAG_NODE, &[new.node_term(v), cls]));
                }
                ms.add(triple_hash(&new, t));
                if let Some(c) = counts.as_mut() {
                    *c.entry(t).or_insert(0) += 1;
                }
                added.push(t);
            }
            DeltaOp::Remove { s, p, o } => {
                let sv = new
                    .find_node(s)
                    .ok_or_else(|| DeltaError::UnknownNode(s.clone()))?;
                let pr = new
                    .find_relation(p)
                    .ok_or_else(|| DeltaError::UnknownRelation(p.clone()))?;
                let ov = new
                    .find_node(o)
                    .ok_or_else(|| DeltaError::UnknownNode(o.clone()))?;
                let t = Triple::new(sv, pr, ov);
                let counts = counts.get_or_insert_with(|| {
                    let mut m: FxHashMap<Triple, u64> = FxHashMap::default();
                    for &t in new.triples() {
                        *m.entry(t).or_insert(0) += 1;
                    }
                    m
                });
                let live = counts.entry(t).or_insert(0);
                if *live == 0 {
                    return Err(DeltaError::MissingTriple {
                        s: s.clone(),
                        p: p.clone(),
                        o: o.clone(),
                    });
                }
                *live -= 1;
                ms.sub(triple_hash(&new, t));
                *to_remove.entry(t).or_insert(0) += 1;
                removed.push(t);
            }
        }
    }

    // Physically drop retracted occurrences in one retain pass. Which
    // occurrence of a duplicated triple goes is irrelevant: occurrences
    // are indistinguishable and the canonical snapshot sorts triples.
    if !to_remove.is_empty() {
        new.retain_triples(|t| match to_remove.get_mut(t) {
            Some(n) if *n > 0 => {
                *n -= 1;
                false
            }
            _ => true,
        });
    }

    let new_nodes = (base_nodes..new.num_nodes()).map(|v| Vid(v as u32)).collect();
    Ok(DeltaApplication { kg: new, multiset: ms, added, removed, new_nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;

    fn base() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("p1", "Paper", "cites", "p2", "Paper");
        kg.add_triple_terms("a1", "Author", "writes", "p1", "Paper");
        kg.add_triple_terms("p2", "Paper", "publishedIn", "v1", "Venue");
        kg
    }

    fn apply(kg: &KnowledgeGraph, ops: Vec<DeltaOp>) -> Result<DeltaApplication, DeltaError> {
        let delta = KgDelta { base_fingerprint: fingerprint(kg), ops };
        apply_delta(kg, fingerprint(kg), MultisetFingerprint::of(kg), &delta)
    }

    fn add(s: &str, sc: &str, p: &str, o: &str, oc: &str) -> DeltaOp {
        DeltaOp::Add {
            s: s.into(),
            s_class: sc.into(),
            p: p.into(),
            o: o.into(),
            o_class: oc.into(),
        }
    }

    fn remove(s: &str, p: &str, o: &str) -> DeltaOp {
        DeltaOp::Remove { s: s.into(), p: p.into(), o: o.into() }
    }

    #[test]
    fn codec_roundtrip() {
        let delta = KgDelta {
            base_fingerprint: 0xdead_beef_0123_4567,
            ops: vec![
                add("p3", "Paper", "cites", "p1", "Paper"),
                remove("a1", "writes", "p1"),
            ],
        };
        let mut buf = Vec::new();
        write_delta(&delta, &mut buf).unwrap();
        let back = read_delta(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn checksum_corruption_rejected() {
        let delta = KgDelta {
            base_fingerprint: 7,
            ops: vec![add("x", "T", "r", "y", "T")],
        };
        let mut buf = Vec::new();
        write_delta(&delta, &mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        assert!(read_delta(std::io::Cursor::new(&buf)).is_err());
    }

    #[test]
    fn apply_tracks_multiset_and_canonical_fingerprint() {
        let kg = base();
        let app = apply(
            &kg,
            vec![
                add("p3", "Paper", "cites", "p1", "Paper"),
                add("a1", "Author", "writes", "p3", "Paper"),
                remove("p1", "cites", "p2"),
            ],
        )
        .unwrap();
        assert_eq!(app.multiset, MultisetFingerprint::of(&app.kg));
        assert_eq!(app.added.len(), 2);
        assert_eq!(app.removed.len(), 1);
        assert_eq!(app.new_nodes.len(), 1, "only p3 is new");

        // Canonical fingerprint of the patched graph equals a graph built
        // from scratch with the same final content (same intern order).
        let mut rebuilt = base();
        rebuilt.add_triple_terms("p3", "Paper", "cites", "p1", "Paper");
        rebuilt.add_triple_terms("a1", "Author", "writes", "p3", "Paper");
        let gone = *rebuilt.triples().first().unwrap();
        let mut dropped = false;
        rebuilt.retain_triples(|t| {
            if !dropped && *t == gone {
                dropped = true;
                false
            } else {
                true
            }
        });
        assert_eq!(fingerprint(&app.kg), fingerprint(&rebuilt));
    }

    #[test]
    fn remove_takes_one_occurrence() {
        let mut kg = base();
        let t = kg.triples()[0];
        kg.add_triple(t.s, t.p, t.o); // duplicate p1-cites-p2
        let app = apply(&kg, vec![remove("p1", "cites", "p2")]).unwrap();
        assert_eq!(app.kg.num_triples(), kg.num_triples() - 1);
        assert_eq!(app.multiset, MultisetFingerprint::of(&app.kg));
        // The other occurrence survives.
        assert!(app.kg.triples().contains(&t));
    }

    #[test]
    fn remove_of_added_triple_in_same_delta() {
        let kg = base();
        let app = apply(
            &kg,
            vec![
                add("p9", "Paper", "cites", "p1", "Paper"),
                remove("p9", "cites", "p1"),
            ],
        )
        .unwrap();
        // Net triple count unchanged; the new vertex remains interned.
        assert_eq!(app.kg.num_triples(), kg.num_triples());
        assert!(app.kg.find_node("p9").is_some());
        assert_eq!(app.multiset, MultisetFingerprint::of(&app.kg));
    }

    #[test]
    fn rejections_are_total() {
        let kg = base();
        let before = fingerprint(&kg);
        assert!(matches!(
            apply(&kg, vec![remove("ghost", "cites", "p1")]),
            Err(DeltaError::UnknownNode(_))
        ));
        assert!(matches!(
            apply(&kg, vec![remove("p1", "ghostrel", "p2")]),
            Err(DeltaError::UnknownRelation(_))
        ));
        assert!(matches!(
            apply(&kg, vec![remove("p1", "writes", "p2")]),
            Err(DeltaError::MissingTriple { .. })
        ));
        // A failing op after a successful one still rejects everything.
        assert!(apply(
            &kg,
            vec![add("pX", "Paper", "cites", "p1", "Paper"), remove("p1", "cites", "v1")]
        )
        .is_err());
        assert_eq!(fingerprint(&kg), before, "input graph is never modified");
    }

    #[test]
    fn base_mismatch_rejected() {
        let kg = base();
        let delta = KgDelta { base_fingerprint: 1, ops: vec![] };
        assert!(matches!(
            apply_delta(&kg, fingerprint(&kg), MultisetFingerprint::of(&kg), &delta),
            Err(DeltaError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn first_class_declaration_wins_through_delta() {
        let kg = base();
        // p1 already has class Paper; the add's conflicting class only
        // interns the term, it does not re-type the vertex.
        let app = apply(&kg, vec![add("p1", "Imposter", "cites", "p2", "Paper")]).unwrap();
        let p1 = app.kg.find_node("p1").unwrap();
        assert_eq!(app.kg.class_term(app.kg.class_of(p1)), "Paper");
        assert!(app.kg.find_class("Imposter").is_some());
        assert_eq!(app.multiset, MultisetFingerprint::of(&app.kg));
    }
}
