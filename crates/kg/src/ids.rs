//! Strongly-typed integer identifiers for vertices, relations and classes.
//!
//! All graph algorithms in this workspace operate on dense `u32` identifiers
//! produced by the [`crate::dict::Dictionary`]. Newtype wrappers keep the
//! three id spaces (vertex / relation / class) from being mixed up at compile
//! time while compiling down to bare integers.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[repr(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the id as a `usize` for indexing.
            #[inline]
            pub const fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// A vertex (entity or literal) identifier.
    Vid
);
id_type!(
    /// A relation (predicate / edge type) identifier.
    Rid
);
id_type!(
    /// A class (node type) identifier.
    Cid
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let v = Vid::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.idx(), 42usize);
        assert_eq!(u32::from(v), 42);
        assert_eq!(Vid::from(42u32), v);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Rid::new(1) < Rid::new(2));
        assert_eq!(Cid::new(7), Cid::new(7));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", Vid::new(3)), "Vid(3)");
        assert_eq!(format!("{}", Cid::new(9)), "9");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Vid::default().raw(), 0);
    }
}
