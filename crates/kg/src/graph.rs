//! Compressed sparse-row (CSR) adjacency views over a knowledge graph.
//!
//! GNN training and sampling need constant-time neighbourhood access, which
//! the flat triple list cannot provide. [`HeteroGraph`] materializes:
//!
//! * per-relation forward and reverse CSR (for RGCN-style message passing,
//!   one adjacency per relation and direction),
//! * a merged directed CSR labelled with relation ids, and
//! * a merged **undirected** CSR used by random walks, PPR and BFS.
//!
//! All structures use `u32` vertex ids and boxed slices to minimize memory,
//! matching the "transformation to adjacency matrices" step in the paper's
//! Figure 4 pipeline.

use kgtosa_par::{Pool, SharedSliceMut};

use crate::ids::{Cid, Rid, Vid};
use crate::triples::{KnowledgeGraph, Triple};

/// Deterministic (possibly parallel) counting sort keyed by edge source.
///
/// Returns the CSR offsets and calls `write(slot, edge)` exactly once per
/// edge, with the slot the serial two-pass sort would assign: per-chunk
/// degree histograms plus an ordered cursor scan reproduce the serial
/// placement exactly, so payload arrays come out bit-identical at any
/// thread count. Slot arithmetic is integral — unlike the float kernels in
/// `kgtosa-tensor`, chunk boundaries here may follow the worker count
/// without breaking determinism.
fn par_counting_sort<E, S, W>(n: usize, edges: &[E], src: S, write: W) -> Box<[u32]>
where
    E: Copy + Sync,
    S: Fn(E) -> u32 + Sync,
    W: Fn(usize, E) + Sync,
{
    let m = edges.len();
    let pool = Pool::for_work(m);
    // The parallel passes cost O(workers · n) histogram memory and zeroing;
    // when vertices outnumber edges the serial sort is the cheaper plan.
    if pool.threads() <= 1 || n > m {
        let mut counts = vec![0u32; n + 1];
        for &e in edges {
            counts[src(e) as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone().into_boxed_slice();
        let mut cursor = counts;
        for &e in edges {
            let s = src(e) as usize;
            write(cursor[s] as usize, e);
            cursor[s] += 1;
        }
        return offsets;
    }
    let chunk = m.div_ceil(pool.threads());
    let ranges: Vec<std::ops::Range<usize>> = (0..m)
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(m))
        .collect();
    // Pass 1: per-chunk degree histograms.
    let mut histograms = pool.par_map_collect("kg.csr.count", &ranges, |_, r| {
        let mut h = vec![0u32; n];
        for &e in &edges[r.clone()] {
            h[src(e) as usize] += 1;
        }
        h
    });
    // Pass 2 (serial, O(workers · n)): global offset prefix sum, then each
    // histogram is rewritten into its chunk's start cursor per source —
    // `cursor[c][s] = offsets[s] + Σ_{c' < c} counts[c'][s]`.
    let mut offsets = vec![0u32; n + 1];
    for h in &histograms {
        for (s, &c) in h.iter().enumerate() {
            offsets[s + 1] += c;
        }
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut carry: Vec<u32> = offsets[..n].to_vec();
    for h in &mut histograms {
        for (s, slot) in h.iter_mut().enumerate() {
            let cnt = *slot;
            *slot = carry[s];
            carry[s] += cnt;
        }
    }
    // Pass 3: parallel fill. Slots never collide — each (chunk, source)
    // pair owns the half-open slot range computed in pass 2.
    let tasks: Vec<(std::ops::Range<usize>, std::sync::Mutex<Vec<u32>>)> = ranges
        .into_iter()
        .zip(histograms.into_iter().map(std::sync::Mutex::new))
        .collect();
    pool.par_map_collect("kg.csr.fill", &tasks, |_, (r, cursor)| {
        let mut cursor = cursor.lock().expect("chunk cursor poisoned");
        for &e in &edges[r.clone()] {
            let s = src(e) as usize;
            write(cursor[s] as usize, e);
            cursor[s] += 1;
        }
    });
    offsets.into_boxed_slice()
}

/// A compressed sparse-row adjacency structure.
///
/// `offsets` has `n + 1` entries; the neighbours of vertex `v` are
/// `targets[offsets[v] .. offsets[v + 1]]`.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Box<[u32]>,
    targets: Box<[u32]>,
}

impl Csr {
    /// Builds a CSR from `(src, dst)` pairs over `n` vertices using
    /// counting sort; `O(n + m)` time, no per-edge hashing.
    pub fn from_edges(n: usize, edges: impl Iterator<Item = (u32, u32)>) -> Self {
        let edges: Vec<(u32, u32)> = edges.collect();
        Self::from_edge_list(n, &edges)
    }

    /// Builds a CSR from an edge slice: a serial two-pass counting sort for
    /// small inputs, a three-pass chunked parallel sort for large ones.
    /// Both plans place every edge in the same slot, so the output is
    /// bit-identical regardless of thread count.
    pub fn from_edge_list(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut targets = vec![0u32; edges.len()].into_boxed_slice();
        let shared = SharedSliceMut::new(&mut targets);
        let offsets = par_counting_sort(n, edges, |(s, _)| s, |slot, (_, d)| {
            // SAFETY: counting-sort slots are disjoint across all edges.
            unsafe { shared.write(slot, d) }
        });
        Self { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of stored edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vid) -> usize {
        (self.offsets[v.idx() + 1] - self.offsets[v.idx()]) as usize
    }

    /// Neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vid) -> &[u32] {
        let lo = self.offsets[v.idx()] as usize;
        let hi = self.offsets[v.idx() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The half-open range into the edge arrays for `v` (used to pair
    /// neighbours with parallel per-edge attributes).
    #[inline]
    pub fn edge_range(&self, v: Vid) -> std::ops::Range<usize> {
        self.offsets[v.idx()] as usize..self.offsets[v.idx() + 1] as usize
    }

    /// Raw target array (parallel to per-edge attribute arrays).
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }
}

/// Forward (`out`) and reverse (`inc`) adjacency for one relation.
#[derive(Debug, Clone)]
pub struct RelAdj {
    /// `s -> o` edges of this relation.
    pub out: Csr,
    /// `o -> s` edges of this relation (reverse direction).
    pub inc: Csr,
}

/// A merged adjacency over all relations with per-edge relation labels.
#[derive(Debug, Clone, Default)]
pub struct LabeledCsr {
    csr: Csr,
    rels: Box<[u32]>,
}

impl LabeledCsr {
    fn from_edges(n: usize, edges: &[(u32, u32, u32)]) -> Self {
        // Counting sort keyed by source, carrying (target, rel).
        let mut targets = vec![0u32; edges.len()].into_boxed_slice();
        let mut rels = vec![0u32; edges.len()].into_boxed_slice();
        let shared_t = SharedSliceMut::new(&mut targets);
        let shared_r = SharedSliceMut::new(&mut rels);
        let offsets = par_counting_sort(n, edges, |(s, _, _)| s, |slot, (_, d, r)| {
            // SAFETY: counting-sort slots are disjoint across all edges.
            unsafe {
                shared_t.write(slot, d);
                shared_r.write(slot, r);
            }
        });
        Self {
            csr: Csr { offsets, targets },
            rels,
        }
    }

    /// Neighbour vertex ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vid) -> &[u32] {
        self.csr.neighbors(v)
    }

    /// Relation labels parallel to [`Self::neighbors`].
    #[inline]
    pub fn rels(&self, v: Vid) -> &[u32] {
        let range = self.csr.edge_range(v);
        &self.rels[range]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vid) -> usize {
        self.csr.degree(v)
    }

    /// Number of edges stored.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Underlying unlabeled CSR.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }
}

/// All adjacency views required for training and sampling.
#[derive(Debug, Clone)]
pub struct HeteroGraph {
    n: usize,
    node_class: Vec<Cid>,
    num_classes: usize,
    rels: Vec<RelAdj>,
    merged_out: LabeledCsr,
    undirected: LabeledCsr,
}

impl HeteroGraph {
    /// Builds every view from a knowledge graph. `O(|V| + |R|·|V| + |T|)`.
    pub fn build(kg: &KnowledgeGraph) -> Self {
        Self::from_triples(
            kg.num_nodes(),
            kg.num_relations(),
            kg.num_classes(),
            kg.node_classes().to_vec(),
            kg.triples(),
        )
    }

    /// Builds the views from raw parts (used by subgraph re-indexing, which
    /// already has remapped triples).
    pub fn from_triples(
        n: usize,
        num_relations: usize,
        num_classes: usize,
        node_class: Vec<Cid>,
        triples: &[Triple],
    ) -> Self {
        assert_eq!(node_class.len(), n, "one class per vertex required");
        // Partition edges by relation once, then build per-relation CSRs.
        let mut by_rel: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_relations];
        let mut merged: Vec<(u32, u32, u32)> = Vec::with_capacity(triples.len());
        let mut undirected: Vec<(u32, u32, u32)> = Vec::with_capacity(triples.len() * 2);
        for t in triples {
            by_rel[t.p.idx()].push((t.s.0, t.o.0));
            merged.push((t.s.0, t.o.0, t.p.0));
            undirected.push((t.s.0, t.o.0, t.p.0));
            undirected.push((t.o.0, t.s.0, t.p.0));
        }
        let rels = by_rel
            .into_iter()
            .map(|edges| RelAdj {
                out: Csr::from_edge_list(n, &edges),
                inc: Csr::from_edges(n, edges.iter().map(|&(s, o)| (o, s))),
            })
            .collect();
        Self {
            n,
            node_class,
            num_classes,
            rels,
            merged_out: LabeledCsr::from_edges(n, &merged),
            undirected: LabeledCsr::from_edges(n, &undirected),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of relations.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.rels.len()
    }

    /// Number of classes in the id space (including unused ids).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of directed edges (= triples).
    pub fn num_edges(&self) -> usize {
        self.merged_out.num_edges()
    }

    /// Class of a vertex.
    #[inline]
    pub fn class_of(&self, v: Vid) -> Cid {
        self.node_class[v.idx()]
    }

    /// All vertex classes.
    pub fn node_classes(&self) -> &[Cid] {
        &self.node_class
    }

    /// Per-relation adjacency.
    #[inline]
    pub fn relation(&self, r: Rid) -> &RelAdj {
        &self.rels[r.idx()]
    }

    /// Merged directed adjacency with relation labels.
    pub fn merged_out(&self) -> &LabeledCsr {
        &self.merged_out
    }

    /// Merged undirected adjacency with relation labels (each triple appears
    /// in both directions). Used by walks, PPR and distance computations.
    pub fn undirected(&self) -> &LabeledCsr {
        &self.undirected
    }

    /// Total degree (in + out) of a vertex.
    #[inline]
    pub fn total_degree(&self, v: Vid) -> usize {
        self.undirected.degree(v)
    }

    /// Approximate heap bytes of all adjacency arrays, reported as the
    /// "adjacency matrix" footprint in experiments.
    pub fn heap_bytes(&self) -> usize {
        let csr_bytes = |c: &Csr| (c.offsets.len() + c.targets.len()) * 4;
        let labeled = |l: &LabeledCsr| csr_bytes(&l.csr) + l.rels.len() * 4;
        self.rels
            .iter()
            .map(|r| csr_bytes(&r.out) + csr_bytes(&r.inc))
            .sum::<usize>()
            + labeled(&self.merged_out)
            + labeled(&self.undirected)
            + self.node_class.len() * std::mem::size_of::<Cid>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        // a -w-> p1, a -w-> p2, p1 -in-> v, p2 -in-> v
        kg.add_triple_terms("a", "Author", "writes", "p1", "Paper");
        kg.add_triple_terms("a", "Author", "writes", "p2", "Paper");
        kg.add_triple_terms("p1", "Paper", "publishedIn", "v", "Venue");
        kg.add_triple_terms("p2", "Paper", "publishedIn", "v", "Venue");
        kg
    }

    #[test]
    fn csr_from_edges_counts_degrees() {
        let edges = [(0u32, 1u32), (0, 2), (2, 1)];
        let csr = Csr::from_edges(3, edges.iter().copied());
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.degree(Vid(0)), 2);
        assert_eq!(csr.degree(Vid(1)), 0);
        let mut n0 = csr.neighbors(Vid(0)).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn per_relation_views_split_edges() {
        let kg = sample_kg();
        let g = HeteroGraph::build(&kg);
        let writes = kg.find_relation("writes").unwrap();
        let pub_in = kg.find_relation("publishedIn").unwrap();
        let a = kg.find_node("a").unwrap();
        let v = kg.find_node("v").unwrap();
        assert_eq!(g.relation(writes).out.degree(a), 2);
        assert_eq!(g.relation(writes).inc.degree(a), 0);
        assert_eq!(g.relation(pub_in).inc.degree(v), 2);
    }

    #[test]
    fn undirected_doubles_edges() {
        let kg = sample_kg();
        let g = HeteroGraph::build(&kg);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.undirected().num_edges(), 8);
        let v = kg.find_node("v").unwrap();
        assert_eq!(g.total_degree(v), 2);
    }

    #[test]
    fn labels_align_with_neighbors() {
        let kg = sample_kg();
        let g = HeteroGraph::build(&kg);
        let a = kg.find_node("a").unwrap();
        let writes = kg.find_relation("writes").unwrap();
        let nbrs = g.merged_out().neighbors(a);
        let rels = g.merged_out().rels(a);
        assert_eq!(nbrs.len(), 2);
        assert!(rels.iter().all(|&r| r == writes.0));
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let mut kg = sample_kg();
        let lonely = kg.add_node("lonely", "Author");
        let g = HeteroGraph::build(&kg);
        assert_eq!(g.total_degree(lonely), 0);
    }

    #[test]
    fn degree_sum_equals_edge_count() {
        let kg = sample_kg();
        let g = HeteroGraph::build(&kg);
        let sum: usize = (0..g.num_nodes())
            .map(|i| g.merged_out().degree(Vid(i as u32)))
            .sum();
        assert_eq!(sum, g.num_edges());
    }
}
