//! Stable content fingerprints of a [`KnowledgeGraph`].
//!
//! The fingerprint is the FNV-1a 64-bit hash of the graph's canonical
//! snapshot byte stream (see [`crate::snapshot`]): dictionaries in id
//! order plus subject-sorted triples. Because the snapshot layout is
//! deterministic, two graphs with the same dictionaries and triple
//! multiset always hash equal — regardless of insertion order of
//! triples — and the hash can be folded incrementally while a snapshot
//! is being written or read, so obtaining it alongside normal snapshot
//! I/O costs nothing beyond the hash arithmetic itself.
//!
//! The extraction cache (`kgtosa-cache`) keys artifacts on this value.

use std::io::{self, Read, Write};

use crate::triples::KnowledgeGraph;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher over a byte stream.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Folds every byte written through it into an [`Fnv64`] before
/// forwarding to the inner writer.
pub struct HashingWriter<W> {
    inner: W,
    hash: Fnv64,
}

impl<W: Write> HashingWriter<W> {
    pub fn new(inner: W) -> Self {
        HashingWriter { inner, hash: Fnv64::new() }
    }

    pub fn finish(&self) -> u64 {
        self.hash.finish()
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Folds every byte read through it into an [`Fnv64`].
pub struct HashingReader<R> {
    inner: R,
    hash: Fnv64,
}

impl<R: Read> HashingReader<R> {
    pub fn new(inner: R) -> Self {
        HashingReader { inner, hash: Fnv64::new() }
    }

    pub fn finish(&self) -> u64 {
        self.hash.finish()
    }

    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
}

/// The content fingerprint of `kg`: FNV-1a over its canonical snapshot
/// bytes, produced by streaming the snapshot into a hash-only sink (no
/// buffer is materialized).
pub fn fingerprint(kg: &KnowledgeGraph) -> u64 {
    // write_snapshot only fails on I/O errors; io::sink() has none.
    crate::snapshot::write_snapshot_fingerprinted(kg, io::sink())
        .expect("hashing into a sink cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = KnowledgeGraph::new();
        a.add_triple_terms("x", "T", "r", "y", "T");
        a.add_triple_terms("x", "T", "r", "z", "T");
        let mut b = KnowledgeGraph::new();
        // Same dictionaries and triple multiset, triples added reversed.
        b.add_node("x", "T");
        b.add_node("y", "T");
        b.add_node("z", "T");
        b.add_triple_terms("x", "T", "r", "z", "T");
        b.add_triple_terms("x", "T", "r", "y", "T");
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn content_changes_change_fingerprint() {
        let mut a = KnowledgeGraph::new();
        a.add_triple_terms("x", "T", "r", "y", "T");
        let base = fingerprint(&a);
        let mut b = KnowledgeGraph::new();
        b.add_triple_terms("x", "T", "r", "y", "U");
        assert_ne!(base, fingerprint(&b), "object class should matter");
        let mut c = KnowledgeGraph::new();
        c.add_triple_terms("x", "T", "r2", "y", "T");
        assert_ne!(base, fingerprint(&c), "relation term should matter");
    }

    #[test]
    fn write_and_read_agree_with_direct_fingerprint() {
        let mut kg = KnowledgeGraph::new();
        for i in 0..40 {
            kg.add_triple_terms(
                &format!("n{i}"),
                "Paper",
                "cites",
                &format!("n{}", i / 3),
                "Paper",
            );
        }
        let direct = fingerprint(&kg);
        let mut buf = Vec::new();
        let written = crate::snapshot::write_snapshot_fingerprinted(&kg, &mut buf).unwrap();
        let (back, read) =
            crate::snapshot::read_snapshot_fingerprinted(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(direct, written);
        assert_eq!(direct, read);
        assert_eq!(direct, fingerprint(&back));
        assert_eq!(fnv64(&buf), direct);
    }
}
