//! Robustness fuzzing: the SPARQL lexer/parser and the N-Triples reader
//! must never panic on arbitrary input — they return `Err` instead.

use proptest::prelude::*;

use kgtosa_rdf::{parse, read_ntriples};
use std::io::Cursor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes-as-strings never panic the SPARQL parser.
    #[test]
    fn sparql_parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    /// Strings built from SPARQL-ish fragments never panic either (these
    /// get deeper into the parser than pure noise).
    #[test]
    fn sparql_fragments_never_panic(parts in proptest::collection::vec(
        proptest::sample::select(vec![
            "SELECT", "DISTINCT", "WHERE", "UNION", "LIMIT", "OFFSET",
            "{", "}", "(", ")", ".", "*", "?x", "?y", "<iri>", "a",
            "\"lit\"", "10", "COUNT", "AS", "PREFIX", "p:", "p:x",
        ]), 0..25))
    {
        let joined = parts.join(" ");
        let _ = parse(&joined);
    }

    /// Arbitrary text never panics the N-Triples reader.
    #[test]
    fn ntriples_reader_never_panics(input in "\\PC{0,300}") {
        let _ = read_ntriples(Cursor::new(input));
    }

    /// N-Triples-ish fragments never panic.
    #[test]
    fn ntriples_fragments_never_panic(parts in proptest::collection::vec(
        proptest::sample::select(vec![
            "<a>", "<b>", "<rdf:type>", "_:b0", "\"x\"", "\"esc\\\"d\"",
            "\"x\"@en", "\"1\"^^<int>", ".", "# comment",
        ]), 0..12))
    {
        let line = parts.join(" ");
        let _ = read_ntriples(Cursor::new(line));
    }

    /// Valid round-trips: any query our AST can print must reparse to the
    /// same AST (generation via fragments that happen to parse).
    #[test]
    fn parsed_queries_roundtrip_display(parts in proptest::collection::vec(
        proptest::sample::select(vec![
            "?s ?p ?o .", "?s a <C> .", "{ ?a <r> ?b } UNION { ?b <r> ?a }",
            "?x <k> \"v\" .",
        ]), 1..5), distinct in any::<bool>(), limit in proptest::option::of(0usize..100))
    {
        let mut q = String::from("SELECT ");
        if distinct { q.push_str("DISTINCT "); }
        q.push_str("* WHERE { ");
        for p in &parts { q.push_str(p); q.push(' '); }
        q.push('}');
        if let Some(l) = limit { q.push_str(&format!(" LIMIT {l}")); }
        let ast = parse(&q).expect("constructed query must parse");
        let reparsed = parse(&ast.to_string()).expect("display must reparse");
        prop_assert_eq!(ast, reparsed);
    }
}
