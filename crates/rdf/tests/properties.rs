//! Property-based tests: the hexastore and executor must agree with naive
//! reference implementations on arbitrary inputs.

use proptest::prelude::*;

use kgtosa_kg::KnowledgeGraph;
use kgtosa_rdf::{
    fetch_triples, parse, FetchConfig, Hexastore, InProcessEndpoint, RdfStore, SparqlEngine,
};

fn arb_triples() -> impl Strategy<Value = Vec<[u32; 3]>> {
    proptest::collection::vec((0u32..12, 0u32..4, 0u32..12), 0..80)
        .prop_map(|v| v.into_iter().map(|(s, p, o)| [s, p, o]).collect())
}

fn arb_kg() -> impl Strategy<Value = KnowledgeGraph> {
    arb_triples().prop_map(|ts| {
        let mut kg = KnowledgeGraph::new();
        for v in 0..12u32 {
            kg.add_node(&format!("n{v}"), &format!("C{}", v % 3));
        }
        for r in 0..4u32 {
            kg.add_relation(&format!("r{r}"));
        }
        for [s, p, o] in ts {
            let s = kg.find_node(&format!("n{s}")).unwrap();
            let o = kg.find_node(&format!("n{o}")).unwrap();
            let p = kg.find_relation(&format!("r{p}")).unwrap();
            kg.add_triple(s, p, o);
        }
        kg
    })
}

/// Reference scan: filter the raw list.
fn naive_scan(
    triples: &[[u32; 3]],
    s: Option<u32>,
    p: Option<u32>,
    o: Option<u32>,
) -> Vec<[u32; 3]> {
    let mut out: Vec<[u32; 3]> = triples
        .iter()
        .copied()
        .filter(|t| {
            s.is_none_or(|v| v == t[0]) && p.is_none_or(|v| v == t[1]) && o.is_none_or(|v| v == t[2])
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    /// Every bound-component combination returns exactly the naive filter's
    /// triple set, regardless of which of the six orderings serves it.
    #[test]
    fn hexastore_agrees_with_naive(triples in arb_triples(),
                                   s in proptest::option::of(0u32..13),
                                   p in proptest::option::of(0u32..5),
                                   o in proptest::option::of(0u32..13)) {
        let hex = Hexastore::build(&triples);
        let mut got: Vec<[u32; 3]> = hex.scan(s, p, o).collect();
        got.sort_unstable();
        prop_assert_eq!(got, naive_scan(&triples, s, p, o));
        prop_assert_eq!(hex.count(s, p, o), naive_scan(&triples, s, p, o).len());
    }

    /// A two-pattern join matches a brute-force double loop.
    #[test]
    fn join_agrees_with_bruteforce(kg in arb_kg()) {
        let store = RdfStore::new(&kg);
        let engine = SparqlEngine::new(&store);
        let rs = engine
            .execute_str("SELECT ?a ?b ?c WHERE { ?a <r0> ?b . ?b <r1> ?c }")
            .unwrap();
        // Brute force over data triples.
        let r0 = kg.find_relation("r0").unwrap();
        let r1 = kg.find_relation("r1").unwrap();
        let mut expect = Vec::new();
        for t1 in kg.triples().iter().filter(|t| t.p == r0) {
            for t2 in kg.triples().iter().filter(|t| t.p == r1) {
                if t1.o == t2.s {
                    expect.push(vec![t1.s.raw(), t1.o.raw(), t2.o.raw()]);
                }
            }
        }
        expect.sort();
        expect.dedup();
        let mut got: Vec<Vec<u32>> = rs.rows().map(|r| r.to_vec()).collect();
        got.sort();
        got.dedup();
        // Executor output is a bag; compare distinct solutions.
        prop_assert_eq!(got, expect);
    }

    /// Paginating a query in any batch size reassembles the full result.
    #[test]
    fn pagination_is_complete(kg in arb_kg(), batch in 1usize..17) {
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s a <C0> }").unwrap();
        let paged = fetch_triples(
            &ep, &store, std::slice::from_ref(&q), ("s", "p", "o"),
            &FetchConfig { batch_size: batch, threads: 2, ..FetchConfig::default() },
        ).unwrap();
        let full = fetch_triples(
            &ep, &store, &[q], ("s", "p", "o"),
            &FetchConfig { batch_size: 1_000_000, threads: 1, ..FetchConfig::default() },
        ).unwrap();
        prop_assert_eq!(paged, full);
    }

    /// DISTINCT never returns duplicates and preserves the solution set.
    #[test]
    fn distinct_is_set_semantics(kg in arb_kg()) {
        let store = RdfStore::new(&kg);
        let engine = SparqlEngine::new(&store);
        let bag = engine.execute_str("SELECT ?s ?o WHERE { ?s ?p ?o }").unwrap();
        let set = engine.execute_str("SELECT DISTINCT ?s ?o WHERE { ?s ?p ?o }").unwrap();
        let mut bag_rows: Vec<Vec<u32>> = bag.rows().map(|r| r.to_vec()).collect();
        bag_rows.sort();
        bag_rows.dedup();
        let set_rows: Vec<Vec<u32>> = set.rows().map(|r| r.to_vec()).collect();
        let mut sorted_set = set_rows.clone();
        sorted_set.sort();
        sorted_set.dedup();
        prop_assert_eq!(sorted_set.len(), set_rows.len(), "DISTINCT returned duplicates");
        prop_assert_eq!(sorted_set, bag_rows);
    }

    /// COUNT equals the materialized row count.
    #[test]
    fn count_matches_materialization(kg in arb_kg()) {
        let store = RdfStore::new(&kg);
        let engine = SparqlEngine::new(&store);
        let rows = engine.execute_str("SELECT ?s ?o WHERE { ?s <r2> ?o }").unwrap();
        let count = engine
            .execute_str("SELECT (COUNT(*) AS ?c) WHERE { ?s <r2> ?o }")
            .unwrap();
        prop_assert_eq!(count.row(0)[0] as usize, rows.len());
    }
}
