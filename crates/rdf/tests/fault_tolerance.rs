//! Fault-injection properties: the retry layer must make transient
//! endpoint failures *invisible* — the fetched triple set is bit-identical
//! to a fault-free fetch, at any page size and at 1 and 4 request-handler
//! threads alike.

use proptest::prelude::*;

use kgtosa_kg::{KnowledgeGraph, Triple};
use kgtosa_rdf::{
    fetch_triples, parse, FaultPlan, FetchConfig, InProcessEndpoint, RdfStore, RetryPolicy,
};

fn arb_kg() -> impl Strategy<Value = KnowledgeGraph> {
    proptest::collection::vec((0u32..12, 0u32..4, 0u32..12), 0..80).prop_map(|ts| {
        let mut kg = KnowledgeGraph::new();
        for v in 0..12u32 {
            kg.add_node(&format!("n{v}"), &format!("C{}", v % 3));
        }
        for r in 0..4u32 {
            kg.add_relation(&format!("r{r}"));
        }
        for (s, p, o) in ts {
            let s = kg.find_node(&format!("n{s}")).unwrap();
            let o = kg.find_node(&format!("n{o}")).unwrap();
            let p = kg.find_relation(&format!("r{p}")).unwrap();
            kg.add_triple(s, p, o);
        }
        kg
    })
}

/// Paginated fetch of the whole store under `cfg`.
fn fetch_all(store: &RdfStore<'_>, cfg: &FetchConfig) -> Vec<Triple> {
    let q = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }").expect("query parses");
    let endpoint = InProcessEndpoint::new(store);
    fetch_triples(&endpoint, store, &[q], ("s", "p", "o"), cfg).expect("fetch succeeds")
}

fn cfg(batch: usize, threads: usize) -> FetchConfig {
    FetchConfig { batch_size: batch, threads, ..Default::default() }
}

/// A heavy but survivable fault regime: most requests fail, bursts stay
/// strictly below the retry budget, and backoffs are microsecond-scale so
/// the property stays fast.
fn chaotic(batch: usize, threads: usize, seed: u64) -> FetchConfig {
    FetchConfig {
        fault: Some(FaultPlan {
            seed,
            fault_rate: 0.7,
            max_burst: 3,
            ..Default::default()
        }),
        retry: Some(RetryPolicy {
            max_attempts: 5,
            base_backoff_us: 1,
            max_backoff_us: 8,
            jitter_seed: seed,
            ..Default::default()
        }),
        ..cfg(batch, threads)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Faulty-but-retried fetches return exactly the fault-free result,
    /// and the result is independent of the thread count — the acceptance
    /// property of the fault-tolerance layer.
    #[test]
    fn transient_faults_below_the_retry_budget_are_invisible(
        kg in arb_kg(),
        seed in 0u64..1000,
        batch in 1usize..9,
    ) {
        let store = RdfStore::new(&kg);
        let clean = fetch_all(&store, &cfg(batch, 1));
        prop_assert_eq!(&clean, &fetch_all(&store, &cfg(batch, 4)));
        prop_assert_eq!(&clean, &fetch_all(&store, &chaotic(batch, 1, seed)));
        prop_assert_eq!(&clean, &fetch_all(&store, &chaotic(batch, 4, seed)));
    }
}
