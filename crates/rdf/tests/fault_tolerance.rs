//! Fault-injection properties: the retry layer must make transient
//! endpoint failures *invisible* — the fetched triple set is bit-identical
//! to a fault-free fetch, at any page size and at 1 and 4 request-handler
//! threads alike.

use proptest::prelude::*;
use std::sync::atomic::Ordering;

use kgtosa_kg::{KnowledgeGraph, Triple};
use kgtosa_rdf::{
    fetch_triples, parse, FaultPlan, FetchConfig, InProcessEndpoint, PageCache, RdfStore,
    RetryPolicy,
};

fn arb_kg() -> impl Strategy<Value = KnowledgeGraph> {
    proptest::collection::vec((0u32..12, 0u32..4, 0u32..12), 0..80).prop_map(|ts| {
        let mut kg = KnowledgeGraph::new();
        for v in 0..12u32 {
            kg.add_node(&format!("n{v}"), &format!("C{}", v % 3));
        }
        for r in 0..4u32 {
            kg.add_relation(&format!("r{r}"));
        }
        for (s, p, o) in ts {
            let s = kg.find_node(&format!("n{s}")).unwrap();
            let o = kg.find_node(&format!("n{o}")).unwrap();
            let p = kg.find_relation(&format!("r{p}")).unwrap();
            kg.add_triple(s, p, o);
        }
        kg
    })
}

/// Paginated fetch of the whole store under `cfg`.
fn fetch_all(store: &RdfStore<'_>, cfg: &FetchConfig) -> Vec<Triple> {
    let q = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }").expect("query parses");
    let endpoint = InProcessEndpoint::new(store);
    fetch_triples(&endpoint, store, &[q], ("s", "p", "o"), cfg).expect("fetch succeeds")
}

fn cfg(batch: usize, threads: usize) -> FetchConfig {
    FetchConfig { batch_size: batch, threads, ..Default::default() }
}

/// A heavy but survivable fault regime: most requests fail, bursts stay
/// strictly below the retry budget, and backoffs are microsecond-scale so
/// the property stays fast.
fn chaotic(batch: usize, threads: usize, seed: u64) -> FetchConfig {
    FetchConfig {
        fault: Some(FaultPlan {
            seed,
            fault_rate: 0.7,
            max_burst: 3,
            ..Default::default()
        }),
        retry: Some(RetryPolicy {
            max_attempts: 5,
            base_backoff_us: 1,
            max_backoff_us: 8,
            jitter_seed: seed,
            ..Default::default()
        }),
        ..cfg(batch, threads)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Faulty-but-retried fetches return exactly the fault-free result,
    /// and the result is independent of the thread count — the acceptance
    /// property of the fault-tolerance layer.
    #[test]
    fn transient_faults_below_the_retry_budget_are_invisible(
        kg in arb_kg(),
        seed in 0u64..1000,
        batch in 1usize..9,
    ) {
        let store = RdfStore::new(&kg);
        let clean = fetch_all(&store, &cfg(batch, 1));
        prop_assert_eq!(&clean, &fetch_all(&store, &cfg(batch, 4)));
        prop_assert_eq!(&clean, &fetch_all(&store, &chaotic(batch, 1, seed)));
        prop_assert_eq!(&clean, &fetch_all(&store, &chaotic(batch, 4, seed)));
    }

    /// Retry/page-cache interaction: because the cache wraps *outside*
    /// the retry layer, a transiently failing page that takes several
    /// attempts still produces exactly one cache insertion — retries are
    /// never double-counted as hits, and a warm re-fetch serves every
    /// page from memory without touching the endpoint at all.
    #[test]
    fn retried_fetches_fill_the_page_cache_exactly_once(
        kg in arb_kg(),
        seed in 0u64..1000,
        batch in 1usize..9,
        threads in proptest::sample::select(vec![1usize, 4]),
    ) {
        let store = RdfStore::new(&kg);
        let clean = fetch_all(&store, &cfg(batch, 1));

        let cache = PageCache::new();
        let cached_cfg = FetchConfig {
            page_cache: Some(cache.clone()),
            ..chaotic(batch, threads, seed)
        };
        let q = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }").expect("query parses");
        let endpoint = InProcessEndpoint::new(&store);
        let cold = fetch_triples(&endpoint, &store, std::slice::from_ref(&q), ("s", "p", "o"), &cached_cfg)
            .expect("cold fetch succeeds");
        prop_assert_eq!(&cold, &clean);

        // Every page was a miss and was inserted exactly once, no matter
        // how many transient faults the retry layer absorbed underneath.
        let stats = cache.stats();
        let cold_misses = stats.misses.load(Ordering::Relaxed);
        let cold_inserts = stats.insertions.load(Ordering::Relaxed);
        prop_assert_eq!(stats.hits.load(Ordering::Relaxed), 0);
        prop_assert_eq!(cold_inserts, cold_misses);
        prop_assert_eq!(cold_inserts, cache.len() as u64, "one entry per distinct page");
        let cold_requests = endpoint.stats().requests();
        prop_assert!(cold_requests >= cold_inserts as usize,
            "retries only add requests, never extra insertions");

        // Warm re-fetch: all hits, zero new endpoint requests, zero new
        // insertions, same bytes out.
        let warm = fetch_triples(&endpoint, &store, &[q], ("s", "p", "o"), &cached_cfg)
            .expect("warm fetch succeeds");
        prop_assert_eq!(&warm, &clean);
        prop_assert_eq!(endpoint.stats().requests(), cold_requests,
            "warm fetch must not reach the endpoint");
        prop_assert_eq!(stats.insertions.load(Ordering::Relaxed), cold_inserts);
        prop_assert_eq!(stats.hits.load(Ordering::Relaxed), cold_misses);
    }
}
