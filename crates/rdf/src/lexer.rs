//! Tokenizer for the SPARQL subset.

use crate::error::RdfError;

/// A lexical token with its source position (byte offset) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Keywords are case-insensitive; stored uppercased.
    Keyword(Keyword),
    /// `?name`
    Var(String),
    /// `<iri>` content without the angle brackets.
    Iri(String),
    /// `prefix:local` (unexpanded; the parser applies PREFIX declarations).
    PName(String),
    /// `"string"` content without the quotes.
    Literal(String),
    /// The `a` shorthand for `rdf:type`.
    A,
    /// An unsigned integer.
    Number(usize),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=`
    Neq,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    Distinct,
    Where,
    Union,
    Limit,
    Offset,
    Prefix,
    Count,
    As,
    Filter,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        match s.to_ascii_uppercase().as_str() {
            "SELECT" => Some(Keyword::Select),
            "DISTINCT" => Some(Keyword::Distinct),
            "WHERE" => Some(Keyword::Where),
            "UNION" => Some(Keyword::Union),
            "LIMIT" => Some(Keyword::Limit),
            "OFFSET" => Some(Keyword::Offset),
            "PREFIX" => Some(Keyword::Prefix),
            "COUNT" => Some(Keyword::Count),
            "AS" => Some(Keyword::As),
            "FILTER" => Some(Keyword::Filter),
            _ => None,
        }
    }
}

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, RdfError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(RdfError::parse(i, "expected '=' after '!'"));
                }
            }
            '<' => {
                let end = input[i + 1..]
                    .find('>')
                    .ok_or_else(|| RdfError::parse(i, "unterminated IRI"))?;
                tokens.push(Token::Iri(input[i + 1..i + 1 + end].to_string()));
                i += end + 2;
            }
            '"' => {
                let end = input[i + 1..]
                    .find('"')
                    .ok_or_else(|| RdfError::parse(i, "unterminated string literal"))?;
                tokens.push(Token::Literal(input[i + 1..i + 1 + end].to_string()));
                i += end + 2;
            }
            '?' | '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_name_char(bytes[j]) {
                    j += 1;
                }
                if j == start {
                    return Err(RdfError::parse(i, "empty variable name"));
                }
                tokens.push(Token::Var(input[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let n: usize = input[start..j]
                    .parse()
                    .map_err(|_| RdfError::parse(start, "integer out of range"))?;
                tokens.push(Token::Number(n));
                i = j;
            }
            c if is_name_start(c as u8) => {
                let start = i;
                let mut j = i;
                let mut has_colon = false;
                while j < bytes.len() && (is_name_char(bytes[j]) || bytes[j] == b':') {
                    has_colon |= bytes[j] == b':';
                    j += 1;
                }
                let word = &input[start..j];
                if word == "a" {
                    tokens.push(Token::A);
                } else if has_colon {
                    tokens.push(Token::PName(word.to_string()));
                } else if let Some(kw) = Keyword::from_str(word) {
                    tokens.push(Token::Keyword(kw));
                } else {
                    // Bare names act as prefixed names with empty prefix,
                    // matching the exact-term dictionaries used here.
                    tokens.push(Token::PName(word.to_string()));
                }
                i = j;
            }
            other => {
                return Err(RdfError::parse(i, format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(tokens)
}

#[inline]
fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

#[inline]
fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'/' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select_query() {
        let toks = tokenize("SELECT ?s WHERE { ?s a <Paper> . } LIMIT 5").unwrap();
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(toks[1], Token::Var("s".into()));
        assert!(toks.contains(&Token::A));
        assert!(toks.contains(&Token::Iri("Paper".into())));
        assert_eq!(*toks.last().unwrap(), Token::Number(5));
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select Distinct WHERE union").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Distinct),
                Token::Keyword(Keyword::Where),
                Token::Keyword(Keyword::Union),
            ]
        );
    }

    #[test]
    fn pname_and_bare_names() {
        let toks = tokenize("mag:paper/1 venue1").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::PName("mag:paper/1".into()),
                Token::PName("venue1".into())
            ]
        );
    }

    #[test]
    fn string_literal() {
        let toks = tokenize("\"hello world\"").unwrap();
        assert_eq!(toks, vec![Token::Literal("hello world".into())]);
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("?x # a comment\n ?y").unwrap();
        assert_eq!(toks, vec![Token::Var("x".into()), Token::Var("y".into())]);
    }

    #[test]
    fn errors_on_unterminated_iri() {
        assert!(tokenize("<oops").is_err());
    }

    #[test]
    fn errors_on_stray_char() {
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn count_tokens() {
        let toks = tokenize("(COUNT(*) AS ?count)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Keyword(Keyword::Count),
                Token::LParen,
                Token::Star,
                Token::RParen,
                Token::Keyword(Keyword::As),
                Token::Var("count".into()),
                Token::RParen,
            ]
        );
    }
}
