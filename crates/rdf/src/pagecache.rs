//! In-memory LRU cache of rendered-subquery page results.
//!
//! One `compare` run executes the *same* paginated subqueries several
//! times — once for the full graph and once per TOSG pattern that shares
//! BGP groups — and every retry-of-a-failed-run repeats pages that
//! already succeeded. The [`PageCache`] short-circuits those repeats in
//! memory, keyed by the rendered query text (which pins the subquery,
//! its projection, and its `LIMIT`/`OFFSET` page).
//!
//! Composition order matters and is load-bearing for correctness of the
//! accounting: [`CachingEndpoint`] must wrap **outside**
//! [`crate::retry::RetryingEndpoint`] (see `fetch_triples_robust`), so a
//! page that needed three transient retries still performs exactly one
//! cache fill — the cache sees only the final successful result, and a
//! cache hit performs zero retries. Errors are never cached.
//!
//! The cache is an explicit per-dataset handle, not a process global: a
//! rendered query is only unambiguous relative to one store's contents,
//! so sharing a cache across different graphs would serve stale pages.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::ast::Query;
use crate::error::RdfError;
use crate::endpoint::SparqlEndpoint;
use crate::exec::ResultSet;

/// Default byte budget: enough for every page of the bundled benchmark
/// graphs while staying far below training's own working set.
pub const DEFAULT_PAGE_CACHE_BYTES: usize = 64 << 20;

/// Per-instance accounting, race-free under concurrent fetch workers
/// and independent of the process-global obs registry (which is also
/// fed, for traces).
#[derive(Debug, Default)]
pub struct PageCacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub insertions: AtomicU64,
    pub evictions: AtomicU64,
}

struct Entry {
    page: ResultSet,
    bytes: usize,
    /// Monotonic access stamp; smallest = least recently used.
    stamp: u64,
}

struct Lru {
    map: HashMap<String, Entry>,
    bytes: usize,
    clock: u64,
}

/// A bounded, thread-safe LRU of query-text → result-set pages.
#[derive(Clone)]
pub struct PageCache {
    inner: Arc<Mutex<Lru>>,
    budget: usize,
    stats: Arc<PageCacheStats>,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let lru = self.lock();
        f.debug_struct("PageCache")
            .field("entries", &lru.map.len())
            .field("bytes", &lru.bytes)
            .field("budget", &self.budget)
            .finish()
    }
}

impl PageCache {
    /// A cache with the default byte budget.
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_PAGE_CACHE_BYTES)
    }

    /// A cache evicting least-recently-used pages past `budget` bytes.
    pub fn with_budget(budget: usize) -> Self {
        PageCache {
            inner: Arc::new(Mutex::new(Lru { map: HashMap::new(), bytes: 0, clock: 0 })),
            budget,
            stats: Arc::new(PageCacheStats::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lru> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn stats(&self) -> &PageCacheStats {
        &self.stats
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current byte footprint.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Looks up a rendered query, refreshing its LRU stamp on a hit.
    pub fn get(&self, key: &str) -> Option<ResultSet> {
        let mut lru = self.lock();
        lru.clock += 1;
        let clock = lru.clock;
        match lru.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = clock;
                let page = entry.page.clone();
                drop(lru);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                kgtosa_obs::counter("rdf.pagecache.hits").inc();
                Some(page)
            }
            None => {
                drop(lru);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                kgtosa_obs::counter("rdf.pagecache.misses").inc();
                None
            }
        }
    }

    /// Drops every cached page. Used when the underlying store's contents
    /// change (e.g. a KG delta lands): rendered query text no longer
    /// identifies the same result, so the whole cache is stale at once.
    pub fn clear(&self) {
        let mut lru = self.lock();
        lru.map.clear();
        lru.bytes = 0;
    }

    /// Inserts a page, evicting LRU entries to stay within budget. A
    /// page larger than the whole budget is not cached at all (caching
    /// it would evict everything else only to be evicted next).
    pub fn put(&self, key: String, page: ResultSet) {
        let bytes = page.approx_bytes() + key.len();
        if bytes > self.budget {
            return;
        }
        let mut lru = self.lock();
        lru.clock += 1;
        let stamp = lru.clock;
        if let Some(old) = lru.map.insert(key, Entry { page, bytes, stamp }) {
            lru.bytes -= old.bytes;
        }
        lru.bytes += bytes;
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0u64;
        while lru.bytes > self.budget {
            let Some(oldest) = lru
                .map
                .iter()
                .min_by_key(|(k, e)| (e.stamp, k.as_str().to_owned()))
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = lru.map.remove(&oldest) {
                lru.bytes -= e.bytes;
                evicted += 1;
            }
        }
        drop(lru);
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            kgtosa_obs::counter("rdf.pagecache.evictions").add(evicted);
        }
    }
}

impl Default for PageCache {
    fn default() -> Self {
        Self::new()
    }
}

/// An endpoint that serves repeated queries from a [`PageCache`].
pub struct CachingEndpoint<E> {
    inner: E,
    cache: PageCache,
}

impl<E: SparqlEndpoint> CachingEndpoint<E> {
    pub fn new(inner: E, cache: PageCache) -> Self {
        CachingEndpoint { inner, cache }
    }

    pub fn cache(&self) -> &PageCache {
        &self.cache
    }
}

impl<E: SparqlEndpoint> SparqlEndpoint for CachingEndpoint<E> {
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError> {
        let key = query.to_string();
        if let Some(page) = self.cache.get(&key) {
            return Ok(page);
        }
        // Miss: one inner select — behind this call the retry layer may
        // attempt several times, but only the final success is inserted,
        // exactly once.
        let page = self.inner.select(query)?;
        self.cache.put(key, page.clone());
        Ok(page)
    }
    // `count` intentionally uses the trait default, which routes the
    // rewritten COUNT query through `select` — so counts cache too.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::InProcessEndpoint;
    use crate::parser::parse;
    use crate::store::RdfStore;
    use kgtosa_kg::KnowledgeGraph;

    fn kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..12 {
            kg.add_triple_terms(&format!("a{i}"), "Author", "writes", &format!("p{}", i % 5), "Paper");
        }
        kg
    }

    #[test]
    fn second_select_is_served_from_cache() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let cache = PageCache::new();
        let caching = CachingEndpoint::new(&ep, cache.clone());
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        let first = caching.select(&q).unwrap();
        let second = caching.select(&q).unwrap();
        assert_eq!(first, second);
        assert_eq!(ep.stats().requests(), 1, "second select must not reach the store");
        assert_eq!(cache.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().insertions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn different_pages_are_distinct_keys() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let caching = CachingEndpoint::new(&ep, PageCache::new());
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        let p0 = caching.select(&q.with_page(4, 0)).unwrap();
        let p1 = caching.select(&q.with_page(4, 4)).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(ep.stats().requests(), 2);
    }

    #[test]
    fn count_is_cached_via_select_default() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let caching = CachingEndpoint::new(&ep, PageCache::new());
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        assert_eq!(caching.count(&q).unwrap(), 12);
        assert_eq!(caching.count(&q).unwrap(), 12);
        assert_eq!(ep.stats().requests(), 1);
    }

    #[test]
    fn errors_are_never_cached() {
        struct Flaky {
            calls: AtomicU64,
        }
        impl SparqlEndpoint for Flaky {
            fn select(&self, _q: &Query) -> Result<ResultSet, RdfError> {
                if self.calls.fetch_add(1, Ordering::Relaxed) == 0 {
                    Err(RdfError::exec("transient"))
                } else {
                    Ok(ResultSet::with_vars(vec!["s".into()]))
                }
            }
        }
        let flaky = Flaky { calls: AtomicU64::new(0) };
        let cache = PageCache::new();
        let caching = CachingEndpoint::new(&flaky, cache.clone());
        let q = parse("SELECT ?s WHERE { ?s <w> ?o }").unwrap();
        assert!(caching.select(&q).is_err());
        assert_eq!(cache.len(), 0, "an error must leave no cache entry");
        assert!(caching.select(&q).is_ok());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        let one_page = ep.select(&q.with_page(4, 0)).unwrap().approx_bytes();
        // Budget for roughly two pages (plus key overhead slack).
        let cache = PageCache::with_budget(2 * one_page + 160);
        let caching = CachingEndpoint::new(&ep, cache.clone());
        caching.select(&q.with_page(4, 0)).unwrap();
        caching.select(&q.with_page(4, 4)).unwrap();
        // Touch page 0 so page 4 is the LRU victim.
        caching.select(&q.with_page(4, 0)).unwrap();
        caching.select(&q.with_page(4, 8)).unwrap();
        assert!(cache.stats().evictions.load(Ordering::Relaxed) >= 1);
        assert!(cache.bytes() <= 2 * one_page + 160);
        let before = ep.stats().requests();
        caching.select(&q.with_page(4, 0)).unwrap();
        assert_eq!(ep.stats().requests(), before, "MRU page survived eviction");
    }

    #[test]
    fn clear_empties_the_cache_and_later_selects_refill() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let cache = PageCache::new();
        let caching = CachingEndpoint::new(&ep, cache.clone());
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        caching.select(&q).unwrap();
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        caching.select(&q).unwrap();
        assert_eq!(ep.stats().requests(), 2, "post-clear select must refill");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn oversized_page_is_not_cached() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let cache = PageCache::with_budget(8);
        let caching = CachingEndpoint::new(&ep, cache.clone());
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        caching.select(&q).unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
    }
}
