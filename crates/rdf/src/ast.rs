//! Abstract syntax tree for the SPARQL subset.
//!
//! The subset is exactly what KG-TOSA's BGP compiler (§IV-C) emits:
//! `SELECT (DISTINCT)? (*| ?vars | COUNT) WHERE { patterns, nested
//! `{...} UNION {...}` blocks } (LIMIT n)? (OFFSET n)?` with `PREFIX`
//! declarations, IRIs, prefixed names, the `a` keyword and string literals.

use std::fmt;

/// A subject/predicate/object position in a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A variable, stored without the leading `?`.
    Var(String),
    /// A constant term (IRI, prefixed name or literal), stored as the exact
    /// dictionary string it must match.
    Const(String),
}

impl Term {
    /// Returns the variable name when this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{v}"),
            Term::Const(c) => write!(f, "<{c}>"),
        }
    }
}

/// One triple pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject term.
    pub s: Term,
    /// Predicate term.
    pub p: Term,
    /// Object term.
    pub o: Term,
}

impl TriplePattern {
    /// Convenience constructor.
    pub fn new(s: Term, p: Term, o: Term) -> Self {
        Self { s, p, o }
    }

    /// Iterates the three terms.
    pub fn terms(&self) -> [&Term; 3] {
        [&self.s, &self.p, &self.o]
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// A `FILTER` comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
}

/// A `FILTER (left op right)` constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left operand.
    pub left: Term,
    /// Operator.
    pub op: CompareOp,
    /// Right operand.
    pub right: Term,
}

/// An element of a group graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Element {
    /// A triple pattern joined with the rest of the group.
    Pattern(TriplePattern),
    /// A union of alternative groups, joined with the rest of the group.
    Union(Vec<Group>),
    /// A `FILTER` constraint over the group's solutions.
    Filter(Constraint),
}

/// A group graph pattern: the conjunction of its elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Group {
    /// Elements joined together (order is irrelevant semantically; the
    /// planner reorders patterns).
    pub elements: Vec<Element>,
}

impl Group {
    /// A group holding only triple patterns.
    pub fn of_patterns(patterns: Vec<TriplePattern>) -> Self {
        Self {
            elements: patterns.into_iter().map(Element::Pattern).collect(),
        }
    }

    /// Collects every variable mentioned anywhere in the group, in first-
    /// appearance order.
    pub fn variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        for el in &self.elements {
            match el {
                Element::Pattern(tp) => {
                    for term in tp.terms() {
                        if let Term::Var(v) = term {
                            if !out.iter().any(|x| x == v) {
                                out.push(v.clone());
                            }
                        }
                    }
                }
                Element::Union(branches) => {
                    for b in branches {
                        b.collect_vars(out);
                    }
                }
                Element::Filter(c) => {
                    for term in [&c.left, &c.right] {
                        if let Term::Var(v) = term {
                            if !out.iter().any(|x| x == v) {
                                out.push(v.clone());
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The projection clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// `SELECT *` — every variable in the pattern.
    All,
    /// `SELECT ?a ?b …`
    Vars(Vec<String>),
    /// `SELECT (COUNT(*) AS ?count)` — a single row with the match count.
    Count,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Projection.
    pub select: Selection,
    /// Whether `DISTINCT` was requested.
    pub distinct: bool,
    /// The `WHERE` group.
    pub group: Group,
    /// Optional `LIMIT`.
    pub limit: Option<usize>,
    /// Optional `OFFSET`.
    pub offset: Option<usize>,
}

impl Query {
    /// The variables this query projects, in order.
    pub fn projected_vars(&self) -> Vec<String> {
        match &self.select {
            Selection::All => self.group.variables(),
            Selection::Vars(vs) => vs.clone(),
            Selection::Count => vec!["count".to_string()],
        }
    }

    /// Returns a copy with different pagination — the primitive behind
    /// Algorithm 3's per-subquery `LIMIT`/`OFFSET` pagination loop.
    pub fn with_page(&self, limit: usize, offset: usize) -> Query {
        let mut q = self.clone();
        q.limit = Some(limit);
        q.offset = Some(offset);
        q
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.select {
            Selection::All => write!(f, "*")?,
            Selection::Vars(vs) => {
                let names: Vec<String> = vs.iter().map(|v| format!("?{v}")).collect();
                write!(f, "{}", names.join(" "))?;
            }
            Selection::Count => write!(f, "(COUNT(*) AS ?count)")?,
        }
        write!(f, " WHERE {{ ")?;
        fmt_group(&self.group, f)?;
        write!(f, "}}")?;
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

fn fmt_group(g: &Group, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for el in &g.elements {
        match el {
            Element::Pattern(tp) => write!(f, "{tp} ")?,
            Element::Union(branches) => {
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, "UNION ")?;
                    }
                    write!(f, "{{ ")?;
                    fmt_group(b, f)?;
                    write!(f, "}} ")?;
                }
            }
            Element::Filter(c) => {
                let op = match c.op {
                    CompareOp::Eq => "=",
                    CompareOp::Neq => "!=",
                };
                write!(f, "FILTER ({} {} {}) ", c.left, op, c.right)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: &str) -> Term {
        Term::Var(v.into())
    }
    fn c(s: &str) -> Term {
        Term::Const(s.into())
    }

    #[test]
    fn variables_in_order_without_dupes() {
        let g = Group::of_patterns(vec![
            TriplePattern::new(var("s"), c("a"), c("Paper")),
            TriplePattern::new(var("s"), var("p"), var("o")),
        ]);
        assert_eq!(g.variables(), vec!["s", "p", "o"]);
    }

    #[test]
    fn union_variables_collected() {
        let g = Group {
            elements: vec![Element::Union(vec![
                Group::of_patterns(vec![TriplePattern::new(var("a"), c("r"), var("b"))]),
                Group::of_patterns(vec![TriplePattern::new(var("c"), c("r"), var("a"))]),
            ])],
        };
        assert_eq!(g.variables(), vec!["a", "b", "c"]);
    }

    #[test]
    fn display_roundtrippable_shape() {
        let q = Query {
            select: Selection::Vars(vec!["s".into(), "o".into()]),
            distinct: true,
            group: Group::of_patterns(vec![TriplePattern::new(var("s"), c("writes"), var("o"))]),
            limit: Some(10),
            offset: Some(20),
        };
        let s = q.to_string();
        assert!(s.contains("SELECT DISTINCT ?s ?o"));
        assert!(s.contains("<writes>"));
        assert!(s.contains("LIMIT 10"));
        assert!(s.contains("OFFSET 20"));
    }

    #[test]
    fn with_page_overrides() {
        let q = Query {
            select: Selection::All,
            distinct: false,
            group: Group::default(),
            limit: None,
            offset: None,
        };
        let p = q.with_page(100, 300);
        assert_eq!(p.limit, Some(100));
        assert_eq!(p.offset, Some(300));
    }

    #[test]
    fn projected_vars_for_count() {
        let q = Query {
            select: Selection::Count,
            distinct: false,
            group: Group::default(),
            limit: None,
            offset: None,
        };
        assert_eq!(q.projected_vars(), vec!["count"]);
    }
}
