//! Retry/backoff layer over [`SparqlEndpoint`].
//!
//! Algorithm 3's request handlers fire thousands of paginated requests at
//! the RDF engine; in a live deployment any of them can fail transiently.
//! [`RetryingEndpoint`] makes that loop survivable: transient errors (as
//! classified by [`RdfError::is_transient`]) are retried with exponential
//! backoff and *seeded* jitter — deterministic per request, so chaos runs
//! reproduce — while fatal errors (parse/exec) propagate immediately.
//! Every retry bumps the `rdf.retries` counter and emits an `rdf.retry`
//! event into the kgtosa-obs trace; exhausting the policy bumps
//! `rdf.giveups`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::ast::Query;
use crate::endpoint::SparqlEndpoint;
use crate::error::RdfError;
use crate::exec::ResultSet;
use crate::fault::{mix64, request_key, unit_frac};

/// When to stop retrying and how long to wait in between.
///
/// Parsed from a `--retry` string of comma-separated `key=value` pairs,
/// e.g. `attempts=6,base-us=200,max-us=20000,seed=7`:
///
/// | key                   | meaning                                      | default |
/// |-----------------------|----------------------------------------------|---------|
/// | `attempts`            | total attempts per request (first + retries) | 5       |
/// | `base-us`             | backoff before the first retry (µs)          | 200     |
/// | `max-us`              | backoff cap (µs)                             | 20000   |
/// | `seed`                | jitter seed                                  | 7       |
/// | `request-deadline-ms` | wall-clock budget per request incl. retries  | none    |
/// | `fetch-deadline-ms`   | wall-clock budget for the whole endpoint     | none    |
///
/// The defaults are sized for the in-process engine used in tests; a real
/// HTTP deployment would use millisecond-scale backoffs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request (the first send counts as attempt 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_backoff_us: u64,
    /// Upper bound on a single backoff, in microseconds.
    pub max_backoff_us: u64,
    /// Seed of the deterministic jitter.
    pub jitter_seed: u64,
    /// Wall-clock budget for one request including its retries.
    pub request_deadline: Option<Duration>,
    /// Wall-clock budget for the whole fetch (endpoint lifetime).
    pub fetch_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff_us: 200,
            max_backoff_us: 20_000,
            jitter_seed: 7,
            request_deadline: None,
            fetch_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// Parses a `--retry` string; see the type docs for the grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut policy = RetryPolicy::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("retry entry {pair:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let int = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("retry {key}={value:?}: expected an integer"))
            };
            match key {
                "attempts" => policy.max_attempts = int(value)? as u32,
                "base-us" => policy.base_backoff_us = int(value)?,
                "max-us" => policy.max_backoff_us = int(value)?,
                "seed" => policy.jitter_seed = int(value)?,
                "request-deadline-ms" => {
                    policy.request_deadline = Some(Duration::from_millis(int(value)?))
                }
                "fetch-deadline-ms" => {
                    policy.fetch_deadline = Some(Duration::from_millis(int(value)?))
                }
                other => return Err(format!("unknown retry key {other:?}")),
            }
        }
        if policy.max_attempts == 0 {
            return Err("retry attempts must be >= 1".into());
        }
        Ok(policy)
    }

    /// Derives a policy whose request and fetch deadlines are capped at
    /// `budget` (an existing tighter deadline wins). The serving layer
    /// uses this to propagate a request's *remaining* wall-clock budget
    /// into every endpoint round-trip it triggers, so a doomed request
    /// stops retrying instead of timing out at the socket.
    pub fn capped_to_budget(&self, budget: Duration) -> Self {
        let cap = |d: Option<Duration>| Some(d.map_or(budget, |d| d.min(budget)));
        Self {
            request_deadline: cap(self.request_deadline),
            fetch_deadline: cap(self.fetch_deadline),
            ..self.clone()
        }
    }

    /// Backoff before retry number `retry` (1-based) of the request
    /// identified by `key`: exponential growth capped at `max_backoff_us`,
    /// scaled into `[1/2, 1)` of the nominal delay by seeded jitter so
    /// concurrent handlers don't stampede in lockstep — yet every run with
    /// the same seed waits exactly as long.
    pub fn backoff(&self, key: u64, retry: u32) -> Duration {
        let exp = self
            .base_backoff_us
            .saturating_mul(1u64 << (retry - 1).min(20))
            .min(self.max_backoff_us);
        let jitter = unit_frac(mix64(self.jitter_seed ^ key ^ retry as u64));
        Duration::from_micros(exp / 2 + (exp as f64 / 2.0 * jitter) as u64)
    }
}

/// A [`SparqlEndpoint`] wrapper retrying transient failures per
/// [`RetryPolicy`], with obs counters and retry events.
pub struct RetryingEndpoint<E> {
    inner: E,
    policy: RetryPolicy,
    started: Instant,
    retries: AtomicU64,
    giveups: AtomicU64,
}

impl<E: SparqlEndpoint> RetryingEndpoint<E> {
    /// Wraps an endpoint. The whole-fetch deadline clock starts here.
    pub fn new(inner: E, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            started: Instant::now(),
            retries: AtomicU64::new(0),
            giveups: AtomicU64::new(0),
        }
    }

    /// Retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Requests abandoned after exhausting the policy.
    pub fn giveups(&self) -> u64 {
        self.giveups.load(Ordering::Relaxed)
    }

    fn fetch_deadline_exceeded(&self) -> bool {
        self.policy
            .fetch_deadline
            .is_some_and(|d| self.started.elapsed() >= d)
    }

    fn give_up(&self, key: u64, attempt: u32, why: &str, err: RdfError) -> RdfError {
        self.giveups.fetch_add(1, Ordering::Relaxed);
        kgtosa_obs::counter("rdf.giveups").inc();
        if kgtosa_obs::telemetry_active() {
            kgtosa_obs::emit_event(
                "rdf.giveup",
                vec![
                    ("request".into(), kgtosa_obs::Json::Str(format!("{key:016x}"))),
                    ("attempts".into(), kgtosa_obs::Json::Num(attempt as f64)),
                    ("why".into(), kgtosa_obs::Json::Str(why.into())),
                ],
            );
        }
        let msg = format!("gave up after {attempt} attempts ({why}): {err}");
        // The give-up is final: neither variant is transient, so no outer
        // layer retries a request this policy already abandoned. Deadline
        // give-ups keep their classification so the serving layer can
        // answer with a budget-exhausted status instead of a plain error.
        if why.contains("deadline") {
            RdfError::deadline(msg)
        } else {
            RdfError::exec(msg)
        }
    }
}

impl<E: SparqlEndpoint> SparqlEndpoint for RetryingEndpoint<E> {
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError> {
        let key = request_key(query);
        let request_start = Instant::now();
        let mut attempt = 1u32;
        loop {
            let err = match self.inner.select(query) {
                Ok(rs) => return Ok(rs),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => e,
            };
            if attempt >= self.policy.max_attempts {
                return Err(self.give_up(key, attempt, "attempts exhausted", err));
            }
            if self.fetch_deadline_exceeded() {
                return Err(self.give_up(key, attempt, "fetch deadline exceeded", err));
            }
            if self
                .policy
                .request_deadline
                .is_some_and(|d| request_start.elapsed() >= d)
            {
                return Err(self.give_up(key, attempt, "request deadline exceeded", err));
            }
            let backoff = self.policy.backoff(key, attempt);
            // A backoff that would sleep past the remaining budget cannot
            // lead to a successful retry — the next attempt would start
            // already expired. Give up now instead of burning a worker on
            // a sleep whose outcome is predetermined.
            if self
                .policy
                .request_deadline
                .is_some_and(|d| request_start.elapsed() + backoff >= d)
            {
                return Err(self.give_up(
                    key,
                    attempt,
                    "request deadline precludes next backoff",
                    err,
                ));
            }
            if self
                .policy
                .fetch_deadline
                .is_some_and(|d| self.started.elapsed() + backoff >= d)
            {
                return Err(self.give_up(
                    key,
                    attempt,
                    "fetch deadline precludes next backoff",
                    err,
                ));
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            kgtosa_obs::counter("rdf.retries").inc();
            if kgtosa_obs::telemetry_active() {
                kgtosa_obs::emit_event(
                    "rdf.retry",
                    vec![
                        ("request".into(), kgtosa_obs::Json::Str(format!("{key:016x}"))),
                        ("attempt".into(), kgtosa_obs::Json::Num(attempt as f64)),
                        (
                            "backoff_us".into(),
                            kgtosa_obs::Json::Num(backoff.as_micros() as f64),
                        ),
                        ("error".into(), kgtosa_obs::Json::Str(err.to_string())),
                    ],
                );
            }
            std::thread::sleep(backoff);
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyEndpoint};
    use crate::parser::parse;
    use crate::store::RdfStore;
    use crate::InProcessEndpoint;
    use kgtosa_kg::KnowledgeGraph;

    fn kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..6 {
            kg.add_triple_terms(&format!("a{i}"), "Author", "writes", "p0", "Paper");
        }
        kg
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            base_backoff_us: 1,
            max_backoff_us: 10,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn parse_spec() {
        let p = RetryPolicy::parse("attempts=7,base-us=50,max-us=500,request-deadline-ms=9")
            .unwrap();
        assert_eq!(p.max_attempts, 7);
        assert_eq!(p.base_backoff_us, 50);
        assert_eq!(p.max_backoff_us, 500);
        assert_eq!(p.request_deadline, Some(Duration::from_millis(9)));
        assert!(RetryPolicy::parse("attempts=0").is_err());
        assert!(RetryPolicy::parse("bogus=1").is_err());
    }

    #[test]
    fn backoff_grows_capped_and_deterministic() {
        let p = RetryPolicy {
            base_backoff_us: 100,
            max_backoff_us: 1_000,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff(42, 1);
        let b4 = p.backoff(42, 4);
        assert!(b1 >= Duration::from_micros(50) && b1 < Duration::from_micros(100));
        // Nominal delay at retry 4 is 800µs (capped at 1000); jitter keeps
        // it in [nominal/2, nominal).
        assert!(b4 >= Duration::from_micros(400) && b4 < Duration::from_micros(800));
        assert_eq!(p.backoff(42, 3), p.backoff(42, 3), "jitter must be seeded");
    }

    #[test]
    fn retries_through_transient_faults() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let plan = FaultPlan {
            fault_rate: 1.0,
            max_burst: 3,
            ..FaultPlan::default()
        };
        let retrying = RetryingEndpoint::new(FaultyEndpoint::new(&ep, plan), fast_policy());
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        let rs = retrying.select(&q).unwrap();
        assert_eq!(rs.len(), 6);
        assert!(retrying.retries() >= 1 && retrying.retries() <= 3);
        assert_eq!(retrying.giveups(), 0);
    }

    #[test]
    fn gives_up_when_attempts_exhausted() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let plan = FaultPlan {
            fault_rate: 1.0,
            max_burst: 10,
            ..FaultPlan::default()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            ..fast_policy()
        };
        let retrying = RetryingEndpoint::new(FaultyEndpoint::new(&ep, plan), policy);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        let err = retrying.select(&q).unwrap_err();
        assert!(!err.is_transient(), "give-up must not invite outer retries");
        assert!(err.to_string().contains("gave up after 3 attempts"));
        assert_eq!(retrying.retries(), 2);
        assert_eq!(retrying.giveups(), 1);
    }

    #[test]
    fn backoff_longer_than_remaining_budget_gives_up_immediately() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let plan = FaultPlan {
            fault_rate: 1.0,
            max_burst: 10,
            ..FaultPlan::default()
        };
        // The next backoff (~0.25-0.5s) dwarfs the 50ms budget: the layer
        // must give up *now* with a deadline classification instead of
        // sleeping past the deadline and failing at the next attempt.
        let policy = RetryPolicy {
            base_backoff_us: 500_000,
            max_backoff_us: 500_000,
            request_deadline: Some(Duration::from_millis(50)),
            ..RetryPolicy::default()
        };
        let retrying = RetryingEndpoint::new(FaultyEndpoint::new(&ep, plan), policy);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        let start = Instant::now();
        let err = retrying.select(&q).unwrap_err();
        assert!(err.is_deadline(), "expected deadline classification: {err}");
        assert!(!err.is_transient());
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "gave up after {:?} — it slept through the doomed backoff",
            start.elapsed()
        );
        assert_eq!(retrying.retries(), 0, "no retry can fit in the budget");
        assert_eq!(retrying.giveups(), 1);
    }

    #[test]
    fn capped_to_budget_tightens_never_loosens() {
        let p = RetryPolicy {
            request_deadline: Some(Duration::from_millis(5)),
            fetch_deadline: None,
            ..RetryPolicy::default()
        };
        let capped = p.capped_to_budget(Duration::from_millis(100));
        assert_eq!(capped.request_deadline, Some(Duration::from_millis(5)));
        assert_eq!(capped.fetch_deadline, Some(Duration::from_millis(100)));
        let tighter = p.capped_to_budget(Duration::from_millis(2));
        assert_eq!(tighter.request_deadline, Some(Duration::from_millis(2)));
    }

    #[test]
    fn fatal_errors_pass_straight_through() {
        struct FatalEndpoint;
        impl SparqlEndpoint for FatalEndpoint {
            fn select(&self, _q: &Query) -> Result<ResultSet, RdfError> {
                Err(RdfError::exec("boom"))
            }
        }
        let retrying = RetryingEndpoint::new(FatalEndpoint, fast_policy());
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        let err = retrying.select(&q).unwrap_err();
        assert_eq!(err, RdfError::exec("boom"));
        assert_eq!(retrying.retries(), 0);
        assert_eq!(retrying.giveups(), 0);
    }
}
