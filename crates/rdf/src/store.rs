//! Term encoding and the triple store facade over a [`KnowledgeGraph`].
//!
//! The RDF view of a knowledge graph needs one addition over the raw triple
//! list: *type assertions*. Class membership is stored out-of-band in
//! [`KnowledgeGraph`] but SPARQL queries anchor target vertices with
//! `?v rdf:type <Class>` patterns, so the store materializes one synthetic
//! `rdf:type` triple per vertex.
//!
//! ## Id spaces
//!
//! * subject/object position: vertex ids `0..N`, then classes encoded as
//!   `N + cid` (classes appear as objects of `rdf:type`),
//! * predicate position: relation ids `0..R`, then `R` = `rdf:type`.

use kgtosa_kg::{Cid, KnowledgeGraph, Rid, Triple, Vid};

use crate::hexastore::Hexastore;

/// The reserved predicate term recognized as `rdf:type` (also `a` in
/// queries).
pub const RDF_TYPE: &str = "rdf:type";

/// A decoded subject/object term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTerm {
    /// A graph vertex.
    Node(Vid),
    /// A class constant (object of `rdf:type`).
    Class(Cid),
}

/// An immutable, six-way-indexed RDF store over a knowledge graph.
pub struct RdfStore<'kg> {
    kg: &'kg KnowledgeGraph,
    hex: Hexastore,
    num_nodes: u32,
    num_relations: u32,
}

impl<'kg> RdfStore<'kg> {
    /// Builds the store: copies all data triples, adds `rdf:type`
    /// assertions, and constructs the six orderings.
    pub fn new(kg: &'kg KnowledgeGraph) -> Self {
        let num_nodes = kg.num_nodes() as u32;
        let num_relations = kg.num_relations() as u32;
        let type_rel = num_relations;
        let mut raw: Vec<[u32; 3]> = Vec::with_capacity(kg.num_triples() + kg.num_nodes());
        for t in kg.triples() {
            raw.push(t.raw());
        }
        for v in 0..num_nodes {
            let class = kg.class_of(Vid(v));
            raw.push([v, type_rel, num_nodes + class.raw()]);
        }
        Self {
            kg,
            hex: Hexastore::build(&raw),
            num_nodes,
            num_relations,
        }
    }

    /// The underlying knowledge graph.
    pub fn kg(&self) -> &'kg KnowledgeGraph {
        self.kg
    }

    /// The sextuple index.
    pub fn hexastore(&self) -> &Hexastore {
        &self.hex
    }

    /// Encoded id of the synthetic `rdf:type` predicate.
    #[inline]
    pub fn rdf_type_id(&self) -> u32 {
        self.num_relations
    }

    /// Encodes a vertex for subject/object position.
    #[inline]
    pub fn encode_node(&self, v: Vid) -> u32 {
        v.raw()
    }

    /// Encodes a class constant for object position.
    #[inline]
    pub fn encode_class(&self, c: Cid) -> u32 {
        self.num_nodes + c.raw()
    }

    /// Decodes a subject/object id.
    #[inline]
    pub fn decode_node(&self, id: u32) -> NodeTerm {
        if id < self.num_nodes {
            NodeTerm::Node(Vid(id))
        } else {
            NodeTerm::Class(Cid(id - self.num_nodes))
        }
    }

    /// Resolves a term string in subject/object position. Vertices shadow
    /// classes on name collision (unlikely: different namespaces).
    pub fn resolve_node_term(&self, term: &str) -> Option<u32> {
        if let Some(v) = self.kg.find_node(term) {
            return Some(self.encode_node(v));
        }
        self.kg.find_class(term).map(|c| self.encode_class(c))
    }

    /// Resolves a term string in predicate position. `rdf:type` and `a`
    /// resolve to the synthetic type predicate.
    pub fn resolve_pred_term(&self, term: &str) -> Option<u32> {
        if term == RDF_TYPE || term == "a" {
            return Some(self.rdf_type_id());
        }
        self.kg.find_relation(term).map(Rid::raw)
    }

    /// Renders a subject/object id back to its term string.
    pub fn node_term_str(&self, id: u32) -> &str {
        match self.decode_node(id) {
            NodeTerm::Node(v) => self.kg.node_term(v),
            NodeTerm::Class(c) => self.kg.class_term(c),
        }
    }

    /// Renders a predicate id back to its term string.
    pub fn pred_term_str(&self, id: u32) -> &str {
        if id == self.rdf_type_id() {
            RDF_TYPE
        } else {
            self.kg.relation_term(Rid(id))
        }
    }

    /// Converts an encoded `(s, p, o)` row back into a *data* triple,
    /// returning `None` for synthetic `rdf:type` rows — extraction keeps
    /// only real KG edges; typing is reattached by the subgraph compactor.
    pub fn to_data_triple(&self, s: u32, p: u32, o: u32) -> Option<Triple> {
        if p >= self.num_relations || s >= self.num_nodes || o >= self.num_nodes {
            return None;
        }
        Some(Triple::new(Vid(s), Rid(p), Vid(o)))
    }

    /// Total triples indexed (data + type assertions).
    pub fn len(&self) -> usize {
        self.hex.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.hex.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("p1", "Paper", "publishedIn", "v1", "Venue");
        kg.add_triple_terms("a1", "Author", "writes", "p1", "Paper");
        kg
    }

    #[test]
    fn type_triples_materialized() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        // 2 data triples + 3 type assertions.
        assert_eq!(store.len(), 5);
        let paper = kg.find_class("Paper").unwrap();
        let matches: Vec<_> = store
            .hexastore()
            .scan(None, Some(store.rdf_type_id()), Some(store.encode_class(paper)))
            .collect();
        assert_eq!(matches.len(), 1);
        assert_eq!(store.node_term_str(matches[0][0]), "p1");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let v = kg.find_node("a1").unwrap();
        assert_eq!(store.decode_node(store.encode_node(v)), NodeTerm::Node(v));
        let c = kg.find_class("Venue").unwrap();
        assert_eq!(store.decode_node(store.encode_class(c)), NodeTerm::Class(c));
    }

    #[test]
    fn resolve_terms() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        assert!(store.resolve_node_term("p1").is_some());
        assert!(store.resolve_node_term("Paper").is_some());
        assert_eq!(store.resolve_node_term("missing"), None);
        assert_eq!(store.resolve_pred_term("a"), Some(store.rdf_type_id()));
        assert_eq!(store.resolve_pred_term(RDF_TYPE), Some(store.rdf_type_id()));
        assert!(store.resolve_pred_term("writes").is_some());
    }

    #[test]
    fn data_triple_filtering() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let t = kg.triples()[0];
        assert_eq!(
            store.to_data_triple(t.s.raw(), t.p.raw(), t.o.raw()),
            Some(t)
        );
        // A type row decodes to None.
        let paper = kg.find_class("Paper").unwrap();
        assert_eq!(
            store.to_data_triple(0, store.rdf_type_id(), store.encode_class(paper)),
            None
        );
    }

    #[test]
    fn term_strings_roundtrip() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let id = store.resolve_node_term("v1").unwrap();
        assert_eq!(store.node_term_str(id), "v1");
        assert_eq!(store.pred_term_str(store.rdf_type_id()), RDF_TYPE);
    }
}
