//! N-Triples import/export.
//!
//! The paper's pipeline starts from RDF dumps (MAG, DBLP, YAGO are
//! published as N-Triples) loaded into an RDF engine. This module provides
//! the same ingestion path: a line-oriented N-Triples reader/writer over
//! [`KnowledgeGraph`], including the `rdf:type` convention used to carry
//! node classes.
//!
//! Supported term forms: `<iri>`, `_:blank`, and `"literal"` (with
//! `\"`/`\\`/`\n`/`\t` escapes); language tags and datatype suffixes are
//! accepted and preserved as part of the literal text.

use std::io::{BufRead, Write};

use kgtosa_kg::KnowledgeGraph;

use crate::error::RdfError;
use crate::store::RDF_TYPE;

/// The full IRI commonly used for `rdf:type`; recognized on input in
/// addition to the short form.
pub const RDF_TYPE_IRI: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Default class assigned to subjects that carry no `rdf:type` assertion.
pub const UNTYPED_CLASS: &str = "__untyped__";

/// Reads an N-Triples document into a [`KnowledgeGraph`].
///
/// `rdf:type` statements set the subject's class (first assertion wins, as
/// in [`KnowledgeGraph::add_node`]); all other statements become data
/// triples. Objects that are literals become literal vertices.
pub fn read_ntriples(reader: impl BufRead) -> Result<KnowledgeGraph, RdfError> {
    let mut kg = KnowledgeGraph::new();
    let mut pending: Vec<(String, String, Term)> = Vec::new();
    let mut types: Vec<(String, String)> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| RdfError::exec(format!("I/O error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line(trimmed)
            .map_err(|msg| RdfError::parse(lineno, format!("line {}: {msg}", lineno + 1)))?;
        let p_text = match p {
            Term::Iri(i) => i,
            other => {
                return Err(RdfError::parse(
                    lineno,
                    format!("line {}: predicate must be an IRI, found {other:?}", lineno + 1),
                ))
            }
        };
        let s_text = match s {
            Term::Iri(i) | Term::Blank(i) => i,
            Term::Literal(_) => {
                return Err(RdfError::parse(
                    lineno,
                    format!("line {}: subject cannot be a literal", lineno + 1),
                ))
            }
        };
        if p_text == RDF_TYPE || p_text == RDF_TYPE_IRI {
            if let Term::Iri(class) = o {
                types.push((s_text, class));
                continue;
            }
            return Err(RdfError::parse(
                lineno,
                format!("line {}: rdf:type object must be an IRI", lineno + 1),
            ));
        }
        pending.push((s_text, p_text, o));
    }

    // Two passes: type assertions first so classes are right when data
    // triples intern their endpoints.
    for (s, class) in &types {
        kg.add_node(s, class);
    }
    for (s, p, o) in pending {
        let s = kg.add_node(&s, UNTYPED_CLASS);
        let p = kg.add_relation(&p);
        let o = match o {
            Term::Iri(i) | Term::Blank(i) => kg.add_node(&i, UNTYPED_CLASS),
            Term::Literal(l) => kg.add_literal(&l),
        };
        kg.add_triple(s, p, o);
    }
    Ok(kg)
}

/// Writes a [`KnowledgeGraph`] as N-Triples: one `rdf:type` statement per
/// vertex (skipping the untyped placeholder) followed by all data triples.
pub fn write_ntriples(kg: &KnowledgeGraph, mut w: impl Write) -> std::io::Result<()> {
    for v in 0..kg.num_nodes() as u32 {
        let vid = kgtosa_kg::Vid(v);
        let class = kg.class_term(kg.class_of(vid));
        if class == UNTYPED_CLASS || class == KnowledgeGraph::LITERAL_CLASS {
            continue;
        }
        writeln!(
            w,
            "<{}> <{}> <{}> .",
            escape_iri(kg.node_term(vid)),
            RDF_TYPE_IRI,
            escape_iri(class)
        )?;
    }
    let literal_class = kg.literal_class();
    for t in kg.triples() {
        let obj = if Some(kg.class_of(t.o)) == literal_class {
            format!("\"{}\"", escape_literal(kg.node_term(t.o)))
        } else {
            format!("<{}>", escape_iri(kg.node_term(t.o)))
        };
        writeln!(
            w,
            "<{}> <{}> {} .",
            escape_iri(kg.node_term(t.s)),
            escape_iri(kg.relation_term(t.p)),
            obj
        )?;
    }
    Ok(())
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Term {
    Iri(String),
    Blank(String),
    Literal(String),
}

/// Parses one N-Triples statement: `subject predicate object .`
fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut rest = line;
    let s = take_term(&mut rest)?;
    let p = take_term(&mut rest)?;
    let o = take_term(&mut rest)?;
    let rest = rest.trim();
    if rest != "." {
        return Err(format!("expected terminating '.', found {rest:?}"));
    }
    Ok((s, p, o))
}

fn take_term(rest: &mut &str) -> Result<Term, String> {
    let trimmed = rest.trim_start();
    let mut chars = trimmed.char_indices();
    match chars.next() {
        Some((_, '<')) => {
            let end = trimmed.find('>').ok_or("unterminated IRI")?;
            let iri = unescape(&trimmed[1..end])?;
            *rest = &trimmed[end + 1..];
            Ok(Term::Iri(iri))
        }
        Some((_, '_')) => {
            if !trimmed.starts_with("_:") {
                return Err("malformed blank node".into());
            }
            let end = trimmed
                .find(char::is_whitespace)
                .unwrap_or(trimmed.len());
            let label = trimmed[..end].to_string();
            *rest = &trimmed[end..];
            Ok(Term::Blank(label))
        }
        Some((_, '"')) => {
            // Scan for the closing quote honouring backslash escapes.
            let bytes = trimmed.as_bytes();
            let mut i = 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => break,
                    _ => i += 1,
                }
            }
            if i >= bytes.len() {
                return Err("unterminated literal".into());
            }
            let content = unescape(&trimmed[1..i])?;
            // Swallow optional language tag / datatype.
            let mut after = &trimmed[i + 1..];
            if let Some(tagged) = after.strip_prefix('@') {
                let end = tagged.find(char::is_whitespace).unwrap_or(tagged.len());
                after = &tagged[end..];
            } else if let Some(typed) = after.strip_prefix("^^<") {
                let end = typed.find('>').ok_or("unterminated datatype IRI")?;
                after = &typed[end + 1..];
            }
            *rest = after;
            Ok(Term::Literal(content))
        }
        _ => Err(format!("expected term, found {trimmed:?}")),
    }
}

fn unescape(s: &str) -> Result<String, String> {
    if !s.contains('\\') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some(other) => return Err(format!("unknown escape \\{other}")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

fn escape_iri(s: &str) -> String {
    // IRIs in our dictionaries are free of '>' by construction, but be safe.
    s.replace('>', "%3E")
}

fn escape_literal(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
        .replace('\r', "\\r")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const DOC: &str = r#"
# a comment
<p1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Paper> .
<v1> <rdf:type> <Venue> .
<p1> <publishedIn> <v1> .
<p1> <title> "Attention is \"all\" you need" .
<p1> <year> "2017"^^<http://www.w3.org/2001/XMLSchema#integer> .
<p1> <abstract> "hello"@en .
_:b0 <cites> <p1> .
"#;

    #[test]
    fn reads_document() {
        let kg = read_ntriples(Cursor::new(DOC)).unwrap();
        // publishedIn, title, year, abstract, cites.
        assert_eq!(kg.num_triples(), 5);
        let p1 = kg.find_node("p1").unwrap();
        assert_eq!(kg.class_term(kg.class_of(p1)), "Paper");
        // Blank node subject becomes an untyped vertex.
        let b0 = kg.find_node("_:b0").unwrap();
        assert_eq!(kg.class_term(kg.class_of(b0)), UNTYPED_CLASS);
        // Escaped literal decoded.
        assert!(kg.find_node("Attention is \"all\" you need").is_some());
        // Typed/tagged literals keep their lexical content.
        assert!(kg.find_node("2017").is_some());
        assert!(kg.find_node("hello").is_some());
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("a", "Author", "writes", "p", "Paper");
        let lit = kg.add_literal("line1\nline2 \"q\"");
        let rel = kg.add_relation("note");
        let a = kg.find_node("a").unwrap();
        kg.add_triple(a, rel, lit);

        let mut buf = Vec::new();
        write_ntriples(&kg, &mut buf).unwrap();
        let back = read_ntriples(Cursor::new(buf)).unwrap();
        assert_eq!(back.num_triples(), kg.num_triples());
        let a2 = back.find_node("a").unwrap();
        assert_eq!(back.class_term(back.class_of(a2)), "Author");
        assert!(back.find_node("line1\nline2 \"q\"").is_some());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_ntriples(Cursor::new("<a> <b>")).is_err());
        assert!(read_ntriples(Cursor::new("<a> <b> <c>")).is_err(), "missing dot");
        assert!(read_ntriples(Cursor::new("\"lit\" <b> <c> .")).is_err(), "literal subject");
        assert!(read_ntriples(Cursor::new("<a> \"lit\" <c> .")).is_err(), "literal predicate");
        assert!(read_ntriples(Cursor::new("<a> <rdf:type> \"x\" .")).is_err(), "literal type");
        assert!(read_ntriples(Cursor::new("<unterminated")).is_err());
    }

    #[test]
    fn type_first_wins_even_when_declared_later() {
        // The type pass runs before data triples, so a subject used in a
        // data triple before its rdf:type line still gets classed.
        let doc = "<x> <r> <y> .\n<x> <rdf:type> <T> .\n";
        let kg = read_ntriples(Cursor::new(doc)).unwrap();
        let x = kg.find_node("x").unwrap();
        assert_eq!(kg.class_term(kg.class_of(x)), "T");
    }

    #[test]
    fn empty_and_comment_only() {
        let kg = read_ntriples(Cursor::new("\n# nothing\n\n")).unwrap();
        assert_eq!(kg.num_nodes(), 0);
    }
}
