//! # kgtosa-rdf — an in-memory RDF engine with a SPARQL subset
//!
//! KG-TOSA's headline extraction method (§IV-C of the paper) offloads
//! subgraph matching to an RDF engine so it can exploit the six triple
//! orderings such engines maintain by default. This crate supplies that
//! substrate from scratch:
//!
//! * [`hexastore::Hexastore`] — sextuple-indexed triple storage with
//!   `O(log m + k)` pattern scans (Weiss et al., VLDB'08),
//! * [`store::RdfStore`] — term encoding over a [`kgtosa_kg::KnowledgeGraph`]
//!   plus materialized `rdf:type` assertions,
//! * [`parser`] / [`ast`] — a SPARQL subset covering exactly the query
//!   forms KG-TOSA generates (`SELECT`, `DISTINCT`, BGPs, `UNION`,
//!   `LIMIT`/`OFFSET`, `COUNT`, `PREFIX`, the `a` keyword),
//! * [`exec::SparqlEngine`] — greedy selectivity-ordered index nested-loop
//!   join evaluation,
//! * [`endpoint`] — the endpoint trait plus Algorithm 3's parallel
//!   paginated triple fetcher.
//!
//! ```
//! use kgtosa_kg::KnowledgeGraph;
//! use kgtosa_rdf::{RdfStore, SparqlEngine};
//!
//! let mut kg = KnowledgeGraph::new();
//! kg.add_triple_terms("a1", "Author", "writes", "p1", "Paper");
//! let store = RdfStore::new(&kg);
//! let engine = SparqlEngine::new(&store);
//! let rs = engine.execute_str("SELECT ?p WHERE { ?p a <Paper> }").unwrap();
//! assert_eq!(rs.len(), 1);
//! ```

pub mod ast;
pub mod breaker;
pub mod checkpoint;
pub mod endpoint;
pub mod error;
pub mod exec;
pub mod fault;
pub mod hexastore;
pub mod lexer;
pub mod ntriples;
pub mod pagecache;
pub mod parser;
pub mod retry;
pub mod store;

pub use ast::{Element, Group, Query, Selection, Term, TriplePattern};
pub use breaker::{
    BreakerEndpoint, BreakerPolicy, BreakerState, BreakerTransition, CircuitBreaker,
};
pub use checkpoint::FetchCheckpoint;
pub use endpoint::{
    fetch_triples, fetch_triples_robust, EndpointStats, FetchConfig, FetchMode, FetchOutcome,
    InProcessEndpoint, SparqlEndpoint,
};
pub use error::RdfError;
pub use fault::{FaultDecision, FaultPlan, FaultyEndpoint};
pub use retry::{RetryPolicy, RetryingEndpoint};
pub use exec::{ResultSet, SparqlEngine, NULL_ID};
pub use hexastore::{Hexastore, Order};
pub use ntriples::{read_ntriples, write_ntriples};
pub use pagecache::{CachingEndpoint, PageCache, PageCacheStats, DEFAULT_PAGE_CACHE_BYTES};
pub use parser::parse;
pub use store::{NodeTerm, RdfStore, RDF_TYPE};
