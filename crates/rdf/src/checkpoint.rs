//! Serializable progress of a paginated fetch.
//!
//! Algorithm 3 pages every UNION subquery with `LIMIT`/`OFFSET`; when a
//! long extraction dies (endpoint outage, process kill), all completed
//! pages were already paid for in requests and transfer. A
//! [`FetchCheckpoint`] records each finished `(subquery, offset)` page —
//! triples included — in a compact binary file alongside the kg snapshot
//! format, so a re-run skips straight to the first missing page.
//!
//! Layout (little-endian, same conventions as `kgtosa_kg::snapshot`):
//!
//! ```text
//! magic "KGTOSAF\n"
//! u64 key            fingerprint of (subqueries, batch size, triple vars)
//! u64 payload_len    then u64 fnv64(payload) checksum
//! payload:
//!   u32 num_subqueries
//!   per subquery: u8 exhausted, u32 num_pages,
//!     per page: u64 offset, u32 num_triples, (u32 s, u32 p, u32 o) each
//! ```
//!
//! The key binds a checkpoint to the exact fetch it came from: a stale or
//! foreign file is ignored (the fetch restarts from scratch) rather than
//! trusted, and a corrupt payload fails the checksum the same way.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use kgtosa_kg::{Rid, Triple, Vid};

use crate::fault::fnv64;

const MAGIC: &[u8; 8] = b"KGTOSAF\n";

/// Progress of one subquery's pagination.
#[derive(Debug, Clone, Default)]
struct SubProgress {
    /// Completed pages, keyed by offset; values are the (filtered) data
    /// triples each page yielded.
    pages: BTreeMap<u64, Vec<Triple>>,
    /// Whether pagination hit the final short page.
    exhausted: bool,
}

/// Completed pages of a paginated fetch, resumable across process runs.
#[derive(Debug, Clone)]
pub struct FetchCheckpoint {
    key: u64,
    subs: Vec<SubProgress>,
}

impl FetchCheckpoint {
    /// An empty checkpoint for a fetch identified by `key` over
    /// `num_subqueries` subqueries.
    pub fn new(key: u64, num_subqueries: usize) -> Self {
        Self {
            key,
            subs: vec![SubProgress::default(); num_subqueries],
        }
    }

    /// The fetch fingerprint this checkpoint belongs to.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Whether this checkpoint was produced by the same fetch shape.
    pub fn matches(&self, key: u64, num_subqueries: usize) -> bool {
        self.key == key && self.subs.len() == num_subqueries
    }

    /// Whether the page at `offset` of subquery `sub` is already done.
    pub fn has_page(&self, sub: usize, offset: u64) -> bool {
        self.subs[sub].pages.contains_key(&offset)
    }

    /// Whether subquery `sub` was fully paginated.
    pub fn is_exhausted(&self, sub: usize) -> bool {
        self.subs[sub].exhausted
    }

    /// Records a completed page.
    pub fn record_page(&mut self, sub: usize, offset: u64, triples: Vec<Triple>) {
        self.subs[sub].pages.insert(offset, triples);
    }

    /// Marks a subquery as fully paginated.
    pub fn mark_exhausted(&mut self, sub: usize) {
        self.subs[sub].exhausted = true;
    }

    /// Completed pages recorded for subquery `sub`.
    pub fn pages_done(&self, sub: usize) -> usize {
        self.subs[sub].pages.len()
    }

    /// Total completed pages across all subqueries.
    pub fn completed_pages(&self) -> usize {
        self.subs.iter().map(|s| s.pages.len()).sum()
    }

    /// All recorded triples, concatenated (callers sort + dedup).
    pub fn all_triples(&self) -> Vec<Triple> {
        let total: usize = self
            .subs
            .iter()
            .flat_map(|s| s.pages.values())
            .map(Vec::len)
            .sum();
        let mut out = Vec::with_capacity(total);
        for sub in &self.subs {
            for triples in sub.pages.values() {
                out.extend_from_slice(triples);
            }
        }
        out
    }

    /// Serializes the checkpoint.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.subs.len() as u32).to_le_bytes());
        for sub in &self.subs {
            payload.push(sub.exhausted as u8);
            payload.extend_from_slice(&(sub.pages.len() as u32).to_le_bytes());
            for (&offset, triples) in &sub.pages {
                payload.extend_from_slice(&offset.to_le_bytes());
                payload.extend_from_slice(&(triples.len() as u32).to_le_bytes());
                for t in triples {
                    for id in t.raw() {
                        payload.extend_from_slice(&id.to_le_bytes());
                    }
                }
            }
        }
        w.write_all(MAGIC)?;
        w.write_all(&self.key.to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&fnv64(&payload).to_le_bytes())?;
        w.write_all(&payload)
    }

    /// Deserializes a checkpoint written by [`FetchCheckpoint::write_to`].
    pub fn read_from(mut r: impl Read) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != *MAGIC {
            return Err(bad("not a fetch checkpoint (bad magic)"));
        }
        let key = read_u64(&mut r)?;
        let payload_len = read_u64(&mut r)? as usize;
        let checksum = read_u64(&mut r)?;
        let mut payload = vec![0u8; payload_len];
        r.read_exact(&mut payload)?;
        if fnv64(&payload) != checksum {
            return Err(bad("fetch checkpoint payload corrupt (checksum mismatch)"));
        }
        let mut p = &payload[..];
        let num_subs = read_u32(&mut p)? as usize;
        let mut subs = Vec::with_capacity(num_subs);
        for _ in 0..num_subs {
            let mut flag = [0u8; 1];
            p.read_exact(&mut flag)?;
            let num_pages = read_u32(&mut p)? as usize;
            let mut pages = BTreeMap::new();
            for _ in 0..num_pages {
                let offset = read_u64(&mut p)?;
                let num_triples = read_u32(&mut p)? as usize;
                let mut triples = Vec::with_capacity(num_triples);
                for _ in 0..num_triples {
                    let s = read_u32(&mut p)?;
                    let pred = read_u32(&mut p)?;
                    let o = read_u32(&mut p)?;
                    triples.push(Triple::new(Vid(s), Rid(pred), Vid(o)));
                }
                pages.insert(offset, triples);
            }
            subs.push(SubProgress {
                pages,
                exhausted: flag[0] != 0,
            });
        }
        Ok(Self { key, subs })
    }

    /// Saves atomically (write to a temp file, then rename), creating the
    /// parent directory if needed so `--checkpoint-dir` can point at a
    /// directory that does not exist yet.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = io::BufWriter::new(fs::File::create(&tmp)?);
            self.write_to(&mut f)?;
            f.flush()?;
        }
        fs::rename(&tmp, path)
    }

    /// Loads the checkpoint at `path` if it exists, matches the fetch
    /// shape, and passes its checksum; otherwise returns a fresh one. A
    /// bad file is reported but never fatal — the fetch simply restarts.
    pub fn load_or_new(path: &Path, key: u64, num_subqueries: usize) -> Self {
        match fs::File::open(path) {
            Err(_) => FetchCheckpoint::new(key, num_subqueries),
            Ok(f) => match FetchCheckpoint::read_from(io::BufReader::new(f)) {
                Ok(ckpt) if ckpt.matches(key, num_subqueries) => ckpt,
                Ok(_) => {
                    kgtosa_obs::info!(
                        "fetch checkpoint {} belongs to a different fetch; starting fresh",
                        path.display()
                    );
                    FetchCheckpoint::new(key, num_subqueries)
                }
                Err(e) => {
                    kgtosa_obs::info!(
                        "fetch checkpoint {} unreadable ({}); starting fresh",
                        path.display(),
                        e
                    );
                    FetchCheckpoint::new(key, num_subqueries)
                }
            },
        }
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(Vid(s), Rid(p), Vid(o))
    }

    #[test]
    fn roundtrip_preserves_pages() {
        let mut ckpt = FetchCheckpoint::new(0xDEAD, 3);
        ckpt.record_page(0, 0, vec![t(1, 2, 3), t(4, 5, 6)]);
        ckpt.record_page(0, 100, vec![t(7, 8, 9)]);
        ckpt.record_page(2, 0, vec![]);
        ckpt.mark_exhausted(2);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        let back = FetchCheckpoint::read_from(&buf[..]).unwrap();
        assert!(back.matches(0xDEAD, 3));
        assert!(back.has_page(0, 0) && back.has_page(0, 100) && back.has_page(2, 0));
        assert!(!back.has_page(1, 0));
        assert!(back.is_exhausted(2) && !back.is_exhausted(0));
        assert_eq!(back.completed_pages(), 3);
        let mut triples = back.all_triples();
        triples.sort_unstable();
        assert_eq!(triples, vec![t(1, 2, 3), t(4, 5, 6), t(7, 8, 9)]);
    }

    #[test]
    fn corrupt_and_mismatched_files_start_fresh() {
        let dir = std::env::temp_dir().join("kgtosa-ckpt-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fetch.ckpt");

        let mut ckpt = FetchCheckpoint::new(1, 2);
        ckpt.record_page(0, 0, vec![t(1, 2, 3)]);
        ckpt.save(&path).unwrap();
        assert_eq!(FetchCheckpoint::load_or_new(&path, 1, 2).completed_pages(), 1);
        // Wrong key or shape -> fresh.
        assert_eq!(FetchCheckpoint::load_or_new(&path, 9, 2).completed_pages(), 0);
        assert_eq!(FetchCheckpoint::load_or_new(&path, 1, 5).completed_pages(), 0);
        // Flip a payload byte -> checksum fails -> fresh.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(FetchCheckpoint::load_or_new(&path, 1, 2).completed_pages(), 0);
        // Absent file -> fresh.
        fs::remove_file(&path).unwrap();
        assert_eq!(FetchCheckpoint::load_or_new(&path, 1, 2).completed_pages(), 0);
        let _ = fs::remove_dir(&dir);
    }
}
