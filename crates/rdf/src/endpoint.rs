//! SPARQL endpoint abstraction and the parallel paginated fetcher.
//!
//! Algorithm 3 of the paper extracts the TOSG by sending each UNION
//! subquery to the RDF engine's endpoint independently, paginating with
//! `LIMIT`/`OFFSET` in batches of `bs` triples, running `P` request-handler
//! workers in parallel, and finally dropping duplicate triples. This module
//! reproduces that machinery over an in-process engine:
//!
//! * [`SparqlEndpoint`] — what Virtuoso's HTTP endpoint provides (here an
//!   in-process trait so the whole pipeline runs without a network),
//! * [`InProcessEndpoint`] — parse + plan + execute against an [`RdfStore`],
//!   with per-request accounting standing in for transfer/compression,
//! * [`fetch_triples`] — the `initializeWorkers`/`RequestHandler` loop.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use kgtosa_kg::Triple;
use kgtosa_par::Pool;

use crate::ast::Query;
use crate::checkpoint::FetchCheckpoint;
use crate::error::RdfError;
use crate::exec::{ResultSet, SparqlEngine, NULL_ID};
use crate::fault::{fnv64, FaultPlan, FaultyEndpoint};
use crate::pagecache::{CachingEndpoint, PageCache};
use crate::retry::{RetryPolicy, RetryingEndpoint};
use crate::store::RdfStore;

/// A SPARQL SELECT endpoint.
pub trait SparqlEndpoint: Sync {
    /// Executes a parsed SELECT query.
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError>;

    /// Executes a count of the query's solutions (Algorithm 3's
    /// `getGraphSize`, used to plan the pagination batches). An empty
    /// result set means zero solutions, not an error.
    fn count(&self, query: &Query) -> Result<usize, RdfError> {
        let mut counting = query.clone();
        counting.select = crate::ast::Selection::Count;
        counting.limit = None;
        counting.offset = None;
        let rs = self.select(&counting)?;
        if rs.is_empty() {
            return Ok(0);
        }
        Ok(rs.row(0)[0] as usize)
    }
}

/// Endpoint wrappers ([`FaultyEndpoint`], [`RetryingEndpoint`]) take their
/// inner endpoint by value; this blanket impl lets them borrow one instead,
/// and makes `&dyn SparqlEndpoint` an endpoint in its own right.
impl<E: SparqlEndpoint + ?Sized> SparqlEndpoint for &E {
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError> {
        (**self).select(query)
    }

    fn count(&self, query: &Query) -> Result<usize, RdfError> {
        (**self).count(query)
    }
}

/// Cumulative endpoint accounting: stands in for the network-transfer
/// metrics the paper optimizes with compression + pagination.
#[derive(Debug, Default)]
pub struct EndpointStats {
    requests: AtomicUsize,
    rows: AtomicUsize,
    bytes: AtomicUsize,
}

impl EndpointStats {
    /// Number of SELECT requests served.
    pub fn requests(&self) -> usize {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total solution rows returned.
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Total response payload bytes (4 bytes per cell, before the simulated
    /// compression factor a real deployment would apply).
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    fn record(&self, rs: &ResultSet) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rs.len(), Ordering::Relaxed);
        let bytes = rs.len() * rs.vars.len() * 4;
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        // Mirror into the process-global registry so traces see endpoint
        // load even when the endpoint object is short-lived.
        kgtosa_obs::counter("rdf.requests").inc();
        kgtosa_obs::counter("rdf.rows").add(rs.len() as u64);
        kgtosa_obs::counter("rdf.bytes").add(bytes as u64);
    }
}

/// An endpoint executing queries directly against an in-memory store.
pub struct InProcessEndpoint<'s, 'kg> {
    store: &'s RdfStore<'kg>,
    stats: EndpointStats,
}

impl<'s, 'kg> InProcessEndpoint<'s, 'kg> {
    /// Wraps a store.
    pub fn new(store: &'s RdfStore<'kg>) -> Self {
        Self {
            store,
            stats: EndpointStats::default(),
        }
    }

    /// Request accounting so far.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// The wrapped store.
    pub fn store(&self) -> &'s RdfStore<'kg> {
        self.store
    }
}

impl SparqlEndpoint for InProcessEndpoint<'_, '_> {
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError> {
        // Per-request latency feeds the global histogram and, through it,
        // the scoped view of whichever telemetry context issued the
        // request (an SLO `gauge:`/histogram signal per tenant later).
        let start = std::time::Instant::now();
        let rs = SparqlEngine::new(self.store).execute(query)?;
        kgtosa_obs::histogram("rdf.request_s").observe(start.elapsed().as_secs_f64());
        self.stats.record(&rs);
        Ok(rs)
    }
}

/// What a request-handler does when a page request ultimately fails
/// (after any retry policy has been exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchMode {
    /// Abort the fetch on the first failed page (completed pages still
    /// land in the checkpoint, so a re-run resumes).
    #[default]
    Strict,
    /// Record the failure, keep fetching the remaining pages, and return
    /// what was retrieved with an explicit completeness fraction.
    Partial,
}

/// Configuration of the parallel paginated retrieval (Algorithm 3 inputs
/// `bs` and `P`), plus the fault-tolerance layer around it.
#[derive(Debug, Clone)]
pub struct FetchConfig {
    /// Page size per request (`bs`).
    pub batch_size: usize,
    /// Number of request-handler workers (`P`). The default follows the
    /// process-wide thread count (`--threads` / `KGTOSA_THREADS` /
    /// available parallelism), capped at 16 — past that, extra request
    /// handlers only contend on the store.
    pub threads: usize,
    /// Retry transient endpoint failures per this policy. `None` fails
    /// fast on the first error.
    pub retry: Option<RetryPolicy>,
    /// Deterministic fault injection, for chaos testing the layer above.
    pub fault: Option<FaultPlan>,
    /// Failure handling: strict abort (default) or degrade to a partial
    /// result with a completeness fraction.
    pub mode: FetchMode,
    /// Page checkpoint file: completed `(subquery, offset)` pages are
    /// persisted here so a re-run skips them.
    pub checkpoint: Option<PathBuf>,
    /// In-memory LRU of page results, shared across fetches of the same
    /// dataset within one process (e.g. `compare` running FG plus three
    /// TOSG patterns). Composed *outside* the retry layer, so a page
    /// that needed retries still fills the cache exactly once.
    pub page_cache: Option<PageCache>,
    /// Circuit breaker shared across fetches against the same backend
    /// (clone of one [`CircuitBreaker`]). Composed outside the retry
    /// layer — it sees give-ups and fatal errors, not absorbed transient
    /// attempts — and inside the page cache, so cached pages are served
    /// even while the backend is quarantined.
    pub breaker: Option<crate::breaker::CircuitBreaker>,
}

impl Default for FetchConfig {
    fn default() -> Self {
        Self {
            batch_size: 100_000,
            threads: kgtosa_par::current_threads().min(16),
            retry: None,
            fault: None,
            mode: FetchMode::Strict,
            checkpoint: None,
            page_cache: None,
            breaker: None,
        }
    }
}

/// What a fetch produced, beyond the triples themselves: pagination
/// accounting from which an explicit completeness fraction is derived.
#[derive(Debug)]
pub struct FetchOutcome {
    /// The merged, deduplicated data triples.
    pub triples: Vec<Triple>,
    /// Pages the fetch believes exist (completed + failed, floored by the
    /// `getGraphSize` estimate in partial mode).
    pub planned_pages: usize,
    /// Pages successfully retrieved (this run or resumed from the
    /// checkpoint).
    pub completed_pages: usize,
    /// Pages that ultimately failed (after retries).
    pub failed_pages: usize,
    /// Pages skipped because a checkpoint already had them.
    pub resumed_pages: usize,
}

impl FetchOutcome {
    /// Fraction of planned pages that were actually retrieved, in
    /// `[0, 1]`. `1.0` means the extraction is complete.
    pub fn completeness(&self) -> f64 {
        if self.planned_pages == 0 {
            1.0
        } else {
            self.completed_pages as f64 / self.planned_pages as f64
        }
    }

    /// Whether every planned page was retrieved.
    pub fn is_complete(&self) -> bool {
        self.failed_pages == 0 && self.completed_pages >= self.planned_pages
    }
}

/// Per-subquery result of one request handler.
struct SubFetch {
    new_pages: Vec<(u64, Vec<Triple>)>,
    exhausted: bool,
    /// `getGraphSize`-based page estimate (0 when not queried/unknown).
    estimate: usize,
    failed_pages: usize,
    error: Option<RdfError>,
}

/// Fetches all data triples matched by a set of subqueries.
///
/// Each subquery must bind the three `triple_vars` to the subject,
/// predicate and object of a matched triple. Subqueries are distributed
/// over `cfg.threads` request handlers on the shared pool; each handler
/// pages its subquery with `LIMIT`/`OFFSET` until exhaustion. Rows with
/// unbound triple variables or synthetic `rdf:type` components are
/// skipped; the merged result is deduplicated (Algorithm 3 line 10).
///
/// This is the strict fail-fast entry point; [`fetch_triples_robust`]
/// exposes retry, fault injection, checkpoint resume, and partial mode.
pub fn fetch_triples<E: SparqlEndpoint>(
    endpoint: &E,
    store: &RdfStore<'_>,
    subqueries: &[Query],
    triple_vars: (&str, &str, &str),
    cfg: &FetchConfig,
) -> Result<Vec<Triple>, RdfError> {
    fetch_triples_robust(endpoint, store, subqueries, triple_vars, cfg).map(|o| o.triples)
}

/// Stable fingerprint of a fetch shape, binding checkpoints to the exact
/// subqueries, page size, and projection they were written for.
fn fetch_key(subqueries: &[Query], triple_vars: (&str, &str, &str), batch_size: usize) -> u64 {
    let mut text = format!("bs={batch_size};vars={triple_vars:?}");
    for q in subqueries {
        text.push('\n');
        text.push_str(&q.to_string());
    }
    fnv64(text.as_bytes())
}

/// [`fetch_triples`] with the full fault-tolerance layer engaged: wraps
/// the endpoint per `cfg.fault` / `cfg.retry`, resumes completed pages
/// from `cfg.checkpoint`, and in [`FetchMode::Partial`] degrades to an
/// incomplete result (with an explicit completeness fraction) instead of
/// aborting. Even in strict mode, pages completed before the failure are
/// saved to the checkpoint so the re-run does not repeat them.
pub fn fetch_triples_robust<E: SparqlEndpoint>(
    endpoint: &E,
    store: &RdfStore<'_>,
    subqueries: &[Query],
    triple_vars: (&str, &str, &str),
    cfg: &FetchConfig,
) -> Result<FetchOutcome, RdfError> {
    let _guard = kgtosa_obs::span!("rdf.fetch");
    // Assemble the endpoint stack: faults innermost (they model the
    // flaky engine), retries around them (they model our client).
    let base: &dyn SparqlEndpoint = endpoint;
    let faulty;
    let base: &dyn SparqlEndpoint = match &cfg.fault {
        Some(plan) => {
            faulty = FaultyEndpoint::new(base, plan.clone());
            &faulty
        }
        None => base,
    };
    let retrying;
    let base: &dyn SparqlEndpoint = match &cfg.retry {
        Some(policy) => {
            retrying = RetryingEndpoint::new(base, policy.clone());
            &retrying
        }
        None => base,
    };
    // Breaker outside the retries: it reacts to give-ups and fatal
    // errors (the backend is genuinely failing), never to the transient
    // attempts the retry layer absorbs.
    let breaking;
    let base: &dyn SparqlEndpoint = match &cfg.breaker {
        Some(breaker) => {
            breaking = breaker.wrap(base);
            &breaking
        }
        None => base,
    };
    // Page cache outermost: a hit skips retries and faults entirely, and
    // a retried miss inserts only the one final successful page.
    let caching;
    let base: &dyn SparqlEndpoint = match &cfg.page_cache {
        Some(cache) => {
            caching = CachingEndpoint::new(base, cache.clone());
            &caching
        }
        None => base,
    };

    let key = fetch_key(subqueries, triple_vars, cfg.batch_size);
    let mut ckpt = match &cfg.checkpoint {
        Some(path) => FetchCheckpoint::load_or_new(path, key, subqueries.len()),
        None => FetchCheckpoint::new(key, subqueries.len()),
    };
    let resumed_pages = ckpt.completed_pages();
    if resumed_pages > 0 {
        kgtosa_obs::counter("rdf.fetch.pages.resumed").add(resumed_pages as u64);
        kgtosa_obs::info!("rdf.fetch: resuming past {resumed_pages} checkpointed pages");
    }

    // Live progress: one unit per subquery (page counts are unknown until
    // each handler exhausts its pagination).
    let progress = kgtosa_obs::telemetry_active()
        .then(|| kgtosa_obs::progress_task("rdf.fetch", Some(subqueries.len() as u64)));
    let ckpt_ref = &ckpt;
    let per_subquery: Vec<SubFetch> =
        Pool::new(cfg.threads).par_map_collect("rdf.fetch", subqueries, |i, q| {
            let result = page_subquery(base, store, i, q, triple_vars, cfg, ckpt_ref);
            if let Some(progress) = &progress {
                progress.advance(1);
            }
            result
        });
    drop(progress);

    // Merge handler results into the checkpoint and tally the accounting.
    let (mut planned, mut completed, mut failed) = (0usize, 0usize, 0usize);
    let mut first_error: Option<RdfError> = None;
    for (i, sub) in per_subquery.into_iter().enumerate() {
        for (offset, triples) in sub.new_pages {
            ckpt.record_page(i, offset, triples);
        }
        if sub.exhausted {
            ckpt.mark_exhausted(i);
        }
        let done = ckpt.pages_done(i);
        completed += done;
        failed += sub.failed_pages;
        planned += if ckpt.is_exhausted(i) {
            // Exhausted means the final short page was seen; any failed
            // pages in between are still missing from the result.
            done + sub.failed_pages
        } else {
            sub.estimate.max(done + sub.failed_pages)
        };
        if first_error.is_none() {
            first_error = sub.error;
        }
    }
    if let Some(path) = &cfg.checkpoint {
        if let Err(e) = ckpt.save(path) {
            kgtosa_obs::info!("rdf.fetch: cannot save checkpoint {}: {e}", path.display());
        }
    }
    if cfg.mode == FetchMode::Strict {
        if let Some(e) = first_error {
            return Err(e);
        }
    }

    let mut triples = ckpt.all_triples();
    triples.sort_unstable();
    triples.dedup();
    Ok(FetchOutcome {
        triples,
        planned_pages: planned,
        completed_pages: completed,
        failed_pages: failed,
        resumed_pages,
    })
}

fn page_subquery(
    endpoint: &dyn SparqlEndpoint,
    store: &RdfStore<'_>,
    sub: usize,
    query: &Query,
    triple_vars: (&str, &str, &str),
    cfg: &FetchConfig,
    ckpt: &FetchCheckpoint,
) -> SubFetch {
    let mut out = SubFetch {
        new_pages: Vec::new(),
        exhausted: ckpt.is_exhausted(sub),
        estimate: 0,
        failed_pages: 0,
        error: None,
    };
    if out.exhausted {
        return out;
    }
    // Partial mode needs to know how far pagination reaches so it can step
    // over a failed page instead of stopping; Algorithm 3's `getGraphSize`
    // provides exactly that. The count is advisory: if it fails too, the
    // handler just cannot continue past an error.
    if cfg.mode == FetchMode::Partial {
        match endpoint.count(query) {
            Ok(rows) => out.estimate = rows.div_ceil(cfg.batch_size.max(1)),
            Err(e) => kgtosa_obs::info!("rdf.fetch: getGraphSize failed: {e}"),
        }
    }
    let mut page_idx = 0usize;
    loop {
        let offset = page_idx * cfg.batch_size;
        if ckpt.has_page(sub, offset as u64) {
            page_idx += 1;
            continue;
        }
        match endpoint.select(&query.with_page(cfg.batch_size, offset)) {
            Ok(page) => {
                kgtosa_obs::counter("rdf.fetch.pages").inc();
                let rows = page.len();
                match page_triples(store, &page, triple_vars) {
                    Ok(triples) => out.new_pages.push((offset as u64, triples)),
                    Err(e) => {
                        // Misprojected subquery: no page of it can succeed.
                        out.failed_pages += 1;
                        out.error = Some(e);
                        return out;
                    }
                }
                if rows < cfg.batch_size {
                    out.exhausted = true;
                    return out;
                }
                page_idx += 1;
            }
            Err(e) => {
                kgtosa_obs::counter("rdf.fetch.pages.failed").inc();
                out.failed_pages += 1;
                if out.error.is_none() {
                    out.error = Some(e);
                }
                page_idx += 1;
                // Only partial mode continues past a failed page, and only
                // while the size estimate says more pages exist.
                if cfg.mode == FetchMode::Strict || page_idx >= out.estimate {
                    return out;
                }
            }
        }
    }
}

fn page_triples(
    store: &RdfStore<'_>,
    page: &ResultSet,
    triple_vars: (&str, &str, &str),
) -> Result<Vec<Triple>, RdfError> {
    let (cs, cp, co) = (
        page.col(triple_vars.0),
        page.col(triple_vars.1),
        page.col(triple_vars.2),
    );
    let (cs, cp, co) = match (cs, cp, co) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => {
            return Err(RdfError::exec(format!(
                "subquery does not project triple vars {triple_vars:?}"
            )))
        }
    };
    let mut out = Vec::new();
    for i in 0..page.len() {
        let row = page.row(i);
        let (s, p, o) = (row[cs], row[cp], row[co]);
        if s == NULL_ID || p == NULL_ID || o == NULL_ID {
            continue;
        }
        if let Some(t) = store.to_data_triple(s, p, o) {
            out.push(t);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use kgtosa_kg::KnowledgeGraph;

    fn kg(n: usize) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..n {
            kg.add_triple_terms(
                &format!("a{i}"),
                "Author",
                "writes",
                &format!("p{}", i % 7),
                "Paper",
            );
        }
        kg
    }

    #[test]
    fn endpoint_counts_and_selects() {
        let kg = kg(10);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        assert_eq!(ep.count(&q).unwrap(), 10);
        let rs = ep.select(&q).unwrap();
        assert_eq!(rs.len(), 10);
        assert_eq!(ep.stats().requests(), 2);
        assert!(ep.stats().bytes() > 0);
    }

    #[test]
    fn paginated_fetch_collects_everything() {
        let kg = kg(25);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s a <Author> }").unwrap();
        let cfg = FetchConfig {
            batch_size: 4,
            threads: 3,
            ..FetchConfig::default()
        };
        let triples = fetch_triples(&ep, &store, &[q], ("s", "p", "o"), &cfg).unwrap();
        // 25 writes triples; rdf:type rows are filtered.
        assert_eq!(triples.len(), 25);
        // Pagination forced multiple requests.
        assert!(ep.stats().requests() >= 7);
    }

    #[test]
    fn multiple_subqueries_merge_and_dedup() {
        let kg = kg(8);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q1 = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s a <Author> }").unwrap();
        let q2 = parse("SELECT ?s ?p ?o WHERE { ?s <writes> ?o . ?s ?p ?o }").unwrap();
        let triples = fetch_triples(
            &ep,
            &store,
            &[q1, q2],
            ("s", "p", "o"),
            &FetchConfig {
                batch_size: 100,
                threads: 2,
                ..FetchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(triples.len(), 8, "overlapping subqueries must dedup");
    }

    #[test]
    fn missing_triple_vars_error() {
        let kg = kg(3);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        let err = fetch_triples(&ep, &store, &[q], ("s", "p", "o"), &FetchConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn empty_subquery_list() {
        let kg = kg(3);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let triples =
            fetch_triples(&ep, &store, &[], ("s", "p", "o"), &FetchConfig::default()).unwrap();
        assert!(triples.is_empty());
    }

    /// Regression: `count` used to index `rs.row(0)` and panic when the
    /// engine returned an empty result set instead of a zero-count row.
    #[test]
    fn count_of_empty_result_set_is_zero() {
        struct EmptyEndpoint;
        impl SparqlEndpoint for EmptyEndpoint {
            fn select(&self, _query: &Query) -> Result<ResultSet, RdfError> {
                Ok(ResultSet::with_vars(vec!["count".into()]))
            }
        }
        let q = crate::parser::parse("SELECT ?s WHERE { ?s <writes> ?o }").unwrap();
        assert_eq!(EmptyEndpoint.count(&q).unwrap(), 0);
    }

    #[test]
    fn faulty_fetch_with_retry_matches_clean_fetch() {
        let kg = kg(30);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s a <Author> }").unwrap();
        let clean = fetch_triples(
            &ep,
            &store,
            std::slice::from_ref(&q),
            ("s", "p", "o"),
            &FetchConfig {
                batch_size: 4,
                threads: 2,
                ..FetchConfig::default()
            },
        )
        .unwrap();
        let chaotic = fetch_triples_robust(
            &ep,
            &store,
            &[q],
            ("s", "p", "o"),
            &FetchConfig {
                batch_size: 4,
                threads: 2,
                fault: Some(crate::fault::FaultPlan {
                    fault_rate: 0.8,
                    max_burst: 2,
                    ..Default::default()
                }),
                retry: Some(crate::retry::RetryPolicy {
                    base_backoff_us: 1,
                    max_backoff_us: 10,
                    ..Default::default()
                }),
                ..FetchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(chaotic.triples, clean, "transient faults must not alter output");
        assert!((chaotic.completeness() - 1.0).abs() < f64::EPSILON);
        assert!(chaotic.is_complete());
    }

    /// An endpoint where one specific page is permanently broken: offset 8
    /// always fails with a fatal error, everything else works.
    struct BrokenPage<'s, 'kg> {
        ep: InProcessEndpoint<'s, 'kg>,
    }

    impl SparqlEndpoint for BrokenPage<'_, '_> {
        fn select(&self, query: &Query) -> Result<ResultSet, RdfError> {
            if query.offset == Some(8) {
                return Err(RdfError::exec("page permanently broken"));
            }
            self.ep.select(query)
        }
    }

    #[test]
    fn partial_mode_degrades_with_completeness_fraction() {
        let kg = kg(30);
        let store = RdfStore::new(&kg);
        let ep = BrokenPage {
            ep: InProcessEndpoint::new(&store),
        };
        // Binds exactly the 30 `writes` rows (no rdf:type rows), so the
        // page arithmetic below is exact.
        let q = parse("SELECT ?s ?p ?o WHERE { ?s <writes> ?o . ?s ?p ?o }").unwrap();
        let cfg = FetchConfig {
            batch_size: 4,
            threads: 1,
            mode: FetchMode::Partial,
            ..FetchConfig::default()
        };
        // 30 rows / bs 4 -> 8 planned pages, page at offset 8 lost.
        let outcome =
            fetch_triples_robust(&ep, &store, std::slice::from_ref(&q), ("s", "p", "o"), &cfg)
                .unwrap();
        assert_eq!(outcome.planned_pages, 8);
        assert_eq!(outcome.completed_pages, 7);
        assert_eq!(outcome.failed_pages, 1);
        assert_eq!(outcome.triples.len(), 26, "the 4 rows of the broken page are lost");
        assert!((outcome.completeness() - 7.0 / 8.0).abs() < 1e-12);
        assert!(!outcome.is_complete());

        // Strict mode aborts on the same endpoint.
        let strict = fetch_triples_robust(
            &ep,
            &store,
            &[q],
            ("s", "p", "o"),
            &FetchConfig {
                mode: FetchMode::Strict,
                ..cfg
            },
        );
        assert!(strict.is_err());
    }

    #[test]
    fn checkpoint_resume_skips_completed_pages() {
        let kg = kg(30);
        let store = RdfStore::new(&kg);
        let dir = std::env::temp_dir().join("kgtosa-fetch-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fetch.ckpt");
        let _ = std::fs::remove_file(&path);
        let q = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s a <Author> }").unwrap();
        let cfg = FetchConfig {
            batch_size: 4,
            threads: 1,
            checkpoint: Some(path.clone()),
            ..FetchConfig::default()
        };

        // First run completes and persists its pages.
        let ep = InProcessEndpoint::new(&store);
        let first =
            fetch_triples_robust(&ep, &store, std::slice::from_ref(&q), ("s", "p", "o"), &cfg)
                .unwrap();
        assert_eq!(first.resumed_pages, 0);
        assert!(first.completed_pages >= 7);

        // Second run resumes everything: zero new page requests.
        let ep2 = InProcessEndpoint::new(&store);
        let second = fetch_triples_robust(&ep2, &store, &[q], ("s", "p", "o"), &cfg).unwrap();
        assert_eq!(second.resumed_pages, first.completed_pages);
        assert_eq!(ep2.stats().requests(), 0, "resumed fetch must skip all pages");
        assert_eq!(second.triples, first.triples);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
