//! SPARQL endpoint abstraction and the parallel paginated fetcher.
//!
//! Algorithm 3 of the paper extracts the TOSG by sending each UNION
//! subquery to the RDF engine's endpoint independently, paginating with
//! `LIMIT`/`OFFSET` in batches of `bs` triples, running `P` request-handler
//! workers in parallel, and finally dropping duplicate triples. This module
//! reproduces that machinery over an in-process engine:
//!
//! * [`SparqlEndpoint`] — what Virtuoso's HTTP endpoint provides (here an
//!   in-process trait so the whole pipeline runs without a network),
//! * [`InProcessEndpoint`] — parse + plan + execute against an [`RdfStore`],
//!   with per-request accounting standing in for transfer/compression,
//! * [`fetch_triples`] — the `initializeWorkers`/`RequestHandler` loop.

use std::sync::atomic::{AtomicUsize, Ordering};

use kgtosa_kg::Triple;
use kgtosa_par::Pool;

use crate::ast::Query;
use crate::error::RdfError;
use crate::exec::{ResultSet, SparqlEngine, NULL_ID};
use crate::store::RdfStore;

/// A SPARQL SELECT endpoint.
pub trait SparqlEndpoint: Sync {
    /// Executes a parsed SELECT query.
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError>;

    /// Executes a count of the query's solutions (Algorithm 3's
    /// `getGraphSize`, used to plan the pagination batches).
    fn count(&self, query: &Query) -> Result<usize, RdfError> {
        let mut counting = query.clone();
        counting.select = crate::ast::Selection::Count;
        counting.limit = None;
        counting.offset = None;
        let rs = self.select(&counting)?;
        Ok(rs.row(0)[0] as usize)
    }
}

/// Cumulative endpoint accounting: stands in for the network-transfer
/// metrics the paper optimizes with compression + pagination.
#[derive(Debug, Default)]
pub struct EndpointStats {
    requests: AtomicUsize,
    rows: AtomicUsize,
    bytes: AtomicUsize,
}

impl EndpointStats {
    /// Number of SELECT requests served.
    pub fn requests(&self) -> usize {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total solution rows returned.
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Total response payload bytes (4 bytes per cell, before the simulated
    /// compression factor a real deployment would apply).
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    fn record(&self, rs: &ResultSet) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rs.len(), Ordering::Relaxed);
        let bytes = rs.len() * rs.vars.len() * 4;
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        // Mirror into the process-global registry so traces see endpoint
        // load even when the endpoint object is short-lived.
        kgtosa_obs::counter("rdf.requests").inc();
        kgtosa_obs::counter("rdf.rows").add(rs.len() as u64);
        kgtosa_obs::counter("rdf.bytes").add(bytes as u64);
    }
}

/// An endpoint executing queries directly against an in-memory store.
pub struct InProcessEndpoint<'s, 'kg> {
    store: &'s RdfStore<'kg>,
    stats: EndpointStats,
}

impl<'s, 'kg> InProcessEndpoint<'s, 'kg> {
    /// Wraps a store.
    pub fn new(store: &'s RdfStore<'kg>) -> Self {
        Self {
            store,
            stats: EndpointStats::default(),
        }
    }

    /// Request accounting so far.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// The wrapped store.
    pub fn store(&self) -> &'s RdfStore<'kg> {
        self.store
    }
}

impl SparqlEndpoint for InProcessEndpoint<'_, '_> {
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError> {
        let rs = SparqlEngine::new(self.store).execute(query)?;
        self.stats.record(&rs);
        Ok(rs)
    }
}

/// Configuration of the parallel paginated retrieval (Algorithm 3 inputs
/// `bs` and `P`).
#[derive(Debug, Clone)]
pub struct FetchConfig {
    /// Page size per request (`bs`).
    pub batch_size: usize,
    /// Number of request-handler workers (`P`). The default follows the
    /// process-wide thread count (`--threads` / `KGTOSA_THREADS` /
    /// available parallelism), capped at 16 — past that, extra request
    /// handlers only contend on the store.
    pub threads: usize,
}

impl Default for FetchConfig {
    fn default() -> Self {
        Self {
            batch_size: 100_000,
            threads: kgtosa_par::current_threads().min(16),
        }
    }
}

/// Fetches all data triples matched by a set of subqueries.
///
/// Each subquery must bind the three `triple_vars` to the subject,
/// predicate and object of a matched triple. Subqueries are distributed
/// over `cfg.threads` request handlers on the shared pool; each handler
/// pages its subquery with `LIMIT`/`OFFSET` until exhaustion. Rows with
/// unbound triple variables or synthetic `rdf:type` components are
/// skipped; the merged result is deduplicated (Algorithm 3 line 10).
pub fn fetch_triples<E: SparqlEndpoint>(
    endpoint: &E,
    store: &RdfStore<'_>,
    subqueries: &[Query],
    triple_vars: (&str, &str, &str),
    cfg: &FetchConfig,
) -> Result<Vec<Triple>, RdfError> {
    let _guard = kgtosa_obs::span!("rdf.fetch");
    // Live progress: one unit per subquery (page counts are unknown until
    // each handler exhausts its pagination).
    let progress = kgtosa_obs::telemetry_active()
        .then(|| kgtosa_obs::progress_task("rdf.fetch", Some(subqueries.len() as u64)));
    let per_subquery = Pool::new(cfg.threads).par_map_collect("rdf.fetch", subqueries, |_, q| {
        let mut local: Vec<Triple> = Vec::new();
        let result = page_subquery(endpoint, store, q, triple_vars, cfg, &mut local).map(|()| local);
        if let Some(progress) = &progress {
            progress.advance(1);
        }
        result
    });
    let mut triples = Vec::new();
    for result in per_subquery {
        triples.append(&mut result?);
    }
    triples.sort_unstable();
    triples.dedup();
    Ok(triples)
}

fn page_subquery<E: SparqlEndpoint>(
    endpoint: &E,
    store: &RdfStore<'_>,
    query: &Query,
    triple_vars: (&str, &str, &str),
    cfg: &FetchConfig,
    out: &mut Vec<Triple>,
) -> Result<(), RdfError> {
    let mut offset = 0usize;
    loop {
        let page = endpoint.select(&query.with_page(cfg.batch_size, offset))?;
        kgtosa_obs::counter("rdf.fetch.pages").inc();
        let (cs, cp, co) = (
            page.col(triple_vars.0),
            page.col(triple_vars.1),
            page.col(triple_vars.2),
        );
        let (cs, cp, co) = match (cs, cp, co) {
            (Some(a), Some(b), Some(c)) => (a, b, c),
            _ => {
                return Err(RdfError::exec(format!(
                    "subquery does not project triple vars {triple_vars:?}"
                )))
            }
        };
        let rows = page.len();
        for i in 0..rows {
            let row = page.row(i);
            let (s, p, o) = (row[cs], row[cp], row[co]);
            if s == NULL_ID || p == NULL_ID || o == NULL_ID {
                continue;
            }
            if let Some(t) = store.to_data_triple(s, p, o) {
                out.push(t);
            }
        }
        if rows < cfg.batch_size {
            return Ok(());
        }
        offset += cfg.batch_size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use kgtosa_kg::KnowledgeGraph;

    fn kg(n: usize) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..n {
            kg.add_triple_terms(
                &format!("a{i}"),
                "Author",
                "writes",
                &format!("p{}", i % 7),
                "Paper",
            );
        }
        kg
    }

    #[test]
    fn endpoint_counts_and_selects() {
        let kg = kg(10);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        assert_eq!(ep.count(&q).unwrap(), 10);
        let rs = ep.select(&q).unwrap();
        assert_eq!(rs.len(), 10);
        assert_eq!(ep.stats().requests(), 2);
        assert!(ep.stats().bytes() > 0);
    }

    #[test]
    fn paginated_fetch_collects_everything() {
        let kg = kg(25);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s a <Author> }").unwrap();
        let cfg = FetchConfig {
            batch_size: 4,
            threads: 3,
        };
        let triples = fetch_triples(&ep, &store, &[q], ("s", "p", "o"), &cfg).unwrap();
        // 25 writes triples; rdf:type rows are filtered.
        assert_eq!(triples.len(), 25);
        // Pagination forced multiple requests.
        assert!(ep.stats().requests() >= 7);
    }

    #[test]
    fn multiple_subqueries_merge_and_dedup() {
        let kg = kg(8);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q1 = parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s a <Author> }").unwrap();
        let q2 = parse("SELECT ?s ?p ?o WHERE { ?s <writes> ?o . ?s ?p ?o }").unwrap();
        let triples = fetch_triples(
            &ep,
            &store,
            &[q1, q2],
            ("s", "p", "o"),
            &FetchConfig {
                batch_size: 100,
                threads: 2,
            },
        )
        .unwrap();
        assert_eq!(triples.len(), 8, "overlapping subqueries must dedup");
    }

    #[test]
    fn missing_triple_vars_error() {
        let kg = kg(3);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        let err = fetch_triples(&ep, &store, &[q], ("s", "p", "o"), &FetchConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn empty_subquery_list() {
        let kg = kg(3);
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let triples =
            fetch_triples(&ep, &store, &[], ("s", "p", "o"), &FetchConfig::default()).unwrap();
        assert!(triples.is_empty());
    }
}
