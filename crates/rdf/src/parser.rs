//! Recursive-descent parser for the SPARQL subset.

use crate::ast::{CompareOp, Constraint, Element, Group, Query, Selection, Term, TriplePattern};
use crate::error::RdfError;
use crate::lexer::{tokenize, Keyword, Token};

/// Parses a query string into a [`Query`].
pub fn parse(input: &str) -> Result<Query, RdfError> {
    let tokens = tokenize(input)?;
    Parser {
        tokens,
        pos: 0,
        prefixes: Vec::new(),
    }
    .parse_query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: Vec<(String, String)>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), RdfError> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(RdfError::parse(
                self.pos,
                format!("expected {kw:?}, found {other:?}"),
            )),
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), RdfError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(RdfError::parse(
                self.pos,
                format!("expected {tok:?}, found {other:?}"),
            )),
        }
    }

    fn parse_query(&mut self) -> Result<Query, RdfError> {
        while matches!(self.peek(), Some(Token::Keyword(Keyword::Prefix))) {
            self.parse_prefix()?;
        }
        self.expect_kw(Keyword::Select)?;
        let distinct = if matches!(self.peek(), Some(Token::Keyword(Keyword::Distinct))) {
            self.next();
            true
        } else {
            false
        };
        let select = self.parse_selection()?;
        // WHERE is optional in SPARQL.
        if matches!(self.peek(), Some(Token::Keyword(Keyword::Where))) {
            self.next();
        }
        self.expect(Token::LBrace)?;
        let group = self.parse_group()?;
        let (mut limit, mut offset) = (None, None);
        loop {
            match self.peek() {
                Some(Token::Keyword(Keyword::Limit)) => {
                    self.next();
                    limit = Some(self.parse_number()?);
                }
                Some(Token::Keyword(Keyword::Offset)) => {
                    self.next();
                    offset = Some(self.parse_number()?);
                }
                None => break,
                other => {
                    return Err(RdfError::parse(
                        self.pos,
                        format!("unexpected trailing token {other:?}"),
                    ))
                }
            }
        }
        Ok(Query {
            select,
            distinct,
            group,
            limit,
            offset,
        })
    }

    fn parse_prefix(&mut self) -> Result<(), RdfError> {
        self.expect_kw(Keyword::Prefix)?;
        let name = match self.next() {
            Some(Token::PName(p)) => p,
            other => {
                return Err(RdfError::parse(
                    self.pos,
                    format!("expected prefix name, found {other:?}"),
                ))
            }
        };
        let name = name.strip_suffix(':').unwrap_or(&name).to_string();
        let iri = match self.next() {
            Some(Token::Iri(i)) => i,
            other => {
                return Err(RdfError::parse(
                    self.pos,
                    format!("expected prefix IRI, found {other:?}"),
                ))
            }
        };
        self.prefixes.push((name, iri));
        Ok(())
    }

    fn parse_selection(&mut self) -> Result<Selection, RdfError> {
        match self.peek() {
            Some(Token::Star) => {
                self.next();
                Ok(Selection::All)
            }
            Some(Token::LParen) => {
                // (COUNT(*) AS ?v)
                self.next();
                self.expect_kw(Keyword::Count)?;
                self.expect(Token::LParen)?;
                self.expect(Token::Star)?;
                self.expect(Token::RParen)?;
                self.expect_kw(Keyword::As)?;
                match self.next() {
                    Some(Token::Var(_)) => {}
                    other => {
                        return Err(RdfError::parse(
                            self.pos,
                            format!("expected count variable, found {other:?}"),
                        ))
                    }
                }
                self.expect(Token::RParen)?;
                Ok(Selection::Count)
            }
            Some(Token::Var(_)) => {
                let mut vars = Vec::new();
                while let Some(Token::Var(v)) = self.peek() {
                    vars.push(v.clone());
                    self.next();
                }
                Ok(Selection::Vars(vars))
            }
            other => Err(RdfError::parse(
                self.pos,
                format!("expected projection, found {other:?}"),
            )),
        }
    }

    /// Parses a group body up to (not consuming past) its closing brace.
    fn parse_group(&mut self) -> Result<Group, RdfError> {
        let mut elements = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.next();
                    return Ok(Group { elements });
                }
                Some(Token::LBrace) => {
                    // `{ g1 } UNION { g2 } UNION ...`
                    self.next();
                    let first = self.parse_group()?;
                    let mut branches = vec![first];
                    while matches!(self.peek(), Some(Token::Keyword(Keyword::Union))) {
                        self.next();
                        self.expect(Token::LBrace)?;
                        branches.push(self.parse_group()?);
                    }
                    if branches.len() == 1 {
                        // A lone nested group is just its contents.
                        elements.extend(branches.pop().unwrap().elements);
                    } else {
                        elements.push(Element::Union(branches));
                    }
                }
                Some(Token::Dot) => {
                    self.next();
                }
                Some(Token::Keyword(Keyword::Filter)) => {
                    self.next();
                    self.expect(Token::LParen)?;
                    let left = self.parse_term()?;
                    let op = match self.next() {
                        Some(Token::Eq) => CompareOp::Eq,
                        Some(Token::Neq) => CompareOp::Neq,
                        other => {
                            return Err(RdfError::parse(
                                self.pos,
                                format!("expected = or != in FILTER, found {other:?}"),
                            ))
                        }
                    };
                    let right = self.parse_term()?;
                    self.expect(Token::RParen)?;
                    elements.push(Element::Filter(Constraint { left, op, right }));
                }
                Some(_) => {
                    let tp = self.parse_triple_pattern()?;
                    elements.push(Element::Pattern(tp));
                }
                None => {
                    return Err(RdfError::parse(self.pos, "unterminated group (missing '}')"))
                }
            }
        }
    }

    fn parse_triple_pattern(&mut self) -> Result<TriplePattern, RdfError> {
        let s = self.parse_term()?;
        let p = self.parse_term()?;
        let o = self.parse_term()?;
        Ok(TriplePattern::new(s, p, o))
    }

    fn parse_term(&mut self) -> Result<Term, RdfError> {
        match self.next() {
            Some(Token::Var(v)) => Ok(Term::Var(v)),
            Some(Token::Iri(i)) => Ok(Term::Const(i)),
            Some(Token::Literal(l)) => Ok(Term::Const(l)),
            Some(Token::A) => Ok(Term::Const(crate::store::RDF_TYPE.to_string())),
            Some(Token::PName(p)) => Ok(Term::Const(self.expand(&p))),
            other => Err(RdfError::parse(
                self.pos,
                format!("expected term, found {other:?}"),
            )),
        }
    }

    fn expand(&self, pname: &str) -> String {
        if let Some(colon) = pname.find(':') {
            let (prefix, local) = (&pname[..colon], &pname[colon + 1..]);
            if let Some((_, iri)) = self.prefixes.iter().find(|(p, _)| p == prefix) {
                return format!("{iri}{local}");
            }
        }
        pname.to_string()
    }

    fn parse_number(&mut self) -> Result<usize, RdfError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(RdfError::parse(
                self.pos,
                format!("expected number, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o . } LIMIT 10 OFFSET 5").unwrap();
        assert_eq!(q.projected_vars(), vec!["s", "o"]);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
        assert_eq!(q.group.elements.len(), 1);
    }

    #[test]
    fn parses_type_shorthand() {
        let q = parse("SELECT * WHERE { ?v a <Paper> }").unwrap();
        match &q.group.elements[0] {
            Element::Pattern(tp) => {
                assert_eq!(tp.p, Term::Const(crate::store::RDF_TYPE.to_string()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_union() {
        let q = parse(
            "SELECT * WHERE { { ?s ?p ?o } UNION { ?o ?p ?s } UNION { ?x a <C> } }",
        )
        .unwrap();
        match &q.group.elements[0] {
            Element::Union(branches) => assert_eq!(branches.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_query_d2h1_parses() {
        // The Q^{d2h1} query shape from §IV-C.
        let q = parse(
            "SELECT * WHERE { \
               ?v a <TargetType> . \
               { ?v ?pout ?out . } UNION { ?in ?pin ?v . } \
             }",
        )
        .unwrap();
        assert_eq!(q.group.elements.len(), 2);
        let vars = q.projected_vars();
        assert!(vars.contains(&"v".to_string()));
        assert!(vars.contains(&"in".to_string()));
    }

    #[test]
    fn nested_lone_group_flattens() {
        let q = parse("SELECT * WHERE { { ?s ?p ?o } }").unwrap();
        assert!(matches!(q.group.elements[0], Element::Pattern(_)));
    }

    #[test]
    fn prefix_expansion() {
        let q = parse(
            "PREFIX mag: <http://mag.org/> SELECT * WHERE { ?s mag:writes ?o }",
        )
        .unwrap();
        match &q.group.elements[0] {
            Element::Pattern(tp) => {
                assert_eq!(tp.p, Term::Const("http://mag.org/writes".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_selection() {
        let q = parse("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(q.select, Selection::Count);
    }

    #[test]
    fn distinct_flag() {
        let q = parse("SELECT DISTINCT * WHERE { ?s ?p ?o }").unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn literal_objects() {
        let q = parse("SELECT * WHERE { ?s <year> \"2024\" }").unwrap();
        match &q.group.elements[0] {
            Element::Pattern(tp) => assert_eq!(tp.o, Term::Const("2024".into())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT WHERE").is_err());
        assert!(parse("SELECT * WHERE { ?s ?p }").is_err());
        assert!(parse("SELECT * WHERE { ?s ?p ?o ").is_err());
        assert!(parse("SELECT * WHERE { ?s ?p ?o } EXTRA 1").is_err());
    }

    #[test]
    fn display_then_reparse() {
        let q = parse(
            "SELECT DISTINCT ?s WHERE { ?s a <Paper> . { ?s ?p ?o } UNION { ?o ?p ?s } } LIMIT 7",
        )
        .unwrap();
        let q2 = parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
