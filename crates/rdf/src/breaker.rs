//! A deterministic circuit breaker for [`SparqlEndpoint`] stacks.
//!
//! When the backend starts failing *permanently* (give-ups, fatal
//! errors), retrying harder only cascades the failure: every doomed
//! request still burns a worker for its full retry budget. The breaker
//! cuts that loop. It watches outcomes flowing through the endpoint and,
//! after `trip_threshold` consecutive failures, *opens*: subsequent
//! requests are rejected immediately with [`RdfError::BreakerOpen`],
//! without touching the backend. After a cooldown it *half-opens* and
//! lets exactly one probe request through; a successful probe closes the
//! breaker, a failed one re-opens it.
//!
//! **Determinism contract.** The repo's chaos tests replay fault
//! schedules at 1/4/8 threads and expect identical breaker trajectories,
//! so nothing in the state machine may depend on wall-clock time or
//! thread interleaving:
//!
//! * transitions are driven by *outcome counts*, not timers — the
//!   cooldown is "reject the next `k` requests", not "stay open for
//!   `t` ms";
//! * the cooldown length `k` is derived from the policy seed and the
//!   trip ordinal by seeded jitter (so concurrent breakers across
//!   endpoints don't half-open in lockstep, yet every run with the same
//!   seed rejects exactly as many requests);
//! * the whole state machine lives behind one mutex, so the transition
//!   log is a single total order.
//!
//! Under an all-fail or all-pass outcome regime (the regimes the chaos
//! suite uses), the trajectory is therefore a pure function of the
//! number of requests processed — independent of which worker processed
//! which request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::ast::Query;
use crate::endpoint::SparqlEndpoint;
use crate::error::RdfError;
use crate::exec::ResultSet;
use crate::fault::{mix64, request_key};

/// When the breaker trips and how long it stays open.
///
/// Parsed from a `--breaker` string of comma-separated `key=value`
/// pairs, e.g. `trip=5,cooldown=20,seed=7`:
///
/// | key        | meaning                                            | default |
/// |------------|----------------------------------------------------|---------|
/// | `trip`     | consecutive failures that open the breaker         | 5       |
/// | `cooldown` | nominal requests rejected before half-opening      | 16      |
/// | `seed`     | jitter seed for the per-trip cooldown length       | 7       |
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub trip_threshold: u32,
    /// Nominal number of rejected requests before a half-open probe; the
    /// actual per-trip length is jittered into `[cooldown/2, cooldown]`.
    pub cooldown_requests: u32,
    /// Seed of the deterministic cooldown jitter.
    pub seed: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self { trip_threshold: 5, cooldown_requests: 16, seed: 7 }
    }
}

impl BreakerPolicy {
    /// Parses a `--breaker` string; see the type docs for the grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut policy = BreakerPolicy::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("breaker entry {pair:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let int = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("breaker {key}={value:?}: expected an integer"))
            };
            match key {
                "trip" => policy.trip_threshold = int(value)? as u32,
                "cooldown" => policy.cooldown_requests = int(value)? as u32,
                "seed" => policy.seed = int(value)?,
                other => return Err(format!("unknown breaker key {other:?}")),
            }
        }
        if policy.trip_threshold == 0 {
            return Err("breaker trip must be >= 1".into());
        }
        if policy.cooldown_requests == 0 {
            return Err("breaker cooldown must be >= 1".into());
        }
        Ok(policy)
    }

    /// Cooldown length for the `trip`-th (1-based) open period: seeded
    /// jitter scales the nominal length into `[cooldown/2, cooldown]`,
    /// deterministically per (seed, trip ordinal).
    fn cooldown_for(&self, trip: u64) -> u32 {
        let nominal = self.cooldown_requests as u64;
        let jitter = mix64(self.seed ^ trip.wrapping_mul(0x9E37)) % (nominal / 2 + 1);
        (nominal - jitter) as u32
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow through; consecutive failures are counted.
    Closed,
    /// Requests are rejected without reaching the backend.
    Open,
    /// The next admitted request is a probe deciding open vs closed.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case label (`closed` / `open` / `half-open`).
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// One recorded state transition, for trajectory assertions and the
/// loadgen report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTransition {
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Requests observed (admitted + rejected) when the transition fired.
    pub at_request: u64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Consecutive failures while closed.
    consecutive_failures: u32,
    /// Requests rejected during the current open period.
    rejected_this_open: u32,
    /// Cooldown length of the current open period.
    cooldown: u32,
    /// Total requests observed (admission decisions taken).
    requests: u64,
    /// Total trips (closed/half-open → open), 1-based trip ordinal.
    trips: u64,
    /// Whether a half-open probe is currently in flight.
    probe_in_flight: bool,
    log: Vec<BreakerTransition>,
}

/// Cheap aggregate counters, mirrored into the `rdf.breaker.*` registry
/// family on every transition.
#[derive(Debug, Default)]
struct BreakerCounters {
    trips: AtomicU64,
    rejections: AtomicU64,
    probes: AtomicU64,
    closes: AtomicU64,
    reopens: AtomicU64,
}

/// A shared circuit breaker: clone it to compose the same state machine
/// around any number of endpoint stacks (all fetches of one serving
/// backend share one breaker).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    inner: Arc<Mutex<BreakerInner>>,
    counters: Arc<BreakerCounters>,
}

/// What the breaker decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Send the request; report the outcome back.
    Admit,
    /// Send the request as the half-open probe; its outcome decides the
    /// next state.
    Probe,
    /// Reject without sending.
    Reject,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            inner: Arc::new(Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                rejected_this_open: 0,
                cooldown: 0,
                requests: 0,
                trips: 0,
                probe_in_flight: false,
                log: Vec::new(),
            })),
            counters: Arc::new(BreakerCounters::default()),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Total trips so far.
    pub fn trips(&self) -> u64 {
        self.counters.trips.load(Ordering::Relaxed)
    }

    /// Requests rejected while open.
    pub fn rejections(&self) -> u64 {
        self.counters.rejections.load(Ordering::Relaxed)
    }

    /// Half-open probes sent.
    pub fn probes(&self) -> u64 {
        self.counters.probes.load(Ordering::Relaxed)
    }

    /// Successful probe closures.
    pub fn closes(&self) -> u64 {
        self.counters.closes.load(Ordering::Relaxed)
    }

    /// The ordered transition log since construction.
    pub fn transitions(&self) -> Vec<BreakerTransition> {
        self.lock().log.clone()
    }

    /// Renders the transition log as `closed->open@12` hops, the compact
    /// form the loadgen report and determinism tests compare.
    pub fn trajectory(&self) -> Vec<String> {
        self.lock()
            .log
            .iter()
            .map(|t| format!("{}->{}@{}", t.from.label(), t.to.label(), t.at_request))
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn transition(inner: &mut BreakerInner, to: BreakerState) {
        let from = inner.state;
        inner.log.push(BreakerTransition { from, to, at_request: inner.requests });
        inner.state = to;
        if kgtosa_obs::telemetry_active() {
            kgtosa_obs::emit_event(
                "rdf.breaker.transition",
                vec![
                    ("from".into(), kgtosa_obs::Json::Str(from.label().into())),
                    ("to".into(), kgtosa_obs::Json::Str(to.label().into())),
                    ("at_request".into(), kgtosa_obs::Json::Num(inner.requests as f64)),
                ],
            );
        }
    }

    fn admit(&self) -> Admission {
        let mut inner = self.lock();
        inner.requests += 1;
        match inner.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => {
                inner.rejected_this_open += 1;
                self.counters.rejections.fetch_add(1, Ordering::Relaxed);
                kgtosa_obs::counter("rdf.breaker.rejections").inc();
                if inner.rejected_this_open >= inner.cooldown {
                    Self::transition(&mut inner, BreakerState::HalfOpen);
                    inner.probe_in_flight = false;
                }
                Admission::Reject
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    // Only one probe at a time; everyone else keeps being
                    // rejected so a failing backend sees a single request.
                    self.counters.rejections.fetch_add(1, Ordering::Relaxed);
                    kgtosa_obs::counter("rdf.breaker.rejections").inc();
                    Admission::Reject
                } else {
                    inner.probe_in_flight = true;
                    self.counters.probes.fetch_add(1, Ordering::Relaxed);
                    kgtosa_obs::counter("rdf.breaker.probes").inc();
                    Admission::Probe
                }
            }
        }
    }

    fn trip(&self, inner: &mut BreakerInner) {
        inner.trips += 1;
        inner.cooldown = self.policy.cooldown_for(inner.trips);
        inner.rejected_this_open = 0;
        inner.consecutive_failures = 0;
        self.counters.trips.fetch_add(1, Ordering::Relaxed);
        kgtosa_obs::counter("rdf.breaker.trips").inc();
        Self::transition(inner, BreakerState::Open);
    }

    /// Records the outcome of an admitted (non-probe) request.
    fn record(&self, success: bool) {
        let mut inner = self.lock();
        if inner.state != BreakerState::Closed {
            // A stale outcome from before a concurrent trip: the breaker
            // already acted, don't double-count.
            return;
        }
        if success {
            inner.consecutive_failures = 0;
        } else {
            inner.consecutive_failures += 1;
            if inner.consecutive_failures >= self.policy.trip_threshold {
                self.trip(&mut inner);
            }
        }
    }

    /// Records the outcome of the half-open probe.
    fn record_probe(&self, success: bool) {
        let mut inner = self.lock();
        if inner.state != BreakerState::HalfOpen {
            return;
        }
        inner.probe_in_flight = false;
        if success {
            inner.consecutive_failures = 0;
            self.counters.closes.fetch_add(1, Ordering::Relaxed);
            kgtosa_obs::counter("rdf.breaker.closes").inc();
            Self::transition(&mut inner, BreakerState::Closed);
        } else {
            self.counters.reopens.fetch_add(1, Ordering::Relaxed);
            kgtosa_obs::counter("rdf.breaker.reopens").inc();
            self.trip(&mut inner);
        }
    }

    /// Wraps an endpoint so its outcomes drive this breaker and its
    /// requests are gated by it. The same breaker (cloned) can wrap many
    /// endpoint stacks.
    pub fn wrap<E: SparqlEndpoint>(&self, inner: E) -> BreakerEndpoint<E> {
        BreakerEndpoint { inner, breaker: self.clone() }
    }
}

/// A [`SparqlEndpoint`] gated by a [`CircuitBreaker`].
///
/// Composes *outside* the retry layer: the breaker sees give-ups and
/// fatal errors (the signals that the backend is truly failing), not the
/// individual transient attempts the retry layer absorbs. Deadline
/// give-ups do **not** count as backend failures — a caller with an
/// aggressive budget must not trip the breaker for everyone else.
pub struct BreakerEndpoint<E> {
    inner: E,
    breaker: CircuitBreaker,
}

impl<E> BreakerEndpoint<E> {
    /// The shared breaker driving this endpoint.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }
}

impl<E: SparqlEndpoint> SparqlEndpoint for BreakerEndpoint<E> {
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError> {
        match self.breaker.admit() {
            Admission::Reject => {
                let key = request_key(query);
                Err(RdfError::breaker_open(format!(
                    "request {key:016x} rejected while the backend is quarantined"
                )))
            }
            Admission::Admit => {
                let result = self.inner.select(query);
                self.breaker.record(outcome_is_success(&result));
                result
            }
            Admission::Probe => {
                let result = self.inner.select(query);
                self.breaker.record_probe(outcome_is_success(&result));
                result
            }
        }
    }
}

/// Whether an outcome counts as backend health for the breaker: `Ok` is
/// success; deadline exhaustion is *neutral* (treated as success so a
/// tight caller budget cannot quarantine a healthy backend); everything
/// else — give-ups, fatal errors, raw transients that escaped a retry
/// layer — is failure.
fn outcome_is_success(result: &Result<ResultSet, RdfError>) -> bool {
    match result {
        Ok(_) => true,
        Err(e) => e.is_deadline(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::store::RdfStore;
    use crate::InProcessEndpoint;
    use kgtosa_kg::KnowledgeGraph;

    fn kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..4 {
            kg.add_triple_terms(&format!("a{i}"), "Author", "writes", "p0", "Paper");
        }
        kg
    }

    struct FailingEndpoint;
    impl SparqlEndpoint for FailingEndpoint {
        fn select(&self, _q: &Query) -> Result<ResultSet, RdfError> {
            Err(RdfError::exec("backend down"))
        }
    }

    #[test]
    fn parse_spec() {
        let p = BreakerPolicy::parse("trip=3,cooldown=8,seed=11").unwrap();
        assert_eq!(p.trip_threshold, 3);
        assert_eq!(p.cooldown_requests, 8);
        assert_eq!(p.seed, 11);
        assert!(BreakerPolicy::parse("trip=0").is_err());
        assert!(BreakerPolicy::parse("cooldown=0").is_err());
        assert!(BreakerPolicy::parse("bogus=1").is_err());
        assert!(BreakerPolicy::parse("").is_ok());
    }

    #[test]
    fn trips_after_threshold_and_rejects_during_cooldown() {
        let policy = BreakerPolicy { trip_threshold: 3, cooldown_requests: 4, seed: 7 };
        let breaker = CircuitBreaker::new(policy);
        let ep = breaker.wrap(FailingEndpoint);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        for _ in 0..3 {
            let err = ep.select(&q).unwrap_err();
            assert!(!err.is_breaker_open(), "still closed: real errors pass through");
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.trips(), 1);
        let err = ep.select(&q).unwrap_err();
        assert!(err.is_breaker_open());
        assert!(breaker.rejections() >= 1);
    }

    #[test]
    fn successful_probe_closes_failed_probe_reopens() {
        let policy = BreakerPolicy { trip_threshold: 2, cooldown_requests: 2, seed: 3 };
        let cooldown1 = policy.cooldown_for(1);
        let kg = kg();
        let store = RdfStore::new(&kg);
        let good = InProcessEndpoint::new(&store);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();

        // Trip via the failing endpoint, then recover through the good one
        // — same breaker, two stacks (the serve daemon's shape).
        let breaker = CircuitBreaker::new(policy.clone());
        let bad_ep = breaker.wrap(FailingEndpoint);
        let good_ep = breaker.wrap(&good);
        for _ in 0..2 {
            bad_ep.select(&q).unwrap_err();
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        // Burn through the cooldown: each rejected request counts.
        for _ in 0..cooldown1 {
            assert!(good_ep.select(&q).unwrap_err().is_breaker_open());
        }
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // The probe goes through to the healthy backend and closes.
        let rs = good_ep.select(&q).unwrap();
        assert_eq!(rs.len(), 4);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.closes(), 1);
        assert_eq!(breaker.probes(), 1);

        // Same dance against a still-broken backend: the probe re-opens.
        let breaker2 = CircuitBreaker::new(policy);
        let bad2 = breaker2.wrap(FailingEndpoint);
        for _ in 0..2 {
            bad2.select(&q).unwrap_err();
        }
        for _ in 0..cooldown1 {
            bad2.select(&q).unwrap_err();
        }
        assert_eq!(breaker2.state(), BreakerState::HalfOpen);
        bad2.select(&q).unwrap_err();
        assert_eq!(breaker2.state(), BreakerState::Open);
        assert_eq!(breaker2.trips(), 2);
        assert_eq!(breaker2.closes(), 0);
    }

    #[test]
    fn deadline_outcomes_do_not_trip() {
        struct DeadlineEndpoint;
        impl SparqlEndpoint for DeadlineEndpoint {
            fn select(&self, _q: &Query) -> Result<ResultSet, RdfError> {
                Err(RdfError::deadline("budget gone"))
            }
        }
        let breaker = CircuitBreaker::new(BreakerPolicy {
            trip_threshold: 2,
            ..BreakerPolicy::default()
        });
        let ep = breaker.wrap(DeadlineEndpoint);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        for _ in 0..10 {
            assert!(ep.select(&q).unwrap_err().is_deadline());
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.trips(), 0);
    }

    #[test]
    fn cooldown_jitter_is_seeded_and_bounded() {
        let policy = BreakerPolicy { trip_threshold: 1, cooldown_requests: 16, seed: 9 };
        for trip in 1..50u64 {
            let c = policy.cooldown_for(trip);
            assert!((8..=16).contains(&c), "cooldown {c} out of [nominal/2, nominal]");
            assert_eq!(c, policy.cooldown_for(trip), "jitter must be deterministic");
        }
        // Different trips draw different cooldowns (jitter is real).
        let distinct: std::collections::HashSet<u32> =
            (1..50).map(|t| policy.cooldown_for(t)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn trajectory_renders_hops() {
        let breaker = CircuitBreaker::new(BreakerPolicy {
            trip_threshold: 1,
            cooldown_requests: 1,
            seed: 7,
        });
        let ep = breaker.wrap(FailingEndpoint);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        ep.select(&q).unwrap_err();
        let hops = breaker.trajectory();
        assert_eq!(hops, vec!["closed->open@1".to_string()]);
    }
}
