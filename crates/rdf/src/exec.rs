//! BGP execution: planning, nested-index-loop joins, UNION, pagination.
//!
//! The executor follows how lightweight RDF engines answer basic graph
//! patterns over a hexastore:
//!
//! 1. constants are resolved against the term dictionaries once,
//! 2. triple patterns are greedily reordered — most-bound / most-selective
//!    first, using `O(log m)` index counts as the cardinality estimate,
//! 3. each pattern is joined by an index range scan per intermediate row,
//! 4. `UNION` branches are evaluated per-row and concatenated (bag
//!    semantics), then `DISTINCT` / `OFFSET` / `LIMIT` apply to the
//!    projected rows.

use crate::ast::{CompareOp, Constraint, Element, Group, Query, Selection, Term, TriplePattern};
use crate::error::RdfError;
use crate::store::RdfStore;

/// Sentinel id representing an unbound (`NULL`) cell in a result row.
pub const NULL_ID: u32 = u32::MAX;

/// A table of query solutions. Rows are flat `u32` cells, `width` per row,
/// with [`NULL_ID`] marking unbound variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSet {
    /// Projected variable names, in column order.
    pub vars: Vec<String>,
    /// Per-column flag: the variable was bound in predicate position, so
    /// its ids decode in the relation space rather than the node space.
    pred_cols: Vec<bool>,
    width: usize,
    data: Vec<u32>,
}

impl ResultSet {
    fn new(vars: Vec<String>) -> Self {
        let width = vars.len();
        Self {
            pred_cols: vec![false; width],
            vars,
            width,
            data: Vec::new(),
        }
    }

    /// An empty result set over the given columns — the shape a mock or
    /// remote endpoint returns when a query has no solutions.
    pub fn with_vars(vars: Vec<String>) -> Self {
        Self::new(vars)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Column index of a variable.
    pub fn col(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.width.max(1))
    }

    /// Approximate heap footprint in bytes, for cache budget accounting:
    /// the cell table plus per-column metadata.
    pub fn approx_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
            + self.pred_cols.len()
            + self.vars.iter().map(|v| v.len() + 24).sum::<usize>()
    }

    /// Whether a column's ids live in the predicate space.
    pub fn is_predicate_col(&self, col: usize) -> bool {
        self.pred_cols.get(col).copied().unwrap_or(false)
    }

    /// Renders a row's terms for debugging/reporting, decoding each column
    /// in its id space (node vs predicate).
    pub fn row_terms<'a>(&'a self, store: &'a RdfStore<'_>, i: usize) -> Vec<&'a str> {
        self.row(i)
            .iter()
            .enumerate()
            .map(|(col, &id)| {
                if id == NULL_ID {
                    ""
                } else if self.is_predicate_col(col) {
                    store.pred_term_str(id)
                } else {
                    store.node_term_str(id)
                }
            })
            .collect()
    }
}

/// Flat intermediate binding table used during evaluation. The row count
/// is tracked explicitly so zero-width tables (queries without variables)
/// still represent "one empty solution" correctly.
struct Rows {
    width: usize,
    count: usize,
    data: Vec<u32>,
}

impl Rows {
    fn single_empty(width: usize) -> Self {
        Self {
            width,
            count: 1,
            data: vec![NULL_ID; width],
        }
    }

    fn empty(width: usize) -> Self {
        Self {
            width,
            count: 0,
            data: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.count
    }

    fn push_row(&mut self, row: &[u32]) {
        debug_assert_eq!(row.len(), self.width);
        self.data.extend_from_slice(row);
        self.count += 1;
    }

    fn iter(&self) -> RowsIter<'_> {
        RowsIter {
            data: &self.data,
            width: self.width,
            remaining: self.count,
        }
    }
}

/// Row iterator that also handles the zero-width case.
struct RowsIter<'a> {
    data: &'a [u32],
    width: usize,
    remaining: usize,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (row, rest) = self.data.split_at(self.width);
        self.data = rest;
        Some(row)
    }
}

/// One side of a compiled FILTER comparison.
enum FilterSide {
    /// A variable slot; `predicate` selects the id space it decodes in.
    Var { slot: usize, predicate: bool },
    /// A constant, pre-resolved in both id spaces.
    Const {
        node: Option<u32>,
        pred: Option<u32>,
        text: String,
    },
}

/// A compiled FILTER constraint.
struct CompiledFilter {
    left: FilterSide,
    op: CompareOp,
    right: FilterSide,
}

impl CompiledFilter {
    /// Evaluates the constraint against a binding row. Comparisons
    /// involving an unbound variable evaluate to false (SPARQL's
    /// error-means-excluded semantics).
    fn eval(&self, row: &[u32]) -> bool {
        let equal = match (&self.left, &self.right) {
            (FilterSide::Var { slot: a, .. }, FilterSide::Var { slot: b, .. }) => {
                if row[*a] == NULL_ID || row[*b] == NULL_ID {
                    return false;
                }
                Some(row[*a] == row[*b])
            }
            (FilterSide::Var { slot, predicate }, FilterSide::Const { node, pred, .. })
            | (FilterSide::Const { node, pred, .. }, FilterSide::Var { slot, predicate }) => {
                if row[*slot] == NULL_ID {
                    return false;
                }
                let resolved = if *predicate { *pred } else { *node };
                // An unresolvable constant cannot equal any bound value.
                Some(resolved == Some(row[*slot]))
            }
            (FilterSide::Const { text: a, .. }, FilterSide::Const { text: b, .. }) => {
                Some(a == b)
            }
        };
        match (equal, self.op) {
            (Some(eq), CompareOp::Eq) => eq,
            (Some(eq), CompareOp::Neq) => !eq,
            (None, _) => false,
        }
    }
}

/// A compiled pattern component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Comp {
    /// Resolved constant id.
    Const(u32),
    /// Variable slot in the binding row.
    Var(usize),
    /// A constant term not present in the dictionary: matches nothing.
    Unresolvable,
}

#[derive(Debug, Clone, Copy)]
struct CompiledPattern {
    s: Comp,
    p: Comp,
    o: Comp,
}

impl CompiledPattern {
    fn has_unresolvable(&self) -> bool {
        [self.s, self.p, self.o]
            .iter()
            .any(|c| matches!(c, Comp::Unresolvable))
    }
}

/// The query engine: borrows an [`RdfStore`] and evaluates parsed queries.
pub struct SparqlEngine<'s, 'kg> {
    store: &'s RdfStore<'kg>,
}

impl<'s, 'kg> SparqlEngine<'s, 'kg> {
    /// Creates an engine over a store.
    pub fn new(store: &'s RdfStore<'kg>) -> Self {
        Self { store }
    }

    /// Parses and executes a query string.
    pub fn execute_str(&self, query: &str) -> Result<ResultSet, RdfError> {
        let q = crate::parser::parse(query)?;
        self.execute(&q)
    }

    /// Executes a parsed query.
    pub fn execute(&self, query: &Query) -> Result<ResultSet, RdfError> {
        // Assign every variable in the query (plus projected-only vars) a slot.
        let mut vars = query.group.variables();
        if let Selection::Vars(vs) = &query.select {
            for v in vs {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.clone());
                }
            }
        }
        let width = vars.len();
        let pred_vars = Self::predicate_vars(&query.group);
        let pred_flags: Vec<bool> = vars
            .iter()
            .map(|v| pred_vars.iter().any(|pv| pv == v))
            .collect();
        let rows = self.eval_group(&query.group, Rows::single_empty(width), &vars, &pred_flags)?;

        if let Selection::Count = query.select {
            let mut rs = ResultSet::new(vec!["count".to_string()]);
            rs.data.push(rows.len() as u32);
            return Ok(rs);
        }

        // Project.
        let proj: Vec<usize> = match &query.select {
            Selection::All => (0..width).collect(),
            Selection::Vars(vs) => vs
                .iter()
                .map(|v| vars.iter().position(|x| x == v).expect("added above"))
                .collect(),
            Selection::Count => unreachable!(),
        };
        let proj_vars: Vec<String> = proj.iter().map(|&i| vars[i].clone()).collect();
        let mut rs = ResultSet::new(proj_vars);
        rs.pred_cols = proj.iter().map(|&i| pred_flags[i]).collect();
        rs.data.reserve(rows.len() * proj.len());
        for row in rows.iter() {
            for &i in &proj {
                rs.data.push(row[i]);
            }
        }

        if query.distinct && rs.width > 0 {
            let mut sorted: Vec<&[u32]> = rs.data.chunks_exact(rs.width).collect();
            sorted.sort_unstable();
            sorted.dedup();
            let mut deduped = Vec::with_capacity(sorted.len() * rs.width);
            for row in sorted {
                deduped.extend_from_slice(row);
            }
            rs.data = deduped;
        }

        // OFFSET then LIMIT over whole rows.
        let offset = query.offset.unwrap_or(0).min(rs.len());
        let limit = query.limit.unwrap_or(usize::MAX);
        let keep = rs.len().saturating_sub(offset).min(limit);
        if offset > 0 || keep < rs.len() {
            let start = offset * rs.width;
            let end = (offset + keep) * rs.width;
            rs.data = rs.data[start..end].to_vec();
        }
        Ok(rs)
    }

    /// Evaluates a group against every input row.
    fn eval_group(
        &self,
        group: &Group,
        input: Rows,
        vars: &[String],
        pred_flags: &[bool],
    ) -> Result<Rows, RdfError> {
        // Compile and split: joinable triple patterns, UNION elements, and
        // FILTER constraints (applied last, over the group's solutions).
        let mut patterns = Vec::new();
        let mut unions = Vec::new();
        let mut filters = Vec::new();
        for el in &group.elements {
            match el {
                Element::Pattern(tp) => patterns.push(self.compile(tp, vars)),
                Element::Union(branches) => unions.push(branches),
                Element::Filter(c) => filters.push(self.compile_filter(c, vars, pred_flags)),
            }
        }

        let mut rows = input;
        // Greedy join order over the patterns.
        let mut remaining: Vec<CompiledPattern> = patterns;
        let mut bound = self.initially_bound(&rows);
        while !remaining.is_empty() {
            let next = self.pick_next(&remaining, &bound);
            let pattern = remaining.swap_remove(next);
            rows = self.join_pattern(&pattern, rows)?;
            for comp in [pattern.s, pattern.p, pattern.o] {
                if let Comp::Var(i) = comp {
                    bound[i] = true;
                }
            }
            if rows.len() == 0 {
                // Short-circuit: the join is already empty.
                return Ok(rows);
            }
        }

        // Apply unions: each input row fans out across branches.
        for branches in unions {
            let width = rows.width;
            let mut out = Rows::empty(width);
            for row in rows.iter() {
                for branch in branches.iter() {
                    let seed = Rows {
                        width,
                        count: 1,
                        data: row.to_vec(),
                    };
                    let produced = self.eval_group(branch, seed, vars, pred_flags)?;
                    out.count += produced.count;
                    out.data.extend_from_slice(&produced.data);
                }
            }
            rows = out;
        }

        // Apply filters.
        if !filters.is_empty() {
            let width = rows.width;
            let mut out = Rows::empty(width);
            'rows: for row in rows.iter() {
                for f in &filters {
                    if !f.eval(row) {
                        continue 'rows;
                    }
                }
                out.push_row(row);
            }
            rows = out;
        }
        Ok(rows)
    }

    /// Compiles a FILTER constraint against the variable table.
    fn compile_filter(
        &self,
        c: &Constraint,
        vars: &[String],
        pred_flags: &[bool],
    ) -> CompiledFilter {
        let side = |t: &Term| -> FilterSide {
            match t {
                Term::Var(v) => {
                    let slot = vars.iter().position(|x| x == v).expect("collected");
                    FilterSide::Var {
                        slot,
                        predicate: pred_flags[slot],
                    }
                }
                Term::Const(text) => FilterSide::Const {
                    node: self.store.resolve_node_term(text),
                    pred: self.store.resolve_pred_term(text),
                    text: text.clone(),
                },
            }
        };
        CompiledFilter {
            left: side(&c.left),
            op: c.op,
            right: side(&c.right),
        }
    }

    fn initially_bound(&self, rows: &Rows) -> Vec<bool> {
        // A var is considered bound for planning if it is bound in the first
        // input row (all rows share binding shape for our query forms).
        match rows.iter().next() {
            Some(row) => row.iter().map(|&v| v != NULL_ID).collect(),
            None => vec![false; rows.width],
        }
    }

    fn compile(&self, tp: &TriplePattern, vars: &[String]) -> CompiledPattern {
        let slot = |name: &str| vars.iter().position(|v| v == name).expect("collected");
        let comp_node = |t: &Term| match t {
            Term::Var(v) => Comp::Var(slot(v)),
            Term::Const(c) => self
                .store
                .resolve_node_term(c)
                .map_or(Comp::Unresolvable, Comp::Const),
        };
        let comp_pred = |t: &Term| match t {
            Term::Var(v) => Comp::Var(slot(v)),
            Term::Const(c) => self
                .store
                .resolve_pred_term(c)
                .map_or(Comp::Unresolvable, Comp::Const),
        };
        CompiledPattern {
            s: comp_node(&tp.s),
            p: comp_pred(&tp.p),
            o: comp_node(&tp.o),
        }
    }

    /// Greedy planner step: choose the remaining pattern with the most bound
    /// components, breaking ties with the hexastore's O(log m) count using
    /// constants only.
    fn pick_next(&self, remaining: &[CompiledPattern], bound: &[bool]) -> usize {
        let mut best = 0usize;
        let mut best_key = (usize::MAX, usize::MAX);
        for (i, pat) in remaining.iter().enumerate() {
            let is_bound = |c: &Comp| match c {
                Comp::Const(_) | Comp::Unresolvable => true,
                Comp::Var(v) => bound[*v],
            };
            let unbound = [&pat.s, &pat.p, &pat.o]
                .iter()
                .filter(|c| !is_bound(c))
                .count();
            let const_of = |c: &Comp| match c {
                Comp::Const(id) => Some(*id),
                _ => None,
            };
            let estimate = if pat.has_unresolvable() {
                0
            } else {
                self.store.hexastore().count(
                    const_of(&pat.s),
                    const_of(&pat.p),
                    const_of(&pat.o),
                )
            };
            let key = (unbound, estimate);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Joins one pattern against all rows via index scans.
    fn join_pattern(&self, pat: &CompiledPattern, rows: Rows) -> Result<Rows, RdfError> {
        let mut out = Rows::empty(rows.width);
        if pat.has_unresolvable() {
            return Ok(out);
        }
        let hex = self.store.hexastore();
        for row in rows.iter() {
            let fix = |c: Comp| -> Option<u32> {
                match c {
                    Comp::Const(id) => Some(id),
                    Comp::Var(i) => (row[i] != NULL_ID).then_some(row[i]),
                    Comp::Unresolvable => unreachable!("checked above"),
                }
            };
            let (s, p, o) = (fix(pat.s), fix(pat.p), fix(pat.o));
            for [ts, tp, to] in hex.scan(s, p, o) {
                let mut new_row = row.to_vec();
                if Self::bind(&mut new_row, pat.s, ts)
                    && Self::bind(&mut new_row, pat.p, tp)
                    && Self::bind(&mut new_row, pat.o, to)
                {
                    out.push_row(&new_row);
                }
            }
        }
        Ok(out)
    }

    /// Collects variables that appear in predicate position anywhere in the
/// group (including nested UNION branches).
fn predicate_vars(group: &Group) -> Vec<String> {
    fn walk(group: &Group, out: &mut Vec<String>) {
        for el in &group.elements {
            match el {
                Element::Pattern(tp) => {
                    if let Term::Var(v) = &tp.p {
                        if !out.iter().any(|x| x == v) {
                            out.push(v.clone());
                        }
                    }
                }
                Element::Union(branches) => {
                    for b in branches {
                        walk(b, out);
                    }
                }
                Element::Filter(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(group, &mut out);
    out
}

/// Binds a variable slot, verifying repeated-variable consistency.
    #[inline]
    fn bind(row: &mut [u32], comp: Comp, value: u32) -> bool {
        match comp {
            Comp::Var(i) => {
                if row[i] == NULL_ID {
                    row[i] = value;
                    true
                } else {
                    row[i] == value
                }
            }
            Comp::Const(c) => c == value,
            Comp::Unresolvable => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgtosa_kg::KnowledgeGraph;

    fn kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("a1", "Author", "writes", "p1", "Paper");
        kg.add_triple_terms("a1", "Author", "writes", "p2", "Paper");
        kg.add_triple_terms("a2", "Author", "writes", "p2", "Paper");
        kg.add_triple_terms("p1", "Paper", "publishedIn", "v1", "Venue");
        kg.add_triple_terms("p2", "Paper", "publishedIn", "v1", "Venue");
        kg.add_triple_terms("p1", "Paper", "cites", "p2", "Paper");
        kg
    }

    fn run(kg: &KnowledgeGraph, q: &str) -> ResultSet {
        let store = RdfStore::new(kg);
        let engine = SparqlEngine::new(&store);
        engine.execute_str(q).unwrap()
    }

    #[test]
    fn single_pattern_by_predicate() {
        let kg = kg();
        let rs = run(&kg, "SELECT ?s ?o WHERE { ?s <writes> ?o }");
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn type_anchored_star() {
        let kg = kg();
        let rs = run(&kg, "SELECT ?v ?p ?o WHERE { ?v a <Paper> . ?v ?p ?o }");
        // p1: publishedIn v1, cites p2, rdf:type Paper → 3
        // p2: publishedIn v1, rdf:type Paper → 2
        assert_eq!(rs.len(), 5);
    }

    #[test]
    fn join_two_hops() {
        let kg = kg();
        let rs = run(
            &kg,
            "SELECT ?a ?v WHERE { ?a <writes> ?x . ?x <publishedIn> ?v }",
        );
        // a1→p1→v1, a1→p2→v1, a2→p2→v1
        assert_eq!(rs.len(), 3);
        let store = RdfStore::new(&kg);
        let terms = rs.row_terms(&store, 0);
        assert_eq!(terms.len(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let kg = kg();
        let rs = run(
            &kg,
            "SELECT DISTINCT ?v WHERE { ?a <writes> ?x . ?x <publishedIn> ?v }",
        );
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn union_concatenates() {
        let kg = kg();
        let rs = run(
            &kg,
            "SELECT * WHERE { ?v a <Paper> . { ?v <publishedIn> ?o } UNION { ?i <cites> ?v } }",
        );
        // Branch 1: p1→v1, p2→v1. Branch 2: p1 cites p2 (v=p2).
        assert_eq!(rs.len(), 3);
        // Unbound cells are NULL.
        let o_col = rs.col("o").unwrap();
        let nulls = rs.rows().filter(|r| r[o_col] == NULL_ID).count();
        assert_eq!(nulls, 1);
    }

    #[test]
    fn limit_offset_paginate() {
        let kg = kg();
        let all = run(&kg, "SELECT ?s ?o WHERE { ?s <writes> ?o }");
        let page1 = run(&kg, "SELECT ?s ?o WHERE { ?s <writes> ?o } LIMIT 2 OFFSET 0");
        let page2 = run(&kg, "SELECT ?s ?o WHERE { ?s <writes> ?o } LIMIT 2 OFFSET 2");
        assert_eq!(page1.len(), 2);
        assert_eq!(page2.len(), 1);
        let mut merged: Vec<Vec<u32>> = page1
            .rows()
            .chain(page2.rows())
            .map(|r| r.to_vec())
            .collect();
        let mut expect: Vec<Vec<u32>> = all.rows().map(|r| r.to_vec()).collect();
        merged.sort();
        expect.sort();
        assert_eq!(merged, expect);
    }

    #[test]
    fn count_query() {
        let kg = kg();
        let rs = run(&kg, "SELECT (COUNT(*) AS ?c) WHERE { ?s <writes> ?o }");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.row(0)[0], 3);
    }

    #[test]
    fn unknown_constant_matches_nothing() {
        let kg = kg();
        let rs = run(&kg, "SELECT * WHERE { ?s <nonexistent> ?o }");
        assert!(rs.is_empty());
    }

    #[test]
    fn repeated_variable_must_match() {
        let mut kg = kg();
        // self-citation p3 cites p3
        let p3 = kg.add_node("p3", "Paper");
        let cites = kg.find_relation("cites").unwrap();
        kg.add_triple(p3, cites, p3);
        let rs = run(&kg, "SELECT ?x WHERE { ?x <cites> ?x }");
        assert_eq!(rs.len(), 1);
        let store = RdfStore::new(&kg);
        assert_eq!(rs.row_terms(&store, 0), vec!["p3"]);
    }

    #[test]
    fn projection_of_missing_var_is_null() {
        let kg = kg();
        let rs = run(&kg, "SELECT ?s ?ghost WHERE { ?s <cites> ?o }");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.row(0)[1], NULL_ID);
    }

    #[test]
    fn empty_group_yields_single_empty_row_projected() {
        let kg = kg();
        let rs = run(&kg, "SELECT (COUNT(*) AS ?c) WHERE { }");
        assert_eq!(rs.row(0)[0], 1);
    }

    #[test]
    fn filter_equality_with_constant() {
        let kg = kg();
        let rs = run(
            &kg,
            "SELECT ?x ?v WHERE { ?x <publishedIn> ?v . FILTER (?x = <p1>) }",
        );
        assert_eq!(rs.len(), 1);
        let store = RdfStore::new(&kg);
        assert_eq!(rs.row_terms(&store, 0), vec!["p1", "v1"]);
    }

    #[test]
    fn filter_inequality_between_vars() {
        let kg = kg();
        // Pairs of papers in the same venue, excluding self-pairs.
        let all = run(
            &kg,
            "SELECT ?a ?b WHERE { ?a <publishedIn> ?v . ?b <publishedIn> ?v }",
        );
        let distinct_pairs = run(
            &kg,
            "SELECT ?a ?b WHERE { ?a <publishedIn> ?v . ?b <publishedIn> ?v . FILTER (?a != ?b) }",
        );
        assert_eq!(all.len(), 4); // (p1,p1),(p1,p2),(p2,p1),(p2,p2)
        assert_eq!(distinct_pairs.len(), 2);
    }

    #[test]
    fn filter_on_predicate_variable() {
        let kg = kg();
        let rs = run(
            &kg,
            "SELECT ?p ?o WHERE { ?s ?p ?o . ?s a <Paper> . FILTER (?p = <cites>) }",
        );
        assert_eq!(rs.len(), 1);
        let store = RdfStore::new(&kg);
        assert_eq!(rs.row_terms(&store, 0)[0], "cites");
    }

    #[test]
    fn filter_with_unknown_constant() {
        let kg = kg();
        let eq = run(&kg, "SELECT ?s WHERE { ?s <writes> ?o . FILTER (?s = <ghost>) }");
        assert!(eq.is_empty());
        let neq = run(&kg, "SELECT ?s WHERE { ?s <writes> ?o . FILTER (?s != <ghost>) }");
        assert_eq!(neq.len(), 3, "everything differs from an unknown term");
    }

    #[test]
    fn filter_roundtrips_through_display() {
        let q = crate::parser::parse(
            "SELECT * WHERE { ?s ?p ?o . FILTER (?s != <x>) FILTER (?p = ?p) }",
        )
        .unwrap();
        let reparsed = crate::parser::parse(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn predicate_vars_decode_in_relation_space() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let engine = SparqlEngine::new(&store);
        let rs = engine
            .execute_str("SELECT ?p ?o WHERE { ?s a <Venue> . ?x ?p ?s . ?x <cites> ?o }")
            .unwrap();
        assert!(rs.is_predicate_col(rs.col("p").unwrap()));
        assert!(!rs.is_predicate_col(rs.col("o").unwrap()));
        let terms = rs.row_terms(&store, 0);
        assert_eq!(terms[0], "publishedIn");
        assert!(terms[1].starts_with('p'), "object decodes as a node: {terms:?}");
    }

    #[test]
    fn planner_prefers_selective_pattern() {
        // Correctness check regardless of order: anchored join returns the
        // same rows written either way.
        let kg = kg();
        let a = run(&kg, "SELECT ?x WHERE { ?x a <Venue> . ?p <publishedIn> ?x }");
        let b = run(&kg, "SELECT ?x WHERE { ?p <publishedIn> ?x . ?x a <Venue> }");
        assert_eq!(a.len(), b.len());
    }
}
