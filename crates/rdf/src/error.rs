//! Error types for the RDF engine.

use std::fmt;

/// Errors raised while parsing or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Lexical or syntactic error at a byte offset.
    Parse {
        /// Byte offset into the query string.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Semantic or runtime execution error.
    Exec(String),
    /// Transient endpoint failure (timeout, connection drop, rate limit):
    /// the same request may succeed if retried. Parse/Exec errors are fatal
    /// — resending an ill-formed query cannot help.
    Transient(String),
    /// The request's wall-clock budget ran out (or the remaining budget
    /// could not cover the next backoff sleep). Not retryable: a doomed
    /// request must stop burning the pool, not time out at the socket.
    Deadline(String),
    /// The circuit breaker is open: the backend has been failing and the
    /// request was rejected *without* being sent. Not retryable through
    /// the same breaker — callers degrade (e.g. to cache-only answers)
    /// or fail fast instead of cascading.
    BreakerOpen(String),
}

impl RdfError {
    /// Builds a parse error.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        RdfError::Parse {
            offset,
            message: message.into(),
        }
    }

    /// Builds an execution error.
    pub fn exec(message: impl Into<String>) -> Self {
        RdfError::Exec(message.into())
    }

    /// Builds a transient (retryable) error.
    pub fn transient(message: impl Into<String>) -> Self {
        RdfError::Transient(message.into())
    }

    /// Builds a deadline-exceeded error.
    pub fn deadline(message: impl Into<String>) -> Self {
        RdfError::Deadline(message.into())
    }

    /// Builds a breaker-open rejection.
    pub fn breaker_open(message: impl Into<String>) -> Self {
        RdfError::BreakerOpen(message.into())
    }

    /// Classifies the error for retry purposes: `true` means the request
    /// may succeed on resend, `false` means retrying is pointless.
    pub fn is_transient(&self) -> bool {
        matches!(self, RdfError::Transient(_))
    }

    /// Whether the error is a deadline-budget exhaustion.
    pub fn is_deadline(&self) -> bool {
        matches!(self, RdfError::Deadline(_))
    }

    /// Whether the error is a circuit-breaker rejection (the request was
    /// never sent to the backend).
    pub fn is_breaker_open(&self) -> bool {
        matches!(self, RdfError::BreakerOpen(_))
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            RdfError::Exec(message) => write!(f, "execution error: {message}"),
            RdfError::Transient(message) => write!(f, "transient endpoint error: {message}"),
            RdfError::Deadline(message) => write!(f, "deadline exceeded: {message}"),
            RdfError::BreakerOpen(message) => write!(f, "circuit breaker open: {message}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RdfError::parse(4, "oops");
        assert_eq!(e.to_string(), "parse error at byte 4: oops");
        let e = RdfError::exec("bad");
        assert_eq!(e.to_string(), "execution error: bad");
        let e = RdfError::transient("timeout");
        assert_eq!(e.to_string(), "transient endpoint error: timeout");
    }

    #[test]
    fn transient_classification() {
        assert!(RdfError::transient("x").is_transient());
        assert!(!RdfError::exec("x").is_transient());
        assert!(!RdfError::parse(0, "x").is_transient());
    }
}
