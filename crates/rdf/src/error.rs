//! Error types for the RDF engine.

use std::fmt;

/// Errors raised while parsing or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Lexical or syntactic error at a byte offset.
    Parse {
        /// Byte offset into the query string.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Semantic or runtime execution error.
    Exec(String),
}

impl RdfError {
    /// Builds a parse error.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        RdfError::Parse {
            offset,
            message: message.into(),
        }
    }

    /// Builds an execution error.
    pub fn exec(message: impl Into<String>) -> Self {
        RdfError::Exec(message.into())
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            RdfError::Exec(message) => write!(f, "execution error: {message}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RdfError::parse(4, "oops");
        assert_eq!(e.to_string(), "parse error at byte 4: oops");
        let e = RdfError::exec("bad");
        assert_eq!(e.to_string(), "execution error: bad");
    }
}
