//! Error types for the RDF engine.

use std::fmt;

/// Errors raised while parsing or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Lexical or syntactic error at a byte offset.
    Parse {
        /// Byte offset into the query string.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Semantic or runtime execution error.
    Exec(String),
    /// Transient endpoint failure (timeout, connection drop, rate limit):
    /// the same request may succeed if retried. Parse/Exec errors are fatal
    /// — resending an ill-formed query cannot help.
    Transient(String),
}

impl RdfError {
    /// Builds a parse error.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        RdfError::Parse {
            offset,
            message: message.into(),
        }
    }

    /// Builds an execution error.
    pub fn exec(message: impl Into<String>) -> Self {
        RdfError::Exec(message.into())
    }

    /// Builds a transient (retryable) error.
    pub fn transient(message: impl Into<String>) -> Self {
        RdfError::Transient(message.into())
    }

    /// Classifies the error for retry purposes: `true` means the request
    /// may succeed on resend, `false` means retrying is pointless.
    pub fn is_transient(&self) -> bool {
        matches!(self, RdfError::Transient(_))
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            RdfError::Exec(message) => write!(f, "execution error: {message}"),
            RdfError::Transient(message) => write!(f, "transient endpoint error: {message}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RdfError::parse(4, "oops");
        assert_eq!(e.to_string(), "parse error at byte 4: oops");
        let e = RdfError::exec("bad");
        assert_eq!(e.to_string(), "execution error: bad");
        let e = RdfError::transient("timeout");
        assert_eq!(e.to_string(), "transient endpoint error: timeout");
    }

    #[test]
    fn transient_classification() {
        assert!(RdfError::transient("x").is_transient());
        assert!(!RdfError::exec("x").is_transient());
        assert!(!RdfError::parse(0, "x").is_transient());
    }
}
