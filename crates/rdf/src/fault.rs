//! Deterministic fault injection for [`SparqlEndpoint`] implementations.
//!
//! A real deployment of Algorithm 3 talks to a live RDF endpoint over HTTP,
//! where requests time out, get rate-limited, or land on a slow replica.
//! [`FaultyEndpoint`] reproduces that failure surface *deterministically*:
//! a [`FaultPlan`] derives, from a seed and the rendered query text, a
//! reproducible schedule of injected transient errors and latency spikes
//! per logical request. Keying the schedule on the request (rather than on
//! a global call counter) keeps it independent of worker interleaving, so
//! a chaos run is reproducible at any thread count — which is what lets
//! the fault-tolerance property tests compare faulty and fault-free
//! fetches bit for bit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::ast::Query;
use crate::endpoint::SparqlEndpoint;
use crate::error::RdfError;
use crate::exec::ResultSet;

/// FNV-1a over the rendered query: the stable identity of a logical
/// request (two pages of one subquery render differently, so they get
/// independent fault draws).
pub(crate) fn request_key(query: &Query) -> u64 {
    fnv64(query.to_string().as_bytes())
}

pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One round of splitmix64: a cheap avalanche mixer for deriving
/// independent per-request decisions from a seed.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform fraction in `[0, 1)` from a hash value.
pub(crate) fn unit_frac(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_FAULT: u64 = 0x11;
const SALT_BURST: u64 = 0x22;
const SALT_FATAL: u64 = 0x33;
const SALT_LATENCY: u64 = 0x44;

/// A seeded, reproducible schedule of injected faults.
///
/// Parsed from a `--fault-spec` string of comma-separated `key=value`
/// pairs, e.g. `seed=7,rate=0.3,burst=2,latency-rate=0.1,latency-us=200`:
///
/// | key            | meaning                                                | default |
/// |----------------|--------------------------------------------------------|---------|
/// | `seed`         | seed of the schedule                                   | 7       |
/// | `rate`         | fraction of requests that fail at least once           | 0.2     |
/// | `burst`        | max consecutive transient failures per request         | 2       |
/// | `fatal-rate`   | fraction of requests that fail *permanently*           | 0.0     |
/// | `latency-rate` | fraction of requests hit by a latency spike            | 0.0     |
/// | `latency-us`   | spike duration in microseconds                         | 0       |
///
/// A request selected for transient failure fails its first 1..=`burst`
/// issues and then succeeds, so any retry policy with more than `burst`
/// attempts is guaranteed to get through — that is the "faults below the
/// give-up threshold" regime of the acceptance tests. Fatal faults fail
/// on every issue and model a permanently broken page (only survivable in
/// partial-fetch mode).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the reproducible schedule.
    pub seed: u64,
    /// Fraction of logical requests that fail at least once.
    pub fault_rate: f64,
    /// Maximum consecutive injected transient failures per request.
    pub max_burst: u32,
    /// Fraction of logical requests whose failure is permanent (fatal).
    pub fatal_rate: f64,
    /// Fraction of logical requests hit by a latency spike (first issue).
    pub latency_rate: f64,
    /// Latency spike duration in microseconds.
    pub latency_us: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 7,
            fault_rate: 0.2,
            max_burst: 2,
            fatal_rate: 0.0,
            latency_rate: 0.0,
            latency_us: 0,
        }
    }
}

/// The plan's verdict for one issue of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Pass the request through to the inner endpoint.
    Pass,
    /// Inject a transient error (retry will eventually succeed).
    Transient,
    /// Inject a fatal error (every retry fails too).
    Fatal,
}

impl FaultPlan {
    /// Parses a `--fault-spec` string; see the type docs for the grammar.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault-spec entry {pair:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("fault-spec {key}={value:?}: expected {what}");
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| bad("an integer"))?,
                "rate" => plan.fault_rate = parse_rate(value).ok_or_else(|| bad("0..=1"))?,
                "burst" => plan.max_burst = value.parse().map_err(|_| bad("an integer"))?,
                "fatal-rate" => plan.fatal_rate = parse_rate(value).ok_or_else(|| bad("0..=1"))?,
                "latency-rate" => {
                    plan.latency_rate = parse_rate(value).ok_or_else(|| bad("0..=1"))?
                }
                "latency-us" => plan.latency_us = value.parse().map_err(|_| bad("an integer"))?,
                other => return Err(format!("unknown fault-spec key {other:?}")),
            }
        }
        if plan.max_burst == 0 {
            return Err("fault-spec burst must be >= 1".into());
        }
        Ok(plan)
    }

    /// Number of injected transient failures scheduled for a request
    /// (0 if the request is not selected for failure).
    fn burst_for(&self, key: u64) -> u32 {
        if unit_frac(mix64(self.seed ^ key ^ SALT_FAULT)) < self.fault_rate {
            1 + (mix64(self.seed ^ key ^ SALT_BURST) % self.max_burst as u64) as u32
        } else {
            0
        }
    }

    fn is_fatal(&self, key: u64) -> bool {
        unit_frac(mix64(self.seed ^ key ^ SALT_FATAL)) < self.fatal_rate
    }

    fn latency_spike(&self, key: u64) -> Option<Duration> {
        if self.latency_us > 0 && unit_frac(mix64(self.seed ^ key ^ SALT_LATENCY)) < self.latency_rate
        {
            Some(Duration::from_micros(self.latency_us))
        } else {
            None
        }
    }

    /// The scheduled outcome for the `issue`-th (1-based) send of the
    /// request identified by `key`.
    pub fn decide(&self, key: u64, issue: u32) -> FaultDecision {
        if self.is_fatal(key) {
            FaultDecision::Fatal
        } else if issue <= self.burst_for(key) {
            FaultDecision::Transient
        } else {
            FaultDecision::Pass
        }
    }
}

fn parse_rate(value: &str) -> Option<f64> {
    let rate: f64 = value.parse().ok()?;
    (0.0..=1.0).contains(&rate).then_some(rate)
}

/// A [`SparqlEndpoint`] wrapper that injects the faults a [`FaultPlan`]
/// schedules, standing in for a flaky network/endpoint in chaos tests.
pub struct FaultyEndpoint<E> {
    inner: E,
    plan: FaultPlan,
    /// Issue count per request key — how many times each logical request
    /// has been sent (retries included).
    issues: Mutex<HashMap<u64, u32>>,
    injected: AtomicU64,
}

impl<E: SparqlEndpoint> FaultyEndpoint<E> {
    /// Wraps an endpoint under a fault plan.
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            issues: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of faults injected so far (latency spikes not included).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped endpoint.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: SparqlEndpoint> SparqlEndpoint for FaultyEndpoint<E> {
    fn select(&self, query: &Query) -> Result<ResultSet, RdfError> {
        let key = request_key(query);
        let issue = {
            let mut issues = self.issues.lock().unwrap_or_else(|e| e.into_inner());
            let n = issues.entry(key).or_insert(0);
            *n += 1;
            *n
        };
        if issue == 1 {
            if let Some(spike) = self.plan.latency_spike(key) {
                kgtosa_obs::counter("rdf.faults.latency").inc();
                std::thread::sleep(spike);
            }
        }
        match self.plan.decide(key, issue) {
            FaultDecision::Pass => self.inner.select(query),
            FaultDecision::Transient => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                kgtosa_obs::counter("rdf.faults").inc();
                Err(RdfError::transient(format!(
                    "injected fault (request {key:016x}, issue {issue})"
                )))
            }
            FaultDecision::Fatal => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                kgtosa_obs::counter("rdf.faults").inc();
                Err(RdfError::exec(format!(
                    "injected fatal fault (request {key:016x})"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::store::RdfStore;
    use crate::InProcessEndpoint;
    use kgtosa_kg::KnowledgeGraph;

    fn kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..5 {
            kg.add_triple_terms(&format!("a{i}"), "Author", "writes", "p0", "Paper");
        }
        kg
    }

    #[test]
    fn parse_spec_roundtrip() {
        let plan = FaultPlan::parse("seed=9,rate=0.5,burst=3,latency-rate=0.25,latency-us=50")
            .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.fault_rate, 0.5);
        assert_eq!(plan.max_burst, 3);
        assert_eq!(plan.latency_us, 50);
        assert!(FaultPlan::parse("nope=1").is_err());
        assert!(FaultPlan::parse("rate=2.0").is_err());
        assert!(FaultPlan::parse("burst=0").is_err());
        assert!(FaultPlan::parse("").is_ok());
    }

    #[test]
    fn schedule_is_reproducible_and_bounded() {
        let plan = FaultPlan {
            fault_rate: 0.9,
            max_burst: 3,
            ..FaultPlan::default()
        };
        for key in 0..200u64 {
            let burst = (1..=8)
                .take_while(|&i| plan.decide(key, i) == FaultDecision::Transient)
                .count() as u32;
            assert!(burst <= 3, "burst exceeds max_burst");
            // After the burst, every later issue passes.
            for issue in burst + 1..burst + 4 {
                assert_eq!(plan.decide(key, issue), FaultDecision::Pass);
            }
        }
    }

    #[test]
    fn transient_faults_then_success() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let plan = FaultPlan {
            fault_rate: 1.0,
            max_burst: 2,
            ..FaultPlan::default()
        };
        let faulty = FaultyEndpoint::new(&ep, plan.clone());
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        let mut failures = 0;
        loop {
            match faulty.select(&q) {
                Ok(rs) => {
                    assert_eq!(rs.len(), 5);
                    break;
                }
                Err(e) => {
                    assert!(e.is_transient());
                    failures += 1;
                    assert!(failures <= plan.max_burst, "fault burst not bounded");
                }
            }
        }
        assert!(failures >= 1, "rate=1.0 must fault at least once");
        assert_eq!(faulty.injected(), failures as u64);
    }

    #[test]
    fn fatal_faults_never_recover() {
        let kg = kg();
        let store = RdfStore::new(&kg);
        let ep = InProcessEndpoint::new(&store);
        let plan = FaultPlan {
            fault_rate: 1.0,
            fatal_rate: 1.0,
            ..FaultPlan::default()
        };
        let faulty = FaultyEndpoint::new(&ep, plan);
        let q = parse("SELECT ?s ?o WHERE { ?s <writes> ?o }").unwrap();
        for _ in 0..5 {
            let err = faulty.select(&q).unwrap_err();
            assert!(!err.is_transient());
        }
    }
}
