//! Sextuple-indexed triple storage ("hexastore", Weiss et al. VLDB'08).
//!
//! The paper's SPARQL-based extraction method leans on the fact that RDF
//! engines maintain *six* built-in orderings of the triple table — one per
//! permutation of (subject, predicate, object) — so any triple pattern with
//! any subset of bound components resolves to a single binary-searchable
//! range. This module reproduces exactly that: six sorted `[u32; 3]` arrays
//! in permuted key order plus prefix range scans.

use std::ops::Range;

/// The six component orderings. The name lists the sort key order; e.g.
/// [`Order::Pos`] sorts by predicate, then object, then subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    /// subject, predicate, object
    Spo,
    /// subject, object, predicate
    Sop,
    /// predicate, subject, object
    Pso,
    /// predicate, object, subject
    Pos,
    /// object, subject, predicate
    Osp,
    /// object, predicate, subject
    Ops,
}

impl Order {
    /// All orderings.
    pub const ALL: [Order; 6] = [
        Order::Spo,
        Order::Sop,
        Order::Pso,
        Order::Pos,
        Order::Osp,
        Order::Ops,
    ];

    /// Maps an `(s, p, o)` triple into this ordering's key layout.
    #[inline]
    pub fn permute(self, t: [u32; 3]) -> [u32; 3] {
        let [s, p, o] = t;
        match self {
            Order::Spo => [s, p, o],
            Order::Sop => [s, o, p],
            Order::Pso => [p, s, o],
            Order::Pos => [p, o, s],
            Order::Osp => [o, s, p],
            Order::Ops => [o, p, s],
        }
    }

    /// Inverse of [`Order::permute`]: recovers `(s, p, o)` from key layout.
    #[inline]
    pub fn unpermute(self, k: [u32; 3]) -> [u32; 3] {
        let [a, b, c] = k;
        match self {
            Order::Spo => [a, b, c],
            Order::Sop => [a, c, b],
            Order::Pso => [b, a, c],
            Order::Pos => [c, a, b],
            Order::Osp => [b, c, a],
            Order::Ops => [c, b, a],
        }
    }

    /// Picks the ordering whose key prefix covers exactly the bound
    /// components of a pattern, so matching triples form one contiguous run.
    ///
    /// `bound = (s?, p?, o?)` flags which components are constants.
    pub fn for_bound(s: bool, p: bool, o: bool) -> Order {
        match (s, p, o) {
            // Fully bound or fully unbound: any order works; SPO is canonical.
            (true, true, true) | (false, false, false) => Order::Spo,
            (true, true, false) => Order::Spo,
            (true, false, true) => Order::Sop,
            (true, false, false) => Order::Spo,
            (false, true, true) => Order::Pos,
            (false, true, false) => Order::Pso,
            (false, false, true) => Order::Osp,
        }
    }

    /// Number of leading key components a pattern with these bound flags
    /// pins down in this ordering.
    fn prefix_len(s: bool, p: bool, o: bool) -> usize {
        (s as usize) + (p as usize) + (o as usize)
    }

    /// Builds the key prefix for bound components in this ordering's layout.
    fn prefix_key(self, s: Option<u32>, p: Option<u32>, o: Option<u32>) -> [u32; 3] {
        self.permute([s.unwrap_or(0), p.unwrap_or(0), o.unwrap_or(0)])
    }
}

/// An immutable triple index with all six orderings materialized.
#[derive(Debug, Clone, Default)]
pub struct Hexastore {
    // Index 0..6 corresponds to Order::ALL.
    indices: [Box<[[u32; 3]]>; 6],
    len: usize,
}

impl Hexastore {
    /// Builds the six sorted permutations from a triple list. Duplicates are
    /// removed. `O(6 · m log m)` construction.
    pub fn build(triples: &[[u32; 3]]) -> Self {
        let mut indices: [Box<[[u32; 3]]>; 6] = Default::default();
        let mut len = 0;
        for (slot, order) in Order::ALL.iter().enumerate() {
            let mut permuted: Vec<[u32; 3]> =
                triples.iter().map(|&t| order.permute(t)).collect();
            permuted.sort_unstable();
            permuted.dedup();
            len = permuted.len();
            indices[slot] = permuted.into_boxed_slice();
        }
        Self { indices, len }
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn index(&self, order: Order) -> &[[u32; 3]] {
        let slot = Order::ALL.iter().position(|&o| o == order).unwrap();
        &self.indices[slot]
    }

    /// Finds the contiguous run of keys in `order` matching the bound
    /// prefix of the pattern.
    fn prefix_range(
        &self,
        order: Order,
        s: Option<u32>,
        p: Option<u32>,
        o: Option<u32>,
    ) -> Range<usize> {
        let idx = self.index(order);
        let plen = Order::prefix_len(s.is_some(), p.is_some(), o.is_some());
        if plen == 0 {
            return 0..idx.len();
        }
        let key = order.prefix_key(s, p, o);
        let lo = idx.partition_point(|k| k[..plen] < key[..plen]);
        let hi = idx.partition_point(|k| k[..plen] <= key[..plen]);
        lo..hi
    }

    /// Number of triples matching a pattern (`None` = wildcard). Used by the
    /// query planner for selectivity estimation — `O(log m)`.
    pub fn count(&self, s: Option<u32>, p: Option<u32>, o: Option<u32>) -> usize {
        let order = Order::for_bound(s.is_some(), p.is_some(), o.is_some());
        self.prefix_range(order, s, p, o).len()
    }

    /// Scans all triples matching a pattern, yielding them in `(s, p, o)`
    /// component order. `O(log m + k)`.
    pub fn scan(
        &self,
        s: Option<u32>,
        p: Option<u32>,
        o: Option<u32>,
    ) -> impl Iterator<Item = [u32; 3]> + '_ {
        let order = Order::for_bound(s.is_some(), p.is_some(), o.is_some());
        let range = self.prefix_range(order, s, p, o);
        self.index(order)[range]
            .iter()
            .map(move |&k| order.unpermute(k))
    }

    /// Membership test for a fully-bound triple. `O(log m)`.
    pub fn contains(&self, s: u32, p: u32, o: u32) -> bool {
        self.index(Order::Spo).binary_search(&[s, p, o]).is_ok()
    }

    /// Approximate heap bytes of all six indices.
    pub fn heap_bytes(&self) -> usize {
        self.indices.iter().map(|i| i.len() * 12).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Hexastore {
        Hexastore::build(&[
            [0, 0, 1],
            [0, 0, 2],
            [0, 1, 2],
            [1, 0, 2],
            [2, 1, 0],
            [2, 1, 0], // duplicate
        ])
    }

    #[test]
    fn dedups_on_build() {
        assert_eq!(store().len(), 5);
    }

    #[test]
    fn permute_roundtrip_all_orders() {
        let t = [7u32, 11, 13];
        for order in Order::ALL {
            assert_eq!(order.unpermute(order.permute(t)), t);
        }
    }

    #[test]
    fn scan_by_subject() {
        let h = store();
        let got: Vec<_> = h.scan(Some(0), None, None).collect();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|t| t[0] == 0));
    }

    #[test]
    fn scan_by_predicate_object() {
        let h = store();
        let got: Vec<_> = h.scan(None, Some(0), Some(2)).collect();
        let mut subjects: Vec<u32> = got.iter().map(|t| t[0]).collect();
        subjects.sort_unstable();
        assert_eq!(subjects, vec![0, 1]);
    }

    #[test]
    fn scan_wildcard_returns_all() {
        let h = store();
        assert_eq!(h.scan(None, None, None).count(), 5);
    }

    #[test]
    fn scan_fully_bound() {
        let h = store();
        assert_eq!(h.scan(Some(2), Some(1), Some(0)).count(), 1);
        assert_eq!(h.scan(Some(2), Some(1), Some(9)).count(), 0);
    }

    #[test]
    fn count_matches_scan() {
        let h = store();
        for s in [None, Some(0), Some(9)] {
            for p in [None, Some(0), Some(1)] {
                for o in [None, Some(2)] {
                    assert_eq!(h.count(s, p, o), h.scan(s, p, o).count());
                }
            }
        }
    }

    #[test]
    fn contains_exact() {
        let h = store();
        assert!(h.contains(0, 1, 2));
        assert!(!h.contains(0, 1, 3));
    }

    #[test]
    fn empty_store() {
        let h = Hexastore::build(&[]);
        assert!(h.is_empty());
        assert_eq!(h.scan(None, None, None).count(), 0);
        assert_eq!(h.count(Some(1), None, None), 0);
    }
}
