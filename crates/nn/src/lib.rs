//! # kgtosa-nn — neural layers with explicit backward passes
//!
//! The training substrate for the six HGNN methods in `kgtosa-models`:
//!
//! * [`linear::Linear`] — dense layer,
//! * [`rgcn::RgcnLayer`] — the relational graph convolution of Eq. 1 in the
//!   paper (per-relation weights over both edge directions, mean
//!   normalization, self-loop), with memory-lean recompute-in-backward,
//! * [`scoring`] — TransE / DistMult link-prediction decoders,
//! * [`metrics`] — accuracy, Hits@K, MRR.
//!
//! There is deliberately no autograd tape: every layer's backward is written
//! and finite-difference-tested by hand, which keeps the training loop
//! allocation-predictable and the whole stack dependency-free.

pub mod linear;
pub mod metrics;
pub mod rgcn;
pub mod rgcn_basis;
pub mod scoring;
pub mod state;

pub use linear::{Linear, LinearGrads};
pub use metrics::{accuracy, rank_of, ranking_metrics, RankingMetrics};
pub use rgcn::{mean_aggregate, recycle_rgcn_grads, RgcnCache, RgcnGrads, RgcnLayer};
pub use rgcn_basis::{BasisCache, BasisGrads, RgcnBasisLayer};
pub use scoring::{
    bce_negative, bce_positive, distmult_grad, distmult_score, margin_loss, transe_distance,
    transe_grad,
};
