//! Knowledge-graph embedding scoring functions for link prediction:
//! TransE (used by the paper's MorsE-TransE runs) and DistMult (the
//! decoder RGCN-LP uses), with analytic gradients.
//!
//! All functions operate on embedding row slices so models can compose
//! them with gather/scatter embedding tables without copying.

use kgtosa_tensor::sigmoid;

/// TransE dissimilarity `‖h + r − t‖₁` (lower = more plausible).
pub fn transe_distance(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    h.iter()
        .zip(r)
        .zip(t)
        .map(|((&h, &r), &t)| (h + r - t).abs())
        .sum()
}

/// Accumulates `coeff · ∂dist/∂{h,r,t}` into the gradient slices.
/// The L1 subgradient at zero is taken as 0.
pub fn transe_grad(
    h: &[f32],
    r: &[f32],
    t: &[f32],
    coeff: f32,
    gh: &mut [f32],
    gr: &mut [f32],
    gt: &mut [f32],
) {
    for k in 0..h.len() {
        let d = h[k] + r[k] - t[k];
        let s = if d > 0.0 {
            1.0
        } else if d < 0.0 {
            -1.0
        } else {
            0.0
        };
        gh[k] += coeff * s;
        gr[k] += coeff * s;
        gt[k] -= coeff * s;
    }
}

/// Margin ranking loss `max(0, γ + d_pos − d_neg)`.
/// Returns `(loss, active)`; gradients flow only when `active`.
pub fn margin_loss(d_pos: f32, d_neg: f32, margin: f32) -> (f32, bool) {
    let l = margin + d_pos - d_neg;
    if l > 0.0 {
        (l, true)
    } else {
        (0.0, false)
    }
}

/// DistMult score `Σ_k h_k · r_k · t_k` (higher = more plausible).
pub fn distmult_score(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    h.iter()
        .zip(r)
        .zip(t)
        .map(|((&h, &r), &t)| h * r * t)
        .sum()
}

/// Accumulates `coeff · ∂score/∂{h,r,t}` into the gradient slices.
pub fn distmult_grad(
    h: &[f32],
    r: &[f32],
    t: &[f32],
    coeff: f32,
    gh: &mut [f32],
    gr: &mut [f32],
    gt: &mut [f32],
) {
    for k in 0..h.len() {
        gh[k] += coeff * r[k] * t[k];
        gr[k] += coeff * h[k] * t[k];
        gt[k] += coeff * h[k] * r[k];
    }
}

/// Binary cross-entropy on a raw score with target 1 (positive triple).
/// Returns `(loss, ∂loss/∂score)`.
pub fn bce_positive(score: f32) -> (f32, f32) {
    let p = sigmoid(score).clamp(1e-7, 1.0 - 1e-7);
    (-(p.ln()), p - 1.0)
}

/// Binary cross-entropy on a raw score with target 0 (negative triple).
pub fn bce_negative(score: f32) -> (f32, f32) {
    let p = sigmoid(score).clamp(1e-7, 1.0 - 1e-7);
    (-((1.0 - p).ln()), p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transe_distance_zero_when_exact() {
        let h = [1.0, 2.0];
        let r = [0.5, -1.0];
        let t = [1.5, 1.0];
        assert_eq!(transe_distance(&h, &r, &t), 0.0);
        assert_eq!(transe_distance(&h, &r, &[0.0, 0.0]), 1.5 + 1.0);
    }

    #[test]
    fn transe_grad_finite_difference() {
        let h = [0.3f32, -0.7, 0.2];
        let r = [0.1, 0.4, -0.5];
        let t = [-0.2, 0.6, 0.9];
        let (mut gh, mut gr, mut gt) = ([0.0; 3], [0.0; 3], [0.0; 3]);
        transe_grad(&h, &r, &t, 1.0, &mut gh, &mut gr, &mut gt);
        let eps = 1e-3f32;
        for k in 0..3 {
            let mut hp = h;
            hp[k] += eps;
            let mut hm = h;
            hm[k] -= eps;
            let num = (transe_distance(&hp, &r, &t) - transe_distance(&hm, &r, &t)) / (2.0 * eps);
            assert!((num - gh[k]).abs() < 1e-2, "gh[{k}]");
            let mut tp = t;
            tp[k] += eps;
            let mut tm = t;
            tm[k] -= eps;
            let num = (transe_distance(&h, &r, &tp) - transe_distance(&h, &r, &tm)) / (2.0 * eps);
            assert!((num - gt[k]).abs() < 1e-2, "gt[{k}]");
        }
    }

    #[test]
    fn margin_loss_activation() {
        assert_eq!(margin_loss(1.0, 3.0, 1.0), (0.0, false));
        let (l, active) = margin_loss(2.0, 1.5, 1.0);
        assert!(active);
        assert!((l - 1.5).abs() < 1e-6);
    }

    #[test]
    fn distmult_score_symmetric_in_h_t() {
        let h = [1.0, 2.0];
        let r = [3.0, -1.0];
        let t = [0.5, 4.0];
        assert_eq!(distmult_score(&h, &r, &t), distmult_score(&t, &r, &h));
        assert_eq!(distmult_score(&h, &r, &t), 1.0 * 3.0 * 0.5 + -2.0 * 4.0);
    }

    #[test]
    fn distmult_grad_finite_difference() {
        let h = [0.3f32, -0.7];
        let r = [0.1, 0.4];
        let t = [-0.2, 0.6];
        let (mut gh, mut gr, mut gt) = ([0.0; 2], [0.0; 2], [0.0; 2]);
        distmult_grad(&h, &r, &t, 2.0, &mut gh, &mut gr, &mut gt);
        let eps = 1e-3f32;
        for k in 0..2 {
            let mut rp = r;
            rp[k] += eps;
            let mut rm = r;
            rm[k] -= eps;
            let num =
                2.0 * (distmult_score(&h, &rp, &t) - distmult_score(&h, &rm, &t)) / (2.0 * eps);
            assert!((num - gr[k]).abs() < 1e-2);
        }
    }

    #[test]
    fn bce_gradients_point_right_way() {
        let (lp, gp) = bce_positive(0.0);
        assert!((lp - (2.0f32).ln()).abs() < 1e-5);
        assert!(gp < 0.0, "positive wants higher score");
        let (ln, gn) = bce_negative(0.0);
        assert!((ln - (2.0f32).ln()).abs() < 1e-5);
        assert!(gn > 0.0, "negative wants lower score");
        // Saturation is clamped, not NaN.
        assert!(bce_positive(100.0).0 >= 0.0);
        assert!(bce_negative(-100.0).0 >= 0.0);
    }
}
