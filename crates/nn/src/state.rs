//! [`StateIo`] implementations for the layer types, so trainers can
//! checkpoint model parameters alongside optimizer state. Only trainable
//! tensors are serialized; structural flags (`relu`, relation counts) come
//! from reconstruction and are validated by the shape headers.

use std::io::{self, Read, Write};

use kgtosa_tensor::state::{expect_u64, write_u64, StateIo};

use crate::linear::Linear;
use crate::rgcn::RgcnLayer;
use crate::rgcn_basis::RgcnBasisLayer;

impl StateIo for Linear {
    fn save_state(&self, w: &mut dyn Write) -> io::Result<()> {
        self.w.save_state(w)?;
        self.b.save_state(w)
    }

    fn load_state(&mut self, r: &mut dyn Read) -> io::Result<()> {
        self.w.load_state(r)?;
        self.b.load_state(r)
    }
}

impl StateIo for RgcnLayer {
    fn save_state(&self, w: &mut dyn Write) -> io::Result<()> {
        write_u64(w, self.w_fwd.len() as u64)?;
        for m in &self.w_fwd {
            m.save_state(w)?;
        }
        for m in &self.w_rev {
            m.save_state(w)?;
        }
        self.w_self.save_state(w)?;
        self.b.save_state(w)
    }

    fn load_state(&mut self, r: &mut dyn Read) -> io::Result<()> {
        expect_u64(r, self.w_fwd.len() as u64, "rgcn relation count")?;
        for m in &mut self.w_fwd {
            m.load_state(r)?;
        }
        for m in &mut self.w_rev {
            m.load_state(r)?;
        }
        self.w_self.load_state(r)?;
        self.b.load_state(r)
    }
}

impl StateIo for RgcnBasisLayer {
    fn save_state(&self, w: &mut dyn Write) -> io::Result<()> {
        write_u64(w, self.bases.len() as u64)?;
        for m in &self.bases {
            m.save_state(w)?;
        }
        self.coeffs.save_state(w)?;
        self.w_self.save_state(w)?;
        self.b.save_state(w)
    }

    fn load_state(&mut self, r: &mut dyn Read) -> io::Result<()> {
        expect_u64(r, self.bases.len() as u64, "basis count")?;
        for m in &mut self.bases {
            m.load_state(r)?;
        }
        self.coeffs.load_state(r)?;
        self.w_self.load_state(r)?;
        self.b.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rgcn_layer_roundtrip_bit_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = RgcnLayer::new(2, 4, 3, true, &mut rng);
        let mut buf = Vec::new();
        layer.save_state(&mut buf).unwrap();
        let mut restored = RgcnLayer::new(2, 4, 3, true, &mut StdRng::seed_from_u64(99));
        restored.load_state(&mut &buf[..]).unwrap();
        for (a, b) in layer.w_fwd.iter().zip(&restored.w_fwd) {
            assert_eq!(a.data(), b.data());
        }
        assert_eq!(layer.w_self.data(), restored.w_self.data());
        assert_eq!(layer.b, restored.b);

        // A layer with a different relation count must refuse the blob.
        let mut wrong = RgcnLayer::new(3, 4, 3, true, &mut StdRng::seed_from_u64(1));
        assert!(wrong.load_state(&mut &buf[..]).is_err());
    }

    #[test]
    fn linear_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new(4, 2, &mut rng);
        let mut buf = Vec::new();
        layer.save_state(&mut buf).unwrap();
        let mut restored = Linear::new(4, 2, &mut StdRng::seed_from_u64(6));
        restored.load_state(&mut &buf[..]).unwrap();
        assert_eq!(layer.w.data(), restored.w.data());
        assert_eq!(layer.b, restored.b);
    }
}
