//! Evaluation metrics: accuracy for node classification, Hits@K / MRR for
//! link prediction — the metrics of Table II.

/// Fraction of positions where `pred == label`, skipping ignored labels.
pub fn accuracy(preds: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    let mut correct = 0usize;
    let mut total = 0usize;
    for (&p, &l) in preds.iter().zip(labels) {
        if l == kgtosa_tensor::IGNORE_LABEL {
            continue;
        }
        total += 1;
        correct += (p == l) as usize;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Rank of the true candidate among `scores` (1-based), where higher score
/// is better. Ties are broken optimistically-neutral: candidates with a
/// strictly greater score outrank; equal scores count half (standard
/// "random-break" expectation used by KG-completion evals).
pub fn rank_of(true_score: f32, scores: &[f32]) -> f64 {
    let mut greater = 0usize;
    let mut equal = 0usize;
    for &s in scores {
        if s > true_score {
            greater += 1;
        } else if s == true_score {
            equal += 1;
        }
    }
    1.0 + greater as f64 + equal as f64 / 2.0
}

/// Aggregated ranking metrics over a set of test queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankingMetrics {
    /// `Hits@1`.
    pub hits_at_1: f64,
    /// `Hits@3`.
    pub hits_at_3: f64,
    /// `Hits@10` — the paper's LP metric.
    pub hits_at_10: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean rank.
    pub mean_rank: f64,
}

/// Computes ranking metrics from a list of (1-based) ranks.
pub fn ranking_metrics(ranks: &[f64]) -> RankingMetrics {
    if ranks.is_empty() {
        return RankingMetrics::default();
    }
    let n = ranks.len() as f64;
    let hits = |k: f64| ranks.iter().filter(|&&r| r <= k).count() as f64 / n;
    RankingMetrics {
        hits_at_1: hits(1.0),
        hits_at_3: hits(3.0),
        hits_at_10: hits(10.0),
        mrr: ranks.iter().map(|&r| 1.0 / r).sum::<f64>() / n,
        mean_rank: ranks.iter().sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn accuracy_skips_ignored() {
        use kgtosa_tensor::IGNORE_LABEL;
        assert_eq!(accuracy(&[1, 5], &[1, IGNORE_LABEL]), 1.0);
    }

    #[test]
    fn rank_counts_strictly_greater() {
        // true=0.5; scores contain the negatives only.
        assert_eq!(rank_of(0.5, &[0.9, 0.1, 0.3]), 2.0);
        assert_eq!(rank_of(1.0, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn rank_ties_half() {
        assert_eq!(rank_of(0.5, &[0.5, 0.5]), 2.0);
    }

    #[test]
    fn ranking_metrics_aggregate() {
        let m = ranking_metrics(&[1.0, 2.0, 11.0, 4.0]);
        assert_eq!(m.hits_at_1, 0.25);
        assert_eq!(m.hits_at_3, 0.5);
        assert_eq!(m.hits_at_10, 0.75);
        assert!((m.mrr - (1.0 + 0.5 + 1.0 / 11.0 + 0.25) / 4.0).abs() < 1e-12);
        assert_eq!(m.mean_rank, 4.5);
    }

    #[test]
    fn empty_ranks_all_zero() {
        assert_eq!(ranking_metrics(&[]), RankingMetrics::default());
    }
}
