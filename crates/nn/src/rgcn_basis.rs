//! RGCN with **basis decomposition** (Schlichtkrull et al., §2.2 of the
//! RGCN paper): instead of one free `d×d'` matrix per relation and
//! direction, every relation weight is a learned mixture of `B` shared
//! bases,
//!
//! ```text
//! W_r = Σ_b  a_{r,b} · V_b
//! ```
//!
//! which caps the parameter count at `B·d·d' + 2R·B` instead of `2R·d·d'`.
//! This is the classic alternative to KG-TOSA's approach of shrinking `|R|`
//! itself; the `ablation_basis` bench compares the two directly.

use kgtosa_kg::{HeteroGraph, Rid};
use kgtosa_tensor::{relu_backward, relu_inplace, xavier_uniform, Matrix};
use rand::Rng;

use crate::rgcn::mean_aggregate;

/// A basis-decomposed RGCN layer.
#[derive(Debug, Clone)]
pub struct RgcnBasisLayer {
    /// Shared bases `V_b`, each `in_dim × out_dim`.
    pub bases: Vec<Matrix>,
    /// Mixture coefficients, `2R × B` (forward direction rows `0..R`,
    /// reverse rows `R..2R`).
    pub coeffs: Matrix,
    /// Self-loop transform.
    pub w_self: Matrix,
    /// Bias.
    pub b: Vec<f32>,
    /// Whether a ReLU follows.
    pub relu: bool,
    num_relations: usize,
}

/// Cache carried to the backward pass.
#[derive(Debug)]
pub struct BasisCache {
    relu_mask: Option<Vec<bool>>,
}

/// Parameter gradients.
#[derive(Debug)]
pub struct BasisGrads {
    /// Gradients of the bases.
    pub bases: Vec<Matrix>,
    /// Gradient of the coefficient matrix.
    pub coeffs: Matrix,
    /// Gradient of the self-loop weight.
    pub w_self: Matrix,
    /// Gradient of the bias.
    pub b: Vec<f32>,
}

impl RgcnBasisLayer {
    /// Creates a layer with `num_bases` shared bases.
    pub fn new(
        num_relations: usize,
        num_bases: usize,
        in_dim: usize,
        out_dim: usize,
        relu: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let num_bases = num_bases.max(1);
        Self {
            bases: (0..num_bases)
                .map(|_| xavier_uniform(in_dim, out_dim, rng))
                .collect(),
            coeffs: xavier_uniform(2 * num_relations.max(1), num_bases, rng),
            w_self: xavier_uniform(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            relu,
            num_relations,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w_self.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w_self.cols()
    }

    /// Trainable parameters: `B·d·d' + 2R·B + d·d' + d'` — compare with
    /// [`crate::rgcn::RgcnLayer::param_count`]'s `2R·d·d' + d·d' + d'`.
    pub fn param_count(&self) -> usize {
        self.bases.iter().map(Matrix::param_count).sum::<usize>()
            + self.coeffs.param_count()
            + self.w_self.param_count()
            + self.b.len()
    }

    /// Materializes `W_r` for a relation-direction row of the coefficient
    /// matrix.
    fn weight_of(&self, row: usize) -> Matrix {
        let mut w = Matrix::zeros(self.in_dim(), self.out_dim());
        for (b, basis) in self.bases.iter().enumerate() {
            w.add_scaled(basis, self.coeffs.get(row, b));
        }
        w
    }

    /// Forward pass (same semantics as the full-parameter layer).
    pub fn forward(&self, g: &HeteroGraph, h: &Matrix) -> (Matrix, BasisCache) {
        assert_eq!(h.rows(), g.num_nodes(), "one feature row per node");
        let r_count = self.num_relations.min(g.num_relations());
        let mut out = h.matmul(&self.w_self);
        let mut agg = Matrix::zeros(h.rows(), h.cols());
        for r in 0..r_count {
            let adj = g.relation(Rid(r as u32));
            if adj.inc.num_edges() > 0 {
                mean_aggregate(&adj.inc, h, &mut agg);
                out.add_assign(&agg.matmul(&self.weight_of(r)));
            }
            if adj.out.num_edges() > 0 {
                mean_aggregate(&adj.out, h, &mut agg);
                out.add_assign(&agg.matmul(&self.weight_of(self.num_relations + r)));
            }
        }
        for row in 0..out.rows() {
            let slice = out.row_mut(row);
            for (v, &bias) in slice.iter_mut().zip(&self.b) {
                *v += bias;
            }
        }
        let relu_mask = self.relu.then(|| relu_inplace(&mut out));
        (out, BasisCache { relu_mask })
    }

    /// Backward pass; aggregates are recomputed as in the full layer.
    pub fn backward(
        &self,
        g: &HeteroGraph,
        h: &Matrix,
        cache: &BasisCache,
        mut grad_out: Matrix,
    ) -> (Matrix, BasisGrads) {
        if let Some(mask) = &cache.relu_mask {
            relu_backward(&mut grad_out, mask);
        }
        let mut grad_b = vec![0.0f32; self.b.len()];
        for r in 0..grad_out.rows() {
            for (gb, &v) in grad_b.iter_mut().zip(grad_out.row(r)) {
                *gb += v;
            }
        }
        let mut grad_h = grad_out.matmul_t(&self.w_self);
        let grad_w_self = h.t_matmul(&grad_out);
        let mut grad_bases: Vec<Matrix> = self
            .bases
            .iter()
            .map(|v| Matrix::zeros(v.rows(), v.cols()))
            .collect();
        let mut grad_coeffs = Matrix::zeros(self.coeffs.rows(), self.coeffs.cols());
        let mut agg = Matrix::zeros(h.rows(), h.cols());

        let r_count = self.num_relations.min(g.num_relations());
        for r in 0..r_count {
            let adj = g.relation(Rid(r as u32));
            for (csr, csr_t, row) in [
                (&adj.inc, &adj.out, r),
                (&adj.out, &adj.inc, self.num_relations + r),
            ] {
                if csr.num_edges() == 0 {
                    continue;
                }
                mean_aggregate(csr, h, &mut agg);
                // grad_W_r = aggᵀ · grad_out  (then distributed to bases/coeffs)
                let grad_w = agg.t_matmul(&grad_out);
                for (b, basis) in self.bases.iter().enumerate() {
                    // ∂L/∂a_{r,b} = <grad_W, V_b>
                    let dot: f32 = grad_w
                        .data()
                        .iter()
                        .zip(basis.data())
                        .map(|(&g, &v)| g * v)
                        .sum();
                    grad_coeffs.set(row, b, grad_coeffs.get(row, b) + dot);
                    // ∂L/∂V_b += a_{r,b} · grad_W
                    grad_bases[b].add_scaled(&grad_w, self.coeffs.get(row, b));
                }
                // grad_h += Âᵀ (grad_out · W_rᵀ), gather form (see rgcn.rs).
                let w = self.weight_of(row);
                let scratch = grad_out.matmul_t(&w);
                crate::rgcn::mean_backward_gather(csr, csr_t, &scratch, &mut grad_h);
            }
        }
        (
            grad_h,
            BasisGrads {
                bases: grad_bases,
                coeffs: grad_coeffs,
                w_self: grad_w_self,
                b: grad_b,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgcn::RgcnLayer;
    use kgtosa_kg::KnowledgeGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_graph() -> HeteroGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("a", "A", "r0", "b", "B");
        kg.add_triple_terms("a", "A", "r1", "c", "B");
        kg.add_triple_terms("b", "B", "r1", "c", "B");
        HeteroGraph::build(&kg)
    }

    #[test]
    fn basis_has_fewer_params_when_relations_many() {
        let mut rng = StdRng::seed_from_u64(0);
        let full = RgcnLayer::new(40, 16, 16, false, &mut rng);
        let basis = RgcnBasisLayer::new(40, 4, 16, 16, false, &mut rng);
        assert!(basis.param_count() < full.param_count() / 5);
    }

    #[test]
    fn forward_shape_and_determinism() {
        let g = tiny_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let layer = RgcnBasisLayer::new(g.num_relations(), 2, 4, 3, true, &mut rng);
        let h = xavier_uniform(g.num_nodes(), 4, &mut rng);
        let (out1, _) = layer.forward(&g, &h);
        let (out2, _) = layer.forward(&g, &h);
        assert_eq!(out1.shape(), (3, 3));
        assert_eq!(out1.data(), out2.data());
    }

    #[test]
    fn single_basis_with_unit_coeffs_matches_shared_weight() {
        // With B=1 and all coefficients 1, every W_r equals the basis.
        let g = tiny_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = RgcnBasisLayer::new(g.num_relations(), 1, 3, 3, false, &mut rng);
        for r in 0..layer.coeffs.rows() {
            layer.coeffs.set(r, 0, 1.0);
        }
        let w = layer.weight_of(0);
        assert_eq!(w.data(), layer.bases[0].data());
        let w_rev = layer.weight_of(layer.num_relations + 1);
        assert_eq!(w_rev.data(), layer.bases[0].data());
    }

    /// Finite-difference gradient check across all parameter groups.
    #[test]
    fn backward_matches_finite_difference() {
        let g = tiny_graph();
        let mut rng = StdRng::seed_from_u64(9);
        let layer = RgcnBasisLayer::new(g.num_relations(), 2, 3, 2, true, &mut rng);
        let h = xavier_uniform(g.num_nodes(), 3, &mut rng);
        let loss = |l: &RgcnBasisLayer, h: &Matrix| -> f32 {
            let (out, _) = l.forward(&g, h);
            out.data().iter().map(|&v| v * v).sum()
        };
        let (out, cache) = layer.forward(&g, &h);
        let mut grad_out = out.clone();
        grad_out.scale(2.0);
        let (grad_h, grads) = layer.backward(&g, &h, &cache, grad_out);

        let eps = 1e-2f32;
        let check = |analytic: f32, num: f32, what: &str| {
            let tol = 3e-2 * (1.0 + num.abs());
            assert!(
                (analytic - num).abs() < tol,
                "{what}: analytic {analytic} vs numeric {num}"
            );
        };
        // Input gradient (spot-check all entries).
        for r in 0..h.rows() {
            for c in 0..h.cols() {
                let mut hp = h.clone();
                hp.set(r, c, h.get(r, c) + eps);
                let mut hm = h.clone();
                hm.set(r, c, h.get(r, c) - eps);
                let num = (loss(&layer, &hp) - loss(&layer, &hm)) / (2.0 * eps);
                check(grad_h.get(r, c), num, "grad_h");
            }
        }
        // Basis gradients.
        for bi in 0..layer.bases.len() {
            let mut lp = layer.clone();
            lp.bases[bi].set(0, 0, layer.bases[bi].get(0, 0) + eps);
            let mut lm = layer.clone();
            lm.bases[bi].set(0, 0, layer.bases[bi].get(0, 0) - eps);
            let num = (loss(&lp, &h) - loss(&lm, &h)) / (2.0 * eps);
            check(grads.bases[bi].get(0, 0), num, "basis");
        }
        // Coefficient gradients.
        for row in 0..layer.coeffs.rows() {
            let mut lp = layer.clone();
            lp.coeffs.set(row, 0, layer.coeffs.get(row, 0) + eps);
            let mut lm = layer.clone();
            lm.coeffs.set(row, 0, layer.coeffs.get(row, 0) - eps);
            let num = (loss(&lp, &h) - loss(&lm, &h)) / (2.0 * eps);
            check(grads.coeffs.get(row, 0), num, "coeff");
        }
        // Bias.
        let mut lp = layer.clone();
        lp.b[0] += eps;
        let mut lm = layer.clone();
        lm.b[0] -= eps;
        let num = (loss(&lp, &h) - loss(&lm, &h)) / (2.0 * eps);
        check(grads.b[0], num, "bias");
    }
}
