//! The relational graph convolution (RGCN) layer of Schlichtkrull et al.,
//! Eq. 1 of the paper, with an explicit backward pass.
//!
//! Forward for node `i`:
//!
//! ```text
//! h_i' = σ( Σ_r Σ_{j ∈ N_i^r} 1/c_{i,r} · W_r h_j  +  W_0 h_i + b )
//! ```
//!
//! with `c_{i,r} = |N_i^r|` (mean normalization). Like the reference
//! implementations, each relation contributes in both directions: a forward
//! transform over incoming edges and a reverse transform over outgoing
//! edges (equivalent to adding inverse relations). This makes the weight
//! count — and therefore model size — proportional to `|R|`, which is
//! exactly the effect KG-TOSA exploits by shrinking the relation set.
//!
//! To keep memory proportional to one activation matrix, per-relation
//! aggregates are *recomputed* during backward instead of cached.

use kgtosa_kg::{Csr, HeteroGraph, Rid, Vid};
use kgtosa_par::Pool;
use kgtosa_tensor::{
    relu_backward, relu_inplace, simd_level, xavier_uniform, F32x8, Matrix, ScratchArena,
    SimdLevel,
};
use rand::Rng;

/// One RGCN convolution layer.
#[derive(Debug, Clone)]
pub struct RgcnLayer {
    /// Per-relation transform over incoming edges.
    pub w_fwd: Vec<Matrix>,
    /// Per-relation transform over outgoing (inverse) edges.
    pub w_rev: Vec<Matrix>,
    /// Self-loop transform `W_0`.
    pub w_self: Matrix,
    /// Bias.
    pub b: Vec<f32>,
    /// Whether a ReLU follows the affine aggregation.
    pub relu: bool,
}

/// Cache carried from forward to backward.
#[derive(Debug)]
pub struct RgcnCache {
    relu_mask: Option<Vec<bool>>,
}

/// Parameter gradients of one layer.
#[derive(Debug, Clone)]
pub struct RgcnGrads {
    /// Gradients of [`RgcnLayer::w_fwd`].
    pub w_fwd: Vec<Matrix>,
    /// Gradients of [`RgcnLayer::w_rev`].
    pub w_rev: Vec<Matrix>,
    /// Gradient of the self-loop weight.
    pub w_self: Matrix,
    /// Gradient of the bias.
    pub b: Vec<f32>,
}

impl RgcnLayer {
    /// Xavier-initialized layer for `num_relations` edge types.
    pub fn new(
        num_relations: usize,
        in_dim: usize,
        out_dim: usize,
        relu: bool,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            w_fwd: (0..num_relations)
                .map(|_| xavier_uniform(in_dim, out_dim, rng))
                .collect(),
            w_rev: (0..num_relations)
                .map(|_| xavier_uniform(in_dim, out_dim, rng))
                .collect(),
            w_self: xavier_uniform(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            relu,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w_self.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w_self.cols()
    }

    /// Number of trainable parameters. Scales with `|R|`.
    pub fn param_count(&self) -> usize {
        self.w_fwd.iter().map(Matrix::param_count).sum::<usize>()
            + self.w_rev.iter().map(Matrix::param_count).sum::<usize>()
            + self.w_self.param_count()
            + self.b.len()
    }

    /// Forward pass over the graph's per-relation adjacency.
    ///
    /// Allocating form of [`RgcnLayer::forward_arena`].
    pub fn forward(&self, g: &HeteroGraph, h: &Matrix) -> (Matrix, RgcnCache) {
        let mut arena = ScratchArena::new();
        self.forward_arena(g, h, &mut arena)
    }

    /// Forward pass with intermediates (and the returned activation) drawn
    /// from `arena`. The caller owns the returned matrix and is expected
    /// to `put` it back once consumed, so steady-state epochs allocate
    /// nothing here.
    pub fn forward_arena(
        &self,
        g: &HeteroGraph,
        h: &Matrix,
        arena: &mut ScratchArena,
    ) -> (Matrix, RgcnCache) {
        assert_eq!(h.rows(), g.num_nodes(), "one feature row per node");
        assert_eq!(h.cols(), self.in_dim(), "feature dim mismatch");
        let mut out = arena.take(h.rows(), self.out_dim());
        h.matmul_into(&self.w_self, &mut out);
        let mut agg = arena.take(h.rows(), h.cols());
        for r in 0..g.num_relations().min(self.w_fwd.len()) {
            let adj = g.relation(Rid(r as u32));
            // Incoming edges: N_i^r = { j : (j, r, i) ∈ T }.
            if adj.inc.num_edges() > 0 {
                mean_aggregate(&adj.inc, h, &mut agg);
                agg.matmul_acc_into(&self.w_fwd[r], &mut out);
            }
            // Outgoing (inverse) edges.
            if adj.out.num_edges() > 0 {
                mean_aggregate(&adj.out, h, &mut agg);
                agg.matmul_acc_into(&self.w_rev[r], &mut out);
            }
        }
        arena.put(agg);
        for row in 0..out.rows() {
            let r = out.row_mut(row);
            for (v, &b) in r.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        let relu_mask = self.relu.then(|| relu_inplace(&mut out));
        (out, RgcnCache { relu_mask })
    }

    /// Backward pass. `h` is the forward input; `grad_out` is `∂L/∂output`.
    /// Returns `∂L/∂h` and the parameter gradients.
    ///
    /// Allocating form of [`RgcnLayer::backward_arena`].
    pub fn backward(
        &self,
        g: &HeteroGraph,
        h: &Matrix,
        cache: &RgcnCache,
        grad_out: Matrix,
    ) -> (Matrix, RgcnGrads) {
        let mut arena = ScratchArena::new();
        self.backward_arena(g, h, cache, grad_out, &mut arena)
    }

    /// Backward pass with every intermediate and returned gradient drawn
    /// from `arena`. `grad_out` is consumed and its buffer recycled; the
    /// returned `grad_h` and [`RgcnGrads`] matrices should be `put` back
    /// by the caller after the optimizer step.
    pub fn backward_arena(
        &self,
        g: &HeteroGraph,
        h: &Matrix,
        cache: &RgcnCache,
        mut grad_out: Matrix,
        arena: &mut ScratchArena,
    ) -> (Matrix, RgcnGrads) {
        if let Some(mask) = &cache.relu_mask {
            relu_backward(&mut grad_out, mask);
        }
        let mut grad_b = vec![0.0f32; self.b.len()];
        for r in 0..grad_out.rows() {
            for (gb, &v) in grad_b.iter_mut().zip(grad_out.row(r)) {
                *gb += v;
            }
        }
        let mut grad_h = arena.take(grad_out.rows(), self.in_dim());
        grad_out.matmul_t_into(&self.w_self, &mut grad_h);
        let mut grad_w_self = arena.take(self.in_dim(), self.out_dim());
        h.t_matmul_into(&grad_out, &mut grad_w_self);
        let mut grad_w_fwd = Vec::with_capacity(self.w_fwd.len());
        let mut grad_w_rev = Vec::with_capacity(self.w_rev.len());
        let mut agg = arena.take(h.rows(), h.cols());
        let mut scratch = arena.take(h.rows(), h.cols());
        for r in 0..self.w_fwd.len() {
            let (gf, gr) = if r < g.num_relations() {
                let adj = g.relation(Rid(r as u32));
                let gf = direction_backward(
                    (&adj.inc, &adj.out),
                    h,
                    &self.w_fwd[r],
                    &grad_out,
                    &mut grad_h,
                    &mut agg,
                    &mut scratch,
                    arena,
                );
                let gr = direction_backward(
                    (&adj.out, &adj.inc),
                    h,
                    &self.w_rev[r],
                    &grad_out,
                    &mut grad_h,
                    &mut agg,
                    &mut scratch,
                    arena,
                );
                (gf, gr)
            } else {
                (
                    arena.take(self.in_dim(), self.out_dim()),
                    arena.take(self.in_dim(), self.out_dim()),
                )
            };
            grad_w_fwd.push(gf);
            grad_w_rev.push(gr);
        }
        arena.put(agg);
        arena.put(scratch);
        arena.put(grad_out);
        (
            grad_h,
            RgcnGrads {
                w_fwd: grad_w_fwd,
                w_rev: grad_w_rev,
                w_self: grad_w_self,
                b: grad_b,
            },
        )
    }
}

/// Returns every matrix in `grads` to `arena` (after an optimizer step).
pub fn recycle_rgcn_grads(grads: RgcnGrads, arena: &mut ScratchArena) {
    for m in grads.w_fwd {
        arena.put(m);
    }
    for m in grads.w_rev {
        arena.put(m);
    }
    arena.put(grads.w_self);
}

/// Per-neighbour weighting of a strip accumulation.
enum StripWeight<'a> {
    /// One weight for every neighbour (`mean_aggregate`'s `1/|N_i|`).
    Uniform(f32),
    /// `1/deg(j)` looked up per neighbour in `csr` (the gather backward).
    InvDegree(&'a Csr),
}

impl StripWeight<'_> {
    #[inline(always)]
    fn weight(&self, j: u32) -> f32 {
        match self {
            StripWeight::Uniform(w) => *w,
            StripWeight::InvDegree(csr) => 1.0 / csr.degree(Vid(j)) as f32,
        }
    }
}

/// Prefetch distance in neighbours: while neighbour `i`'s row is being
/// accumulated, the line(s) of neighbour `i + PF_DIST`'s row are requested.
/// The gather over `h` is the kernel's real cost — rows land at random in
/// a matrix far larger than L1/L2 — and the future indices are sitting in
/// the CSR neighbour list, so the misses can be overlapped explicitly.
const PF_DIST: usize = 16;

/// Hints the cache to fetch `bytes` bytes starting at `row[col]`.
/// A pure latency hint: prefetch has no architectural effect, so the
/// bit-determinism contract is untouched (and non-x86 builds compile it
/// out entirely).
#[inline(always)]
fn prefetch_span(h: &Matrix, j: u32, col: usize, bytes: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        let row = h.row(j as usize);
        let base = unsafe { row.as_ptr().add(col) } as *const i8;
        let mut off = 0usize;
        while off < bytes {
            // SAFETY: prefetch never faults; the address is derived from a
            // valid in-bounds row pointer.
            unsafe { std::arch::x86_64::_mm_prefetch(base.add(off), std::arch::x86_64::_MM_HINT_T0) };
            off += 64;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (h, j, col, bytes);
    }
}

/// `dst += Σ_j w(j) · h[j]` over `nbrs`, accumulated in register-blocked
/// strips over the feature dimension: 32-wide (4 × [`F32x8`]) strips, then
/// an 8-wide strip, then a scalar tail. Within a strip the accumulators
/// live in registers across the whole neighbour walk, so each `dst`
/// element is loaded/stored once instead of once per neighbour, and the
/// next neighbours' rows are prefetched [`PF_DIST`] ahead.
///
/// Bit-determinism: each output element still accumulates sequentially in
/// CSR neighbour order with unfused multiply-add — the exact order of the
/// scalar reference loop — so strips of any width produce identical bits.
/// `fresh` skips loading `dst` (caller guarantees it is zero).
#[inline(always)]
fn accum_row_impl(dst: &mut [f32], h: &Matrix, nbrs: &[u32], w: &StripWeight<'_>, fresh: bool) {
    let d = dst.len();
    let mut col = 0;
    // 64-wide strip (8 accumulators): one pass over the neighbour list
    // covers a full d=64 feature row, so each gathered row is touched
    // exactly once and the whole row is prefetched ahead.
    while col + 64 <= d {
        let mut acc = [F32x8::ZERO; 8];
        if !fresh {
            for (l, a) in acc.iter_mut().enumerate() {
                *a = F32x8::load(&dst[col + l * 8..]);
            }
        }
        for (i, &j) in nbrs.iter().enumerate() {
            if let Some(&jn) = nbrs.get(i + PF_DIST) {
                // First + last line of the strip: the hardware adjacent-line
                // prefetcher fills the middle, and two hint μops per
                // neighbour don't crowd the load ports the way four would.
                prefetch_span(h, jn, col, 64);
                prefetch_span(h, jn, col + 48, 64);
            }
            let src = &h.row(j as usize)[col..col + 64];
            let v = F32x8::splat(w.weight(j));
            for (l, a) in acc.iter_mut().enumerate() {
                *a = F32x8::load(&src[l * 8..]).madd(v, *a);
            }
        }
        for (l, a) in acc.iter().enumerate() {
            a.store(&mut dst[col + l * 8..]);
        }
        col += 64;
    }
    while col + 32 <= d {
        let (mut c0, mut c1, mut c2, mut c3) = (F32x8::ZERO, F32x8::ZERO, F32x8::ZERO, F32x8::ZERO);
        if !fresh {
            let s = &dst[col..col + 32];
            c0 = F32x8::load(&s[..8]);
            c1 = F32x8::load(&s[8..16]);
            c2 = F32x8::load(&s[16..24]);
            c3 = F32x8::load(&s[24..32]);
        }
        for (i, &j) in nbrs.iter().enumerate() {
            if let Some(&jn) = nbrs.get(i + PF_DIST) {
                prefetch_span(h, jn, col, 32 * 4);
            }
            let src = &h.row(j as usize)[col..col + 32];
            let v = F32x8::splat(w.weight(j));
            c0 = F32x8::load(&src[..8]).madd(v, c0);
            c1 = F32x8::load(&src[8..16]).madd(v, c1);
            c2 = F32x8::load(&src[16..24]).madd(v, c2);
            c3 = F32x8::load(&src[24..32]).madd(v, c3);
        }
        let s = &mut dst[col..col + 32];
        c0.store(&mut s[..8]);
        c1.store(&mut s[8..16]);
        c2.store(&mut s[16..24]);
        c3.store(&mut s[24..32]);
        col += 32;
    }
    while col + 8 <= d {
        let mut c = if fresh { F32x8::ZERO } else { F32x8::load(&dst[col..col + 8]) };
        for (i, &j) in nbrs.iter().enumerate() {
            if let Some(&jn) = nbrs.get(i + PF_DIST) {
                prefetch_span(h, jn, col, 8 * 4);
            }
            let src = &h.row(j as usize)[col..col + 8];
            c = F32x8::load(src).madd(F32x8::splat(w.weight(j)), c);
        }
        c.store(&mut dst[col..col + 8]);
        col += 8;
    }
    // Scalar tail: written as `a * b + s` (not `+=`) because this exact
    // unfused shape is the reduction-order contract the strips above match.
    #[allow(clippy::needless_range_loop, clippy::assign_op_pattern)]
    for k in col..d {
        let mut s = if fresh { 0.0 } else { dst[k] };
        for &j in nbrs {
            s = h.row(j as usize)[k] * w.weight(j) + s;
        }
        dst[k] = s;
    }
}

fn accum_row_portable(dst: &mut [f32], h: &Matrix, nbrs: &[u32], w: &StripWeight<'_>, fresh: bool) {
    accum_row_impl(dst, h, nbrs, w, fresh);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accum_row_avx2(
    dst: &mut [f32],
    h: &Matrix,
    nbrs: &[u32],
    w: &StripWeight<'_>,
    fresh: bool,
) {
    accum_row_impl(dst, h, nbrs, w, fresh);
}

#[inline]
fn accum_row(
    level: SimdLevel,
    dst: &mut [f32],
    h: &Matrix,
    nbrs: &[u32],
    w: &StripWeight<'_>,
    fresh: bool,
) {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only resolved when `avx2_supported()` is true.
        SimdLevel::Avx2 => unsafe { accum_row_avx2(dst, h, nbrs, w, fresh) },
        _ => accum_row_portable(dst, h, nbrs, w, fresh),
    }
}

/// Rows per parallel chunk for a CSR-walking kernel: the real per-row cost
/// is `(avg_degree + 1)·d`, not the dense `d` — sizing chunks by the dense
/// row cost makes sparse TOSG aggregations cut far too many chunks (and
/// spin up workers) for the work they actually contain.
fn csr_chunk_rows(csr: &Csr, d: usize) -> usize {
    let avg_deg = csr.num_edges() / csr.num_nodes().max(1);
    kgtosa_par::chunk_rows((avg_deg + 1).saturating_mul(d))
}

/// `out[i] = mean_{j ∈ csr(i)} h[j]` (zero when `i` has no neighbours).
///
/// Public because SeHGNN's one-shot metapath pre-aggregation reuses it.
/// Row-blocked parallel: every output row is a pure gather over `h`, so
/// each worker owns a disjoint band of rows and the result is bit-identical
/// to the serial loop at any thread count. Rows accumulate in
/// register-blocked strips over the feature dimension ([`accum_row_impl`]).
pub fn mean_aggregate(csr: &Csr, h: &Matrix, out: &mut Matrix) {
    out.fill_zero();
    let d = h.cols();
    let level = simd_level();
    let block = csr_chunk_rows(csr, d);
    let pool = Pool::for_work(csr.num_edges().saturating_mul(d));
    pool.par_chunks_mut("nn.mean_aggregate", out.data_mut(), block * d, |ci, band| {
        for (off, out_row) in band.chunks_mut(d).enumerate() {
            let i = ci * block + off;
            if i >= csr.num_nodes() {
                continue;
            }
            let nbrs = csr.neighbors(Vid(i as u32));
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            accum_row(level, out_row, h, nbrs, &StripWeight::Uniform(inv), true);
        }
    });
}

/// Backward through one direction of one relation:
/// * `grad_W = aggᵀ · grad_out` (agg recomputed),
/// * `grad_h += Âᵀ · (grad_out · Wᵀ)`, accumulated in **gather form** over
///   the transpose adjacency `csr_t` so each `grad_h` row is written by
///   exactly one worker (deterministic row-blocked parallelism; the
///   scatter form would race on shared rows).
///
/// Returns `grad_W` (drawn from `arena`).
#[allow(clippy::too_many_arguments)]
fn direction_backward(
    (csr, csr_t): (&Csr, &Csr),
    h: &Matrix,
    w: &Matrix,
    grad_out: &Matrix,
    grad_h: &mut Matrix,
    agg: &mut Matrix,
    scratch: &mut Matrix,
    arena: &mut ScratchArena,
) -> Matrix {
    let mut grad_w = arena.take(w.rows(), w.cols());
    if csr.num_edges() == 0 {
        return grad_w;
    }
    mean_aggregate(csr, h, agg);
    agg.t_matmul_into(grad_out, &mut grad_w);
    // scratch = grad_out @ Wᵀ
    grad_out.matmul_t_into(w, scratch);
    mean_backward_gather(csr, csr_t, scratch, grad_h);
    grad_w
}

/// `grad_h[j] += Σ_{i : j ∈ N_i} (1/|N_i|) · scratch[i]` — the backward of
/// [`mean_aggregate`], in gather form over the transpose adjacency `csr_t`
/// (the i's with `j ∈ csr(i)` are exactly the neighbours of `j` in `csr_t`)
/// so each `grad_h` row has a single writer and row-blocked parallelism is
/// deterministic. Shared with the basis-decomposition layer.
pub(crate) fn mean_backward_gather(csr: &Csr, csr_t: &Csr, scratch: &Matrix, grad_h: &mut Matrix) {
    let d = scratch.cols();
    let level = simd_level();
    let block = csr_chunk_rows(csr_t, d);
    let pool = Pool::for_work(csr.num_edges().saturating_mul(d));
    pool.par_chunks_mut("nn.rgcn.grad_h", grad_h.data_mut(), block * d, |ci, band| {
        for (off, dst) in band.chunks_mut(d).enumerate() {
            let j = ci * block + off;
            if j >= csr_t.num_nodes() {
                continue;
            }
            let nbrs = csr_t.neighbors(Vid(j as u32));
            if nbrs.is_empty() {
                continue;
            }
            accum_row(level, dst, scratch, nbrs, &StripWeight::InvDegree(csr), false);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgtosa_kg::KnowledgeGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_graph() -> HeteroGraph {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("a", "A", "r0", "b", "B");
        kg.add_triple_terms("a", "A", "r0", "c", "B");
        kg.add_triple_terms("b", "B", "r1", "c", "B");
        HeteroGraph::build(&kg)
    }

    #[test]
    fn forward_shapes() {
        let g = tiny_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = RgcnLayer::new(g.num_relations(), 4, 3, true, &mut rng);
        let h = xavier_uniform(g.num_nodes(), 4, &mut rng);
        let (out, _) = layer.forward(&g, &h);
        assert_eq!(out.shape(), (3, 3));
    }

    #[test]
    fn mean_aggregate_is_mean() {
        let g = tiny_graph();
        // Node c (id 2) has incoming r0 from a: inc CSR of r0.
        let h = Matrix::from_vec(3, 1, vec![10.0, 20.0, 30.0]);
        let mut out = Matrix::zeros(3, 1);
        mean_aggregate(&g.relation(Rid(0)).inc, &h, &mut out);
        // b (1) ← a; c (2) ← a.
        assert_eq!(out.get(1, 0), 10.0);
        assert_eq!(out.get(2, 0), 10.0);
        assert_eq!(out.get(0, 0), 0.0);
        // Outgoing of r0: a → {b, c} mean = 25.
        mean_aggregate(&g.relation(Rid(0)).out, &h, &mut out);
        assert_eq!(out.get(0, 0), 25.0);
    }

    #[test]
    fn param_count_scales_with_relations() {
        let mut rng = StdRng::seed_from_u64(0);
        let small = RgcnLayer::new(2, 8, 8, false, &mut rng);
        let large = RgcnLayer::new(10, 8, 8, false, &mut rng);
        assert!(large.param_count() > small.param_count());
        assert_eq!(
            large.param_count(),
            10 * 2 * 64 + 64 + 8 // relations*2 dirs*8*8 + self + bias
        );
    }

    /// Full finite-difference check of every parameter and the input.
    #[test]
    fn backward_matches_finite_difference() {
        let g = tiny_graph();
        let mut rng = StdRng::seed_from_u64(9);
        let layer = RgcnLayer::new(g.num_relations(), 3, 2, true, &mut rng);
        let h = xavier_uniform(g.num_nodes(), 3, &mut rng);

        let loss = |l: &RgcnLayer, h: &Matrix| -> f32 {
            let (out, _) = l.forward(g_ref(), h);
            out.data().iter().map(|&v| v * v).sum()
        };
        // A fresh graph per call (cheap) to avoid borrow gymnastics.
        fn g_ref() -> &'static HeteroGraph {
            use std::sync::OnceLock;
            static G: OnceLock<HeteroGraph> = OnceLock::new();
            G.get_or_init(tiny_graph)
        }

        let (out, cache) = layer.forward(g_ref(), &h);
        let mut grad_out = out.clone();
        grad_out.scale(2.0); // d(sum v²)/dv = 2v
        let (grad_h, grads) = layer.backward(g_ref(), &h, &cache, grad_out);

        let eps = 1e-2f32;
        let check = |analytic: f32, num: f32, what: &str| {
            let tol = 2e-2 * (1.0 + num.abs());
            assert!(
                (analytic - num).abs() < tol,
                "{what}: analytic {analytic} vs numeric {num}"
            );
        };
        // Input gradient.
        for r in 0..h.rows() {
            for c in 0..h.cols() {
                let mut hp = h.clone();
                hp.set(r, c, h.get(r, c) + eps);
                let mut hm = h.clone();
                hm.set(r, c, h.get(r, c) - eps);
                let num = (loss(&layer, &hp) - loss(&layer, &hm)) / (2.0 * eps);
                check(grad_h.get(r, c), num, "grad_h");
            }
        }
        // Self-loop weight gradient.
        for r in 0..layer.w_self.rows() {
            for c in 0..layer.w_self.cols() {
                let mut lp = layer.clone();
                lp.w_self.set(r, c, layer.w_self.get(r, c) + eps);
                let mut lm = layer.clone();
                lm.w_self.set(r, c, layer.w_self.get(r, c) - eps);
                let num = (loss(&lp, &h) - loss(&lm, &h)) / (2.0 * eps);
                check(grads.w_self.get(r, c), num, "w_self");
            }
        }
        // One relation weight each way.
        for rel in 0..layer.w_fwd.len() {
            let mut lp = layer.clone();
            lp.w_fwd[rel].set(0, 0, layer.w_fwd[rel].get(0, 0) + eps);
            let mut lm = layer.clone();
            lm.w_fwd[rel].set(0, 0, layer.w_fwd[rel].get(0, 0) - eps);
            let num = (loss(&lp, &h) - loss(&lm, &h)) / (2.0 * eps);
            check(grads.w_fwd[rel].get(0, 0), num, "w_fwd");

            let mut lp = layer.clone();
            lp.w_rev[rel].set(1, 1, layer.w_rev[rel].get(1, 1) + eps);
            let mut lm = layer.clone();
            lm.w_rev[rel].set(1, 1, layer.w_rev[rel].get(1, 1) - eps);
            let num = (loss(&lp, &h) - loss(&lm, &h)) / (2.0 * eps);
            check(grads.w_rev[rel].get(1, 1), num, "w_rev");
        }
        // Bias gradient.
        for c in 0..layer.b.len() {
            let mut lp = layer.clone();
            lp.b[c] += eps;
            let mut lm = layer.clone();
            lm.b[c] -= eps;
            let num = (loss(&lp, &h) - loss(&lm, &h)) / (2.0 * eps);
            check(grads.b[c], num, "bias");
        }
    }
}
