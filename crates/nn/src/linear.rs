//! Fully-connected layer with explicit backward pass.

use kgtosa_tensor::{xavier_uniform, Matrix};
use rand::Rng;

/// `y = x @ W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias vector, `out_dim`.
    pub b: Vec<f32>,
}

/// Gradients produced by [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// Gradient of the weights.
    pub w: Matrix,
    /// Gradient of the bias.
    pub b: Vec<f32>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w: xavier_uniform(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass; the caller keeps `x` for the backward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, &b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        y
    }

    /// Backward pass: given the forward input `x` and `∂L/∂y`, returns
    /// `∂L/∂x` and the parameter gradients.
    pub fn backward(&self, x: &Matrix, grad_out: &Matrix) -> (Matrix, LinearGrads) {
        let grad_x = grad_out.matmul_t(&self.w);
        let grad_w = x.t_matmul(grad_out);
        let mut grad_b = vec![0.0f32; self.b.len()];
        for r in 0..grad_out.rows() {
            for (gb, &g) in grad_b.iter_mut().zip(grad_out.row(r)) {
                *gb += g;
            }
        }
        (grad_x, LinearGrads { w: grad_w, b: grad_b })
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.param_count() + self.b.len()
    }

    /// Applies a plain SGD step (used by tests; real training uses Adam via
    /// the model-level parameter registry).
    pub fn sgd_step(&mut self, grads: &LinearGrads, lr: f32) {
        self.w.add_scaled(&grads.w, -lr);
        for (b, &g) in self.b.iter_mut().zip(&grads.b) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(3, 2, &mut rng);
        layer.b = vec![1.0, -1.0];
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        // Zero input → output equals bias.
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(42);
        let layer = Linear::new(3, 2, &mut rng);
        let x = xavier_uniform(2, 3, &mut rng);
        // Loss = sum(y).
        let y = layer.forward(&x);
        let grad_out = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.param_count()]);
        let (grad_x, grads) = layer.backward(&x, &grad_out);

        let eps = 1e-3f32;
        // Check dL/dx numerically.
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let lp: f32 = layer.forward(&xp).data().iter().sum();
                let lm: f32 = layer.forward(&xm).data().iter().sum();
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - grad_x.get(r, c)).abs() < 1e-2,
                    "dx({r},{c}): num {num} vs analytic {}",
                    grad_x.get(r, c)
                );
            }
        }
        // Check dL/dW numerically.
        for r in 0..layer.w.rows() {
            for c in 0..layer.w.cols() {
                let mut lp_layer = layer.clone();
                lp_layer.w.set(r, c, layer.w.get(r, c) + eps);
                let mut lm_layer = layer.clone();
                lm_layer.w.set(r, c, layer.w.get(r, c) - eps);
                let lp: f32 = lp_layer.forward(&x).data().iter().sum();
                let lm: f32 = lm_layer.forward(&x).data().iter().sum();
                let num = (lp - lm) / (2.0 * eps);
                assert!((num - grads.w.get(r, c)).abs() < 1e-2);
            }
        }
        // Bias gradient is the batch size for sum loss.
        assert!(grads.b.iter().all(|&g| (g - 2.0).abs() < 1e-5));
    }

    #[test]
    fn sgd_step_reduces_sum_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x = xavier_uniform(5, 4, &mut rng);
        let loss = |l: &Linear| -> f32 { l.forward(&x).data().iter().sum() };
        let before = loss(&layer);
        let grad_out = Matrix::from_vec(5, 3, vec![1.0; 15]);
        let (_, grads) = layer.backward(&x, &grad_out);
        layer.sgd_step(&grads, 0.05);
        assert!(loss(&layer) < before);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new(7, 5, &mut rng);
        assert_eq!(layer.param_count(), 7 * 5 + 5);
    }
}
