//! Property-based gradient checks: analytic backward passes must match
//! central finite differences on random shapes and values.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use kgtosa_nn::Linear;
use kgtosa_tensor::{softmax_cross_entropy, softmax_rows, xavier_uniform, Matrix};

fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// softmax rows always form a probability distribution.
    #[test]
    fn softmax_is_distribution(m in arb_matrix(6, 6)) {
        let s = softmax_rows(&m);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// Cross-entropy gradient matches finite differences.
    #[test]
    fn ce_gradient_check(m in arb_matrix(4, 5), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<u32> = (0..m.rows()).map(|_| rng.gen_range(0..m.cols()) as u32).collect();
        let (_, grad) = softmax_cross_entropy(&m, &labels);
        let eps = 1e-2f32;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let mut mp = m.clone();
                mp.set(r, c, m.get(r, c) + eps);
                let mut mm = m.clone();
                mm.set(r, c, m.get(r, c) - eps);
                let (lp, _) = softmax_cross_entropy(&mp, &labels);
                let (lm, _) = softmax_cross_entropy(&mm, &labels);
                let num = (lp - lm) / (2.0 * eps);
                prop_assert!((num - grad.get(r, c)).abs() < 5e-2,
                    "({r},{c}): num {num} vs {}", grad.get(r, c));
            }
        }
    }

    /// Linear backward input-gradient matches finite differences under a
    /// quadratic loss.
    #[test]
    fn linear_gradient_check(seed in 0u64..1000, rows in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(3, 2, &mut rng);
        let x = xavier_uniform(rows, 3, &mut rng);
        let loss = |x: &Matrix| -> f32 {
            layer.forward(x).data().iter().map(|&v| v * v).sum()
        };
        let y = layer.forward(&x);
        let mut grad_out = y.clone();
        grad_out.scale(2.0);
        let (grad_x, _) = layer.backward(&x, &grad_out);
        let eps = 1e-2f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
                prop_assert!((num - grad_x.get(r, c)).abs() < 5e-2 * (1.0 + num.abs()));
            }
        }
    }
}

/// Determinism of the parallel aggregation kernels: identical bits at
/// every thread count, and identical to a naive serial reference.
mod parallel_determinism {
    use super::*;
    use kgtosa_kg::{HeteroGraph, KnowledgeGraph, Rid, Vid};
    use kgtosa_nn::mean_aggregate;
    use kgtosa_par::with_threads;
    use rand::Rng;

    /// The pre-parallel serial semantics of mean aggregation.
    fn reference_mean_aggregate(
        csr: &kgtosa_kg::Csr,
        h: &Matrix,
        out: &mut Matrix,
    ) {
        out.fill_zero();
        let d = h.cols();
        for i in 0..csr.num_nodes() {
            let nbrs = csr.neighbors(Vid(i as u32));
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            let out_row = out.row_mut(i);
            for &j in nbrs {
                let src = h.row(j as usize);
                for k in 0..d {
                    out_row[k] += inv * src[k];
                }
            }
        }
    }

    fn random_graph(nodes: usize, edges: usize, seed: u64) -> HeteroGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kg = KnowledgeGraph::new();
        for i in 0..nodes {
            kg.add_node(&format!("n{i}"), "N");
        }
        for _ in 0..edges {
            let s = rng.gen_range(0..nodes);
            let o = rng.gen_range(0..nodes);
            kg.add_triple_terms(&format!("n{s}"), "N", "r", &format!("n{o}"), "N");
        }
        HeteroGraph::build(&kg)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// mean_aggregate: bit-identical to the reference at 1/2/4/8 threads.
        #[test]
        fn mean_aggregate_bit_identical(nodes in 1usize..600,
                                        edge_factor in 0usize..6,
                                        dim in 1usize..24,
                                        seed in 0u64..1000) {
            let g = random_graph(nodes, nodes * edge_factor, seed);
            let h = xavier_uniform(g.num_nodes(), dim, &mut StdRng::seed_from_u64(seed ^ 1));
            let csr = &g.relation(Rid(0)).inc;
            let mut expect = Matrix::zeros(g.num_nodes(), dim);
            reference_mean_aggregate(csr, &h, &mut expect);
            for threads in [1usize, 2, 4, 8] {
                let mut got = Matrix::zeros(g.num_nodes(), dim);
                with_threads(threads, || mean_aggregate(csr, &h, &mut got));
                prop_assert_eq!(got.data(), expect.data(), "threads={}", threads);
            }
        }

        /// Full RGCN forward + backward: bit-identical across thread counts
        /// (covers add_matmul, matmul*, and the gather-form grad_h path).
        #[test]
        fn rgcn_pass_bit_identical(nodes in 2usize..200, seed in 0u64..1000) {
            let g = random_graph(nodes, nodes * 3, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 7);
            let layer = kgtosa_nn::RgcnLayer::new(g.num_relations(), 8, 8, true, &mut rng);
            let h = xavier_uniform(g.num_nodes(), 8, &mut rng);
            let run = || {
                let (out, cache) = layer.forward(&g, &h);
                let (grad_h, grads) = layer.backward(&g, &h, &cache, out.clone());
                (out, grad_h, grads)
            };
            let (out1, gh1, g1) = with_threads(1, run);
            for threads in [2usize, 4, 8] {
                let (out, gh, gp) = with_threads(threads, run);
                prop_assert_eq!(out.data(), out1.data(), "out threads={}", threads);
                prop_assert_eq!(gh.data(), gh1.data(), "grad_h threads={}", threads);
                prop_assert_eq!(gp.w_self.data(), g1.w_self.data());
                for (a, b) in gp.w_fwd.iter().zip(&g1.w_fwd) {
                    prop_assert_eq!(a.data(), b.data());
                }
            }
        }
    }
}
