//! Property-based gradient checks: analytic backward passes must match
//! central finite differences on random shapes and values.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use kgtosa_nn::Linear;
use kgtosa_tensor::{softmax_cross_entropy, softmax_rows, xavier_uniform, Matrix};

fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// softmax rows always form a probability distribution.
    #[test]
    fn softmax_is_distribution(m in arb_matrix(6, 6)) {
        let s = softmax_rows(&m);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// Cross-entropy gradient matches finite differences.
    #[test]
    fn ce_gradient_check(m in arb_matrix(4, 5), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<u32> = (0..m.rows()).map(|_| rng.gen_range(0..m.cols()) as u32).collect();
        let (_, grad) = softmax_cross_entropy(&m, &labels);
        let eps = 1e-2f32;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let mut mp = m.clone();
                mp.set(r, c, m.get(r, c) + eps);
                let mut mm = m.clone();
                mm.set(r, c, m.get(r, c) - eps);
                let (lp, _) = softmax_cross_entropy(&mp, &labels);
                let (lm, _) = softmax_cross_entropy(&mm, &labels);
                let num = (lp - lm) / (2.0 * eps);
                prop_assert!((num - grad.get(r, c)).abs() < 5e-2,
                    "({r},{c}): num {num} vs {}", grad.get(r, c));
            }
        }
    }

    /// Linear backward input-gradient matches finite differences under a
    /// quadratic loss.
    #[test]
    fn linear_gradient_check(seed in 0u64..1000, rows in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(3, 2, &mut rng);
        let x = xavier_uniform(rows, 3, &mut rng);
        let loss = |x: &Matrix| -> f32 {
            layer.forward(x).data().iter().map(|&v| v * v).sum()
        };
        let y = layer.forward(&x);
        let mut grad_out = y.clone();
        grad_out.scale(2.0);
        let (grad_x, _) = layer.backward(&x, &grad_out);
        let eps = 1e-2f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
                prop_assert!((num - grad_x.get(r, c)).abs() < 5e-2 * (1.0 + num.abs()));
            }
        }
    }
}
