//! Random-walk samplers: the uniform random walk (URW) used by GraphSAINT
//! and the paper's biased random walk (BRW, Algorithm 1).
//!
//! Both walk over the *undirected* merged adjacency, matching GraphSAINT's
//! sampler. They differ only in where roots come from:
//!
//! * **URW** draws roots uniformly from all vertices — which is exactly why
//!   its samples underrepresent target vertices (Figure 2),
//! * **BRW** draws roots uniformly from the task's target vertices
//!   (`getInitialVertices(bs, V_T)`, Algorithm 1 line 2), biasing coverage
//!   toward task-relevant regions (Figure 5).
//!
//! Walks from different roots are independent, so they run on the shared
//! pool with **per-walker RNG streams**: the caller's generator draws one
//! `u64` seed per root (in root order), each walker steps its own
//! `SmallRng` from that seed, and the visited sets union into a bitset —
//! commutative, so the sample is bit-identical at any thread count.

use kgtosa_kg::{HeteroGraph, NodeSet, Vid};
use kgtosa_par::Pool;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Rough element-operations per walk hop (neighbour lookup + RNG step),
/// used to size the work estimate against the pool's spawn threshold.
const HOP_WORK: usize = 64;

/// Configuration shared by the walk samplers.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Number of root vertices (`bs` in Algorithm 1; "initial set" size).
    pub roots: usize,
    /// Walk length `h` (number of hops from each root).
    pub walk_length: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            roots: 20,
            walk_length: 2,
        }
    }
}

/// GraphSAINT's uniform random-walk sampler: roots drawn uniformly from all
/// vertices. Returns the set of visited vertices `V_s`.
pub fn uniform_random_walk(g: &HeteroGraph, cfg: &WalkConfig, rng: &mut impl Rng) -> NodeSet {
    let _span = kgtosa_obs::span!("sample.urw");
    let n = g.num_nodes();
    let mut visited = NodeSet::new(n);
    if n == 0 {
        return visited;
    }
    let roots: Vec<Vid> = (0..cfg.roots)
        .map(|_| Vid(rng.gen_range(0..n) as u32))
        .collect();
    run_walks(g, &roots, cfg.walk_length, rng, &mut visited);
    visited
}

/// The paper's biased random-walk sampler (Algorithm 1): roots drawn
/// uniformly *from the target set*, walks expanded `h` hops. Returns `V_s`.
pub fn biased_random_walk(
    g: &HeteroGraph,
    targets: &[Vid],
    cfg: &WalkConfig,
    rng: &mut impl Rng,
) -> NodeSet {
    let _span = kgtosa_obs::span!("sample.brw");
    let mut visited = NodeSet::new(g.num_nodes());
    if targets.is_empty() {
        return visited;
    }
    // getInitialVertices(bs, V_T): sample without replacement when possible.
    let initial: Vec<Vid> = if targets.len() <= cfg.roots {
        targets.to_vec()
    } else {
        targets
            .choose_multiple(rng, cfg.roots)
            .copied()
            .collect()
    };
    run_walks(g, &initial, cfg.walk_length, rng, &mut visited);
    visited
}

/// Runs one walk per root, in parallel when the total work warrants it,
/// and inserts every visited vertex. `rng` only hands out one stream seed
/// per root; the hops themselves draw from per-walker generators.
fn run_walks(
    g: &HeteroGraph,
    roots: &[Vid],
    len: usize,
    rng: &mut impl Rng,
    visited: &mut NodeSet,
) {
    let streams: Vec<(Vid, u64)> = roots.iter().map(|&r| (r, rng.gen())).collect();
    let work = roots
        .len()
        .saturating_mul(len.max(1))
        .saturating_mul(HOP_WORK);
    // Live rate/ETA over completed walkers; the atomic advance does not
    // affect the per-walker RNG streams, so determinism is preserved.
    let progress = kgtosa_obs::telemetry_active()
        .then(|| kgtosa_obs::progress_task("sample.walk", Some(roots.len() as u64)));
    let paths = Pool::for_work(work).par_map_collect("sampler.walk", &streams, |_, &(root, seed)| {
        let path = walk_path(g, root, len, seed);
        if let Some(progress) = &progress {
            progress.advance(1);
        }
        path
    });
    for path in paths {
        for v in path {
            visited.insert(Vid(v));
        }
    }
}

/// One random walk of `len` steps from `root` over the undirected view,
/// stepping a dedicated generator seeded with this walker's stream seed.
/// Returns the visited path (root included).
fn walk_path(g: &HeteroGraph, root: Vid, len: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut path = Vec::with_capacity(len + 1);
    path.push(root.raw());
    let mut current = root;
    for _ in 0..len {
        let nbrs = g.undirected().neighbors(current);
        if nbrs.is_empty() {
            break;
        }
        current = Vid(nbrs[rng.gen_range(0..nbrs.len())]);
        path.push(current.raw());
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgtosa_kg::KnowledgeGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two disjoint components: targets live in component A.
    fn two_components() -> (KnowledgeGraph, Vec<Vid>) {
        let mut kg = KnowledgeGraph::new();
        // Component A: chain of targets and neighbours.
        kg.add_triple_terms("t0", "T", "r", "x0", "X");
        kg.add_triple_terms("t1", "T", "r", "x0", "X");
        kg.add_triple_terms("x0", "X", "r", "x1", "X");
        // Component B: disconnected from targets.
        kg.add_triple_terms("y0", "Y", "r", "y1", "Y");
        kg.add_triple_terms("y1", "Y", "r", "y2", "Y");
        let targets = vec![kg.find_node("t0").unwrap(), kg.find_node("t1").unwrap()];
        (kg, targets)
    }

    #[test]
    fn brw_never_leaves_target_component() {
        let (kg, targets) = two_components();
        let g = HeteroGraph::build(&kg);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = WalkConfig {
            roots: 10,
            walk_length: 4,
        };
        let vs = biased_random_walk(&g, &targets, &cfg, &mut rng);
        for v in vs.iter() {
            let term = kg.node_term(v);
            assert!(!term.starts_with('y'), "BRW escaped to {term}");
        }
        // All targets were used as roots (targets.len() <= roots).
        assert!(vs.contains(targets[0]));
        assert!(vs.contains(targets[1]));
    }

    #[test]
    fn urw_can_visit_anything() {
        let (kg, _) = two_components();
        let g = HeteroGraph::build(&kg);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = WalkConfig {
            roots: 50,
            walk_length: 3,
        };
        let vs = uniform_random_walk(&g, &cfg, &mut rng);
        // With 50 roots over 7 nodes, both components get sampled.
        let has_y = vs.iter().any(|v| kg.node_term(v).starts_with('y'));
        assert!(has_y);
    }

    #[test]
    fn walks_are_deterministic_under_seed() {
        let (kg, targets) = two_components();
        let g = HeteroGraph::build(&kg);
        let cfg = WalkConfig::default();
        let a = biased_random_walk(&g, &targets, &cfg, &mut StdRng::seed_from_u64(9));
        let b = biased_random_walk(&g, &targets, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }

    #[test]
    fn walks_bit_identical_across_thread_counts() {
        let (kg, targets) = two_components();
        let g = HeteroGraph::build(&kg);
        // Enough root·hop work to cross the pool's spawn threshold.
        let cfg = WalkConfig {
            roots: 400,
            walk_length: 4,
        };
        let base = kgtosa_par::with_threads(1, || {
            biased_random_walk(&g, &targets, &cfg, &mut StdRng::seed_from_u64(3))
        });
        for threads in [2usize, 4, 8] {
            let vs = kgtosa_par::with_threads(threads, || {
                biased_random_walk(&g, &targets, &cfg, &mut StdRng::seed_from_u64(3))
            });
            assert_eq!(
                vs.iter().collect::<Vec<_>>(),
                base.iter().collect::<Vec<_>>(),
                "threads={threads}"
            );
            let us = kgtosa_par::with_threads(threads, || {
                uniform_random_walk(&g, &cfg, &mut StdRng::seed_from_u64(3))
            });
            let ubase = kgtosa_par::with_threads(1, || {
                uniform_random_walk(&g, &cfg, &mut StdRng::seed_from_u64(3))
            });
            assert_eq!(
                us.iter().collect::<Vec<_>>(),
                ubase.iter().collect::<Vec<_>>(),
                "urw threads={threads}"
            );
        }
    }

    #[test]
    fn empty_targets_empty_sample() {
        let (kg, _) = two_components();
        let g = HeteroGraph::build(&kg);
        let vs = biased_random_walk(
            &g,
            &[],
            &WalkConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
        assert!(vs.is_empty());
    }

    #[test]
    fn isolated_root_stays_put() {
        let mut kg = KnowledgeGraph::new();
        let lonely = kg.add_node("lonely", "T");
        kg.add_triple_terms("a", "A", "r", "b", "B");
        let g = HeteroGraph::build(&kg);
        let vs = biased_random_walk(
            &g,
            &[lonely],
            &WalkConfig {
                roots: 1,
                walk_length: 5,
            },
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(vs.len(), 1);
        assert!(vs.contains(lonely));
    }
}
