//! GraphSAINT's edge sampler.
//!
//! Alongside the random-walk sampler, GraphSAINT defines an edge sampler
//! that picks edges with probability proportional to `1/deg(u) + 1/deg(v)`
//! (minimizing the variance of the resulting unbiased estimator) and
//! induces the subgraph on their endpoints. Included for completeness of
//! the GraphSAINT family; the paper's experiments use the walk sampler.

use kgtosa_kg::{HeteroGraph, NodeSet, Vid};
use rand::Rng;

/// Samples `budget` edges with GraphSAINT's variance-minimizing edge
/// probabilities and returns the endpoint set `V_s`.
pub fn edge_sample(g: &HeteroGraph, budget: usize, rng: &mut impl Rng) -> NodeSet {
    let _span = kgtosa_obs::span!("sample.edge");
    let mut out = NodeSet::new(g.num_nodes());
    let m = g.num_edges();
    if m == 0 || budget == 0 {
        return out;
    }
    // Build the cumulative distribution over directed edges once.
    let mut cumulative: Vec<f64> = Vec::with_capacity(m);
    let mut acc = 0.0f64;
    let mut endpoints: Vec<(u32, u32)> = Vec::with_capacity(m);
    for v in 0..g.num_nodes() {
        let vid = Vid(v as u32);
        for &u in g.merged_out().neighbors(vid) {
            let du = g.total_degree(vid).max(1) as f64;
            let dv = g.total_degree(Vid(u)).max(1) as f64;
            acc += 1.0 / du + 1.0 / dv;
            cumulative.push(acc);
            endpoints.push((v as u32, u));
        }
    }
    for _ in 0..budget {
        let x = rng.gen::<f64>() * acc;
        let idx = cumulative.partition_point(|&c| c < x).min(m - 1);
        let (a, b) = endpoints[idx];
        out.insert(Vid(a));
        out.insert(Vid(b));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgtosa_kg::KnowledgeGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hub_and_chain() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        // A hub with 20 spokes plus a 2-node appendix.
        for i in 0..20 {
            kg.add_triple_terms("hub", "H", "r", &format!("leaf{i}"), "L");
        }
        kg.add_triple_terms("x", "X", "r", "y", "Y");
        kg
    }

    #[test]
    fn endpoints_of_sampled_edges_present() {
        let kg = hub_and_chain();
        let g = HeteroGraph::build(&kg);
        let mut rng = StdRng::seed_from_u64(3);
        let vs = edge_sample(&g, 10, &mut rng);
        assert!(!vs.is_empty());
        assert!(vs.len() <= 2 * 10);
    }

    #[test]
    fn low_degree_edges_are_favoured() {
        // The x-y edge has probability weight 1/1 + 1/1 = 2; each hub-leaf
        // edge has 1/20 + 1 = 1.05. With many draws, x,y must appear.
        let kg = hub_and_chain();
        let g = HeteroGraph::build(&kg);
        let mut rng = StdRng::seed_from_u64(9);
        let vs = edge_sample(&g, 50, &mut rng);
        assert!(vs.contains(kg.find_node("x").unwrap()));
        assert!(vs.contains(kg.find_node("y").unwrap()));
    }

    #[test]
    fn empty_graph_and_zero_budget() {
        let kg = KnowledgeGraph::new();
        let g = HeteroGraph::build(&kg);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(edge_sample(&g, 5, &mut rng).is_empty());
        let kg = hub_and_chain();
        let g = HeteroGraph::build(&kg);
        assert!(edge_sample(&g, 0, &mut rng).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let kg = hub_and_chain();
        let g = HeteroGraph::build(&kg);
        let a = edge_sample(&g, 12, &mut StdRng::seed_from_u64(7));
        let b = edge_sample(&g, 12, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }
}
