//! Influence-based sampling (IBS, Algorithm 2 of the paper).
//!
//! For every target vertex, an approximate PPR computes influence scores
//! over its neighbourhood; the top-`k` influencers per target are kept; the
//! targets are grouped into partitions of `bs` for batch efficiency, and the
//! union of partitions induces `KG'`. Per-target PPR runs are independent
//! and parallelized across worker threads (the paper parallelizes lines 2-4
//! with multi-threading).

use kgtosa_kg::{HeteroGraph, NodeSet, Vid};
use kgtosa_par::Pool;

use crate::ppr::{approximate_ppr, top_k, PprConfig};

/// Configuration of IBS (the paper's defaults: `bs = 20000`, `k = 16`,
/// `α = 0.25`, `ε = 2e-4`).
#[derive(Debug, Clone, Copy)]
pub struct IbsConfig {
    /// Influencers kept per target (`top-k`).
    pub k: usize,
    /// Targets per partition (`bs`).
    pub batch_size: usize,
    /// PPR parameters.
    pub ppr: PprConfig,
    /// Worker threads for the per-target PPR runs. Defaults to the
    /// process-wide thread count (`--threads` / `KGTOSA_THREADS` /
    /// available parallelism).
    pub threads: usize,
}

impl Default for IbsConfig {
    fn default() -> Self {
        Self {
            k: 16,
            batch_size: 20_000,
            ppr: PprConfig::default(),
            threads: kgtosa_par::current_threads(),
        }
    }
}

/// One partition: a group of targets plus their selected influencers.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Target vertices of this partition.
    pub targets: Vec<Vid>,
    /// All member vertices (targets ∪ top-k influencers).
    pub members: Vec<Vid>,
}

/// Runs Algorithm 2 through partition construction. Returns the partitions
/// (line 4); [`ibs_sample`] unions them into the final `V_s`.
pub fn ibs_partitions(g: &HeteroGraph, targets: &[Vid], cfg: &IbsConfig) -> Vec<Partition> {
    let _span = kgtosa_obs::span!("sample.ibs");
    kgtosa_obs::counter("sample.ibs.ppr_runs").add(targets.len() as u64);
    // Live rate/ETA over completed per-target PPR runs.
    let progress = kgtosa_obs::telemetry_active()
        .then(|| kgtosa_obs::progress_task("sample.ibs", Some(targets.len() as u64)));
    // Lines 2-3: per-target influence scores → top-k pairs, in parallel.
    // Per-target runs are independent, so the shared pool's dynamically
    // scheduled, order-restoring map keeps the result deterministic.
    let per_target: Vec<Vec<Vid>> =
        Pool::new(cfg.threads).par_map_collect("sampler.ibs", targets, |_, &target| {
            let scores = approximate_ppr(g, target, &cfg.ppr);
            let selected: Vec<Vid> = top_k(&scores, target, cfg.k)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            if let Some(progress) = &progress {
                progress.advance(1);
            }
            selected
        });

    // Line 4: group bs targets per partition.
    let bs = cfg.batch_size.max(1);
    targets
        .chunks(bs)
        .enumerate()
        .map(|(chunk_idx, chunk)| {
            let mut members = NodeSet::new(g.num_nodes());
            for (off, &t) in chunk.iter().enumerate() {
                members.insert(t);
                for &v in &per_target[chunk_idx * bs + off] {
                    members.insert(v);
                }
            }
            Partition {
                targets: chunk.to_vec(),
                members: members.iter().collect(),
            }
        })
        .collect()
}

/// Full IBS sampling: union of all partition members, ready for
/// `extractSubgraph` (Algorithm 2 line 5).
pub fn ibs_sample(g: &HeteroGraph, targets: &[Vid], cfg: &IbsConfig) -> NodeSet {
    let mut out = NodeSet::new(g.num_nodes());
    for part in ibs_partitions(g, targets, cfg) {
        for v in part.members {
            out.insert(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgtosa_kg::KnowledgeGraph;

    /// Star around two targets plus an unrelated far-away clique.
    fn kg() -> (KnowledgeGraph, Vec<Vid>) {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("t0", "T", "r", "n0", "N");
        kg.add_triple_terms("t0", "T", "r", "n1", "N");
        kg.add_triple_terms("t1", "T", "r", "n1", "N");
        kg.add_triple_terms("n1", "N", "r", "n2", "N");
        // Far clique.
        kg.add_triple_terms("f0", "F", "r", "f1", "F");
        kg.add_triple_terms("f1", "F", "r", "f2", "F");
        kg.add_triple_terms("f2", "F", "r", "f0", "F");
        let t = vec![kg.find_node("t0").unwrap(), kg.find_node("t1").unwrap()];
        (kg, t)
    }

    #[test]
    fn sample_contains_targets_and_influencers() {
        let (kg, targets) = kg();
        let g = HeteroGraph::build(&kg);
        let cfg = IbsConfig {
            k: 3,
            batch_size: 10,
            threads: 2,
            ..Default::default()
        };
        let vs = ibs_sample(&g, &targets, &cfg);
        assert!(vs.contains(targets[0]));
        assert!(vs.contains(targets[1]));
        assert!(vs.contains(kg.find_node("n1").unwrap()));
        // The disconnected clique gets no influence mass.
        assert!(!vs.contains(kg.find_node("f0").unwrap()));
    }

    #[test]
    fn k_limits_neighbourhood() {
        let (kg, targets) = kg();
        let g = HeteroGraph::build(&kg);
        let small = ibs_sample(
            &g,
            &targets,
            &IbsConfig {
                k: 1,
                batch_size: 10,
                threads: 1,
                ..Default::default()
            },
        );
        let large = ibs_sample(
            &g,
            &targets,
            &IbsConfig {
                k: 8,
                batch_size: 10,
                threads: 1,
                ..Default::default()
            },
        );
        assert!(small.len() <= large.len());
    }

    #[test]
    fn partitions_respect_batch_size() {
        let (kg, targets) = kg();
        let g = HeteroGraph::build(&kg);
        let parts = ibs_partitions(
            &g,
            &targets,
            &IbsConfig {
                k: 2,
                batch_size: 1,
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.targets.len() == 1));
    }

    #[test]
    fn parallel_matches_sequential() {
        let (kg, targets) = kg();
        let g = HeteroGraph::build(&kg);
        let base = IbsConfig {
            k: 4,
            batch_size: 10,
            ..Default::default()
        };
        let seq = ibs_sample(&g, &targets, &IbsConfig { threads: 1, ..base });
        let par = ibs_sample(&g, &targets, &IbsConfig { threads: 4, ..base });
        assert_eq!(
            seq.iter().collect::<Vec<_>>(),
            par.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_targets() {
        let (kg, _) = kg();
        let g = HeteroGraph::build(&kg);
        let vs = ibs_sample(&g, &[], &IbsConfig::default());
        assert!(vs.is_empty());
    }
}
