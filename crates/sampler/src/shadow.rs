//! ShaDow-style bounded ego-subgraph extraction.
//!
//! ShaDow-GNN ("decoupling the depth and scope of GNNs", one of the paper's
//! evaluated methods) builds, for every target vertex, a small *shallow*
//! subgraph — its neighbourhood up to a fixed depth with a per-vertex
//! fanout cap — and runs an arbitrarily deep GNN inside that fixed scope.
//! This module provides the sampler; the model lives in `kgtosa-models`.

use kgtosa_kg::{HeteroGraph, Vid};
use rand::seq::SliceRandom;
use rand::Rng;

/// Ego-subgraph sampling parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShadowConfig {
    /// BFS depth around each target.
    pub depth: usize,
    /// Maximum sampled neighbours per expanded vertex.
    pub fanout: usize,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        Self { depth: 2, fanout: 10 }
    }
}

/// Samples the bounded-depth ego net of `root` over the undirected view.
/// The root is always the first element of the returned vertex list.
pub fn ego_subgraph(
    g: &HeteroGraph,
    root: Vid,
    cfg: &ShadowConfig,
    rng: &mut impl Rng,
) -> Vec<Vid> {
    // Too hot for a span (one call per root per batch per epoch): a counter
    // is the only telemetry this path can afford.
    kgtosa_obs::counter("sample.shadow.ego_subgraphs").inc();
    let mut picked: Vec<Vid> = vec![root];
    let mut in_set = vec![false; g.num_nodes()];
    in_set[root.idx()] = true;
    let mut frontier = vec![root];
    let mut scratch: Vec<u32> = Vec::new();
    for _ in 0..cfg.depth {
        let mut next = Vec::new();
        for &v in &frontier {
            let nbrs = g.undirected().neighbors(v);
            let chosen: &[u32] = if nbrs.len() <= cfg.fanout {
                nbrs
            } else {
                scratch.clear();
                scratch.extend(nbrs.choose_multiple(rng, cfg.fanout).copied());
                &scratch
            };
            for &u in chosen {
                if !in_set[u as usize] {
                    in_set[u as usize] = true;
                    picked.push(Vid(u));
                    next.push(Vid(u));
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgtosa_kg::KnowledgeGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(center_degree: usize) -> (KnowledgeGraph, Vid) {
        let mut kg = KnowledgeGraph::new();
        for i in 0..center_degree {
            kg.add_triple_terms("hub", "H", "r", &format!("leaf{i}"), "L");
        }
        (kg.clone(), kg.find_node("hub").unwrap())
    }

    #[test]
    fn root_always_first() {
        let (kg, hub) = star(5);
        let g = HeteroGraph::build(&kg);
        let ego = ego_subgraph(&g, hub, &ShadowConfig::default(), &mut StdRng::seed_from_u64(0));
        assert_eq!(ego[0], hub);
    }

    #[test]
    fn fanout_caps_expansion() {
        let (kg, hub) = star(50);
        let g = HeteroGraph::build(&kg);
        let cfg = ShadowConfig { depth: 1, fanout: 7 };
        let ego = ego_subgraph(&g, hub, &cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(ego.len(), 8); // hub + 7 sampled leaves
    }

    #[test]
    fn depth_limits_reach() {
        // chain hub - a - b - c
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("hub", "H", "r", "a", "N");
        kg.add_triple_terms("a", "N", "r", "b", "N");
        kg.add_triple_terms("b", "N", "r", "c", "N");
        let g = HeteroGraph::build(&kg);
        let hub = kg.find_node("hub").unwrap();
        let cfg = ShadowConfig { depth: 2, fanout: 10 };
        let ego = ego_subgraph(&g, hub, &cfg, &mut StdRng::seed_from_u64(0));
        let names: Vec<&str> = ego.iter().map(|&v| kg.node_term(v)).collect();
        assert!(names.contains(&"b"));
        assert!(!names.contains(&"c"), "depth 2 must not reach c");
    }

    #[test]
    fn no_duplicates() {
        let (kg, hub) = star(10);
        let g = HeteroGraph::build(&kg);
        let cfg = ShadowConfig { depth: 3, fanout: 10 };
        let ego = ego_subgraph(&g, hub, &cfg, &mut StdRng::seed_from_u64(2));
        let mut sorted: Vec<u32> = ego.iter().map(|v| v.raw()).collect();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len());
    }

    #[test]
    fn isolated_root_alone() {
        let mut kg = KnowledgeGraph::new();
        let lonely = kg.add_node("lonely", "T");
        kg.add_triple_terms("a", "A", "r", "b", "B");
        let g = HeteroGraph::build(&kg);
        let ego = ego_subgraph(&g, lonely, &ShadowConfig::default(), &mut StdRng::seed_from_u64(0));
        assert_eq!(ego, vec![lonely]);
    }
}
