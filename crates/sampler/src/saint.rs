//! GraphSAINT normalization.
//!
//! GraphSAINT corrects the bias its subgraph sampler introduces by weighting
//! each node's loss with the inverse of its estimated sampling probability
//! (§II-B of the paper: "GraphSAINT further applies normalization techniques
//! during the training to prevent the bias in the induced sub-graphs").
//! The probabilities are estimated by a pre-sampling phase: draw `K`
//! subgraphs, count how often each vertex appears, and set
//! `λ_v = K / count_v` (clipped for stability).

use kgtosa_kg::NodeSet;

/// Estimates per-node loss-normalization weights from pre-sampled
/// subgraphs. Nodes never sampled receive weight 0 — they cannot appear in
/// a training batch anyway.
pub fn node_norm_weights(num_nodes: usize, samples: &[NodeSet], clip: f32) -> Vec<f32> {
    let mut counts = vec![0u32; num_nodes];
    for s in samples {
        for v in s.iter() {
            counts[v.idx()] += 1;
        }
    }
    let k = samples.len() as f32;
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else {
                (k / c as f32).min(clip)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgtosa_kg::Vid;

    #[test]
    fn frequent_nodes_get_small_weights() {
        let s1 = NodeSet::from_iter(4, [Vid(0), Vid(1)]);
        let s2 = NodeSet::from_iter(4, [Vid(0), Vid(2)]);
        let w = node_norm_weights(4, &[s1, s2], 100.0);
        assert_eq!(w[0], 1.0); // in every sample
        assert_eq!(w[1], 2.0);
        assert_eq!(w[2], 2.0);
        assert_eq!(w[3], 0.0); // never sampled
    }

    #[test]
    fn clip_bounds_weights() {
        let mut samples = Vec::new();
        for _ in 0..50 {
            samples.push(NodeSet::from_iter(2, [Vid(0)]));
        }
        samples.push(NodeSet::from_iter(2, [Vid(1)]));
        let w = node_norm_weights(2, &samples, 10.0);
        assert_eq!(w[1], 10.0, "rare node clipped to 10");
    }

    #[test]
    fn no_samples_all_zero() {
        let w = node_norm_weights(3, &[], 5.0);
        assert_eq!(w, vec![0.0, 0.0, 0.0]);
    }
}
