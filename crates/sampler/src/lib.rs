//! # kgtosa-sampler — graph samplers for HGNN training and TOSG extraction
//!
//! The sampling toolbox used by both the baselines and KG-TOSA itself:
//!
//! * [`walk`] — GraphSAINT's uniform random walk (URW) and the paper's
//!   biased random walk (BRW, Algorithm 1),
//! * [`ppr`] — approximate Personalized PageRank via Andersen–Chung–Lang
//!   push, the influence function of Eq. 3,
//! * [`ibs`] — influence-based sampling (Algorithm 2): parallel per-target
//!   PPR, top-k selection, partitioning,
//! * [`shadow`] — ShaDow-GNN bounded ego-subgraphs,
//! * [`edge`] — GraphSAINT's variance-minimizing edge sampler,
//! * [`saint`] — GraphSAINT loss-normalization weights.

pub mod edge;
pub mod ibs;
pub mod ppr;
pub mod saint;
pub mod shadow;
pub mod walk;

pub use edge::edge_sample;
pub use ibs::{ibs_partitions, ibs_sample, IbsConfig, Partition};
pub use ppr::{approximate_ppr, approximate_ppr_batch, top_k, PprConfig};
pub use saint::node_norm_weights;
pub use shadow::{ego_subgraph, ShadowConfig};
pub use walk::{biased_random_walk, uniform_random_walk, WalkConfig};
