//! Approximate Personalized PageRank via the Andersen–Chung–Lang push
//! algorithm (FOCS'06), the influence-score engine behind IBS (Algorithm 2).
//!
//! The push algorithm maintains an approximation vector `p` and a residual
//! vector `r` with the invariant
//!
//! ```text
//! p + α·r·(I + (1-α)/α · W)  ≈ ppr(seed)
//! ```
//!
//! pushing mass from any vertex whose residual exceeds `ε · degree` until
//! none remains. The result is sparse — `O(1/(ε·α))` non-zeros independent
//! of graph size — which is what makes per-target influence scoring
//! tractable (§IV-B's complexity discussion).

use kgtosa_kg::{FxHashMap, HeteroGraph, Vid};

/// Parameters of the push computation.
#[derive(Debug, Clone, Copy)]
pub struct PprConfig {
    /// Teleport probability `α` (the paper uses 0.25 for IBS).
    pub alpha: f32,
    /// Residual tolerance `ε` (the paper uses 2e-4).
    pub epsilon: f32,
}

impl Default for PprConfig {
    fn default() -> Self {
        Self {
            alpha: 0.25,
            epsilon: 2e-4,
        }
    }
}

/// Sparse PPR scores from a single seed over the undirected view.
/// Returns `(vertex, score)` pairs (unsorted, deduplicated).
pub fn approximate_ppr(g: &HeteroGraph, seed: Vid, cfg: &PprConfig) -> Vec<(Vid, f32)> {
    let mut p: FxHashMap<u32, f32> = FxHashMap::default();
    let mut r: FxHashMap<u32, f32> = FxHashMap::default();
    r.insert(seed.raw(), 1.0);
    let mut queue: Vec<u32> = vec![seed.raw()];
    let alpha = cfg.alpha;

    while let Some(u) = queue.pop() {
        let deg = g.total_degree(Vid(u)).max(1);
        let ru = *r.get(&u).unwrap_or(&0.0);
        if ru < cfg.epsilon * deg as f32 {
            continue;
        }
        // push(u)
        *p.entry(u).or_insert(0.0) += alpha * ru;
        let spread = (1.0 - alpha) * ru / deg as f32;
        r.insert(u, 0.0);
        let nbrs = g.undirected().neighbors(Vid(u));
        if nbrs.is_empty() {
            // Dangling vertex: mass returns to the seed.
            let seed_deg = g.total_degree(seed).max(1);
            let e = r.entry(seed.raw()).or_insert(0.0);
            *e += (1.0 - alpha) * ru;
            if *e >= cfg.epsilon * seed_deg as f32 {
                queue.push(seed.raw());
            }
            continue;
        }
        for &v in nbrs {
            let dv = g.total_degree(Vid(v)).max(1);
            let e = r.entry(v).or_insert(0.0);
            let before = *e;
            *e += spread;
            // Enqueue on threshold crossing only (amortized O(1/(εα)) pushes).
            if before < cfg.epsilon * dv as f32 && *e >= cfg.epsilon * dv as f32 {
                queue.push(v);
            }
        }
        // u may need another push if self-loops returned mass.
        if *r.get(&u).unwrap_or(&0.0) >= cfg.epsilon * deg as f32 {
            queue.push(u);
        }
    }
    p.into_iter().map(|(v, s)| (Vid(v), s)).collect()
}

/// Sparse PPR vectors for many seeds at once, parallelized over seeds on
/// the shared pool. Each seed's push computation is independent and fully
/// deterministic, and results come back in seed order, so the output is
/// identical to mapping [`approximate_ppr`] serially — at any thread count.
pub fn approximate_ppr_batch(
    g: &HeteroGraph,
    seeds: &[Vid],
    cfg: &PprConfig,
) -> Vec<Vec<(Vid, f32)>> {
    // A push run touches O(1/(ε·α)) residual entries — the per-seed work
    // estimate that decides whether spawning workers pays off.
    let per_seed = (1.0 / (f64::from(cfg.epsilon) * f64::from(cfg.alpha))).ceil() as usize;
    let pool = kgtosa_par::Pool::for_work(seeds.len().saturating_mul(per_seed));
    pool.par_map_collect("sampler.ppr", seeds, |_, &seed| approximate_ppr(g, seed, cfg))
}

/// The `k` highest-scoring vertices (excluding the seed itself) from a
/// sparse PPR vector — the `SelectTopK-Nodes` step of Algorithm 2.
pub fn top_k(scores: &[(Vid, f32)], seed: Vid, k: usize) -> Vec<(Vid, f32)> {
    let mut sorted: Vec<(Vid, f32)> = scores
        .iter()
        .copied()
        .filter(|(v, _)| *v != seed)
        .collect();
    sorted.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    sorted.truncate(k);
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgtosa_kg::KnowledgeGraph;

    fn line_graph(n: usize) -> HeteroGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..n - 1 {
            kg.add_triple_terms(&format!("n{i}"), "N", "r", &format!("n{}", i + 1), "N");
        }
        HeteroGraph::build(&kg)
    }

    #[test]
    fn mass_is_bounded_and_positive() {
        let g = line_graph(20);
        let scores = approximate_ppr(&g, Vid(0), &PprConfig::default());
        let total: f32 = scores.iter().map(|(_, s)| s).sum();
        assert!(total > 0.0 && total <= 1.0 + 1e-4, "total {total}");
        assert!(scores.iter().all(|&(_, s)| s > 0.0));
    }

    #[test]
    fn seed_has_highest_score() {
        let g = line_graph(20);
        let scores = approximate_ppr(&g, Vid(5), &PprConfig::default());
        let seed_score = scores
            .iter()
            .find(|(v, _)| *v == Vid(5))
            .map(|(_, s)| *s)
            .unwrap();
        for &(v, s) in &scores {
            if v != Vid(5) {
                assert!(s <= seed_score, "{v:?} scored {s} > seed {seed_score}");
            }
        }
    }

    #[test]
    fn score_decays_with_distance() {
        let g = line_graph(30);
        let scores: kgtosa_kg::FxHashMap<u32, f32> = approximate_ppr(
            &g,
            Vid(0),
            &PprConfig {
                alpha: 0.25,
                epsilon: 1e-6,
            },
        )
        .into_iter()
        .map(|(v, s)| (v.raw(), s))
        .collect();
        let s1 = scores.get(&1).copied().unwrap_or(0.0);
        let s8 = scores.get(&8).copied().unwrap_or(0.0);
        assert!(s1 > s8, "near {s1} vs far {s8}");
    }

    #[test]
    fn disconnected_vertices_score_zero() {
        let mut kg = KnowledgeGraph::new();
        kg.add_triple_terms("a", "A", "r", "b", "B");
        kg.add_triple_terms("x", "X", "r", "y", "Y");
        let g = HeteroGraph::build(&kg);
        let scores = approximate_ppr(&g, Vid(0), &PprConfig::default());
        let x = kg.find_node("x").unwrap();
        assert!(scores.iter().all(|&(v, _)| v != x));
    }

    #[test]
    fn isolated_seed_keeps_all_mass() {
        let mut kg = KnowledgeGraph::new();
        kg.add_node("lonely", "T");
        kg.add_triple_terms("a", "A", "r", "b", "B");
        let g = HeteroGraph::build(&kg);
        let scores = approximate_ppr(&g, Vid(0), &PprConfig::default());
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].0, Vid(0));
        assert!(scores[0].1 > 0.9, "isolated seed retains ~all mass");
    }

    #[test]
    fn top_k_excludes_seed_and_sorts() {
        let scores = vec![
            (Vid(0), 0.5),
            (Vid(1), 0.1),
            (Vid(2), 0.3),
            (Vid(3), 0.2),
        ];
        let top = top_k(&scores, Vid(0), 2);
        assert_eq!(top.iter().map(|(v, _)| v.raw()).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn batch_matches_serial_map_at_any_thread_count() {
        let g = line_graph(60);
        let seeds: Vec<Vid> = (0..60).map(Vid).collect();
        let cfg = PprConfig::default();
        let expect: Vec<Vec<(Vid, f32)>> = seeds
            .iter()
            .map(|&s| approximate_ppr(&g, s, &cfg))
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let got =
                kgtosa_par::with_threads(threads, || approximate_ppr_batch(&g, &seeds, &cfg));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn tighter_epsilon_reaches_further() {
        let g = line_graph(40);
        let coarse = approximate_ppr(&g, Vid(0), &PprConfig { alpha: 0.25, epsilon: 1e-2 });
        let fine = approximate_ppr(&g, Vid(0), &PprConfig { alpha: 0.25, epsilon: 1e-6 });
        assert!(fine.len() >= coarse.len());
    }
}
