//! # kgtosa-memtrack — a tracking global allocator
//!
//! The paper reports training *memory* as one of its three headline metrics
//! (Figures 1, 6, 7, 8; Table IV). On the original testbed that is process
//! RSS; here the equivalent signal is live/peak heap bytes, captured by
//! wrapping the system allocator with atomic counters.
//!
//! Install in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;
//! ```
//!
//! then bracket a phase with [`reset_peak`] / [`peak_bytes`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A `GlobalAlloc` wrapper counting live and peak heap bytes.
pub struct TrackingAllocator;

// SAFETY: delegates all allocation to `System`, only adding counters.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            add(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        sub(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            sub(layout.size());
            add(new_size);
        }
        new_ptr
    }
}

#[inline]
fn add(n: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
    // Lock-free peak update.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

#[inline]
fn sub(n: usize) {
    LIVE.fetch_sub(n, Ordering::Relaxed);
}

/// Currently live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live value and returns the old peak.
/// Call at the start of a measured phase.
pub fn reset_peak() -> usize {
    PEAK.swap(LIVE.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// Total heap allocations since process start (`alloc` + growing
/// `realloc` calls). Monotonic — deallocations do not decrease it.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A point-in-time view of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSnapshot {
    pub live_bytes: usize,
    pub peak_bytes: usize,
    pub alloc_count: u64,
}

/// Captures all three counters at once. Diffing two snapshots gives a
/// phase's heap growth and allocation churn (used by `kgtosa-obs` spans).
pub fn snapshot() -> MemSnapshot {
    MemSnapshot {
        live_bytes: live_bytes(),
        peak_bytes: peak_bytes(),
        alloc_count: alloc_count(),
    }
}

/// Convenience: runs `f`, returning its result plus the peak heap bytes
/// observed during the call (relative to the live level at entry).
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = live_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(base))
}

/// Formats a byte count as a human-readable string (e.g. `1.5 GiB`).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0usize;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is not installed in unit tests (no
    // #[global_allocator] here), so counters only move via direct calls.

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn counters_move() {
        add(1000);
        assert!(live_bytes() >= 1000);
        assert!(peak_bytes() >= 1000);
        sub(1000);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }

    #[test]
    fn snapshot_tracks_alloc_count() {
        let before = snapshot();
        add(100);
        add(200);
        sub(300);
        let after = snapshot();
        // Other tests may allocate concurrently; only monotonicity and the
        // two increments from this test are guaranteed.
        assert!(after.alloc_count >= before.alloc_count + 2);
    }

    #[test]
    fn measure_peak_returns_result() {
        let (v, peak) = measure_peak(|| {
            add(5000);
            sub(5000);
            42
        });
        assert_eq!(v, 42);
        assert!(peak >= 5000);
    }
}
