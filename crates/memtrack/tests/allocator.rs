//! Integration test with the tracking allocator actually installed —
//! exercising the real alloc/dealloc/realloc paths, which unit tests
//! cannot do (no `#[global_allocator]` in lib tests).

use kgtosa_memtrack::{format_bytes, live_bytes, measure_peak, peak_bytes, reset_peak};

#[global_allocator]
static ALLOC: kgtosa_memtrack::TrackingAllocator = kgtosa_memtrack::TrackingAllocator;

#[test]
fn tracks_vec_allocations() {
    let before = live_bytes();
    let v: Vec<u8> = vec![0u8; 1 << 20];
    assert!(
        live_bytes() >= before + (1 << 20),
        "1 MiB allocation must be visible"
    );
    drop(v);
    assert!(live_bytes() < before + (1 << 20));
}

#[test]
fn peak_survives_drop() {
    reset_peak();
    let base = peak_bytes();
    {
        let _big: Vec<u64> = vec![0; 500_000]; // ~4 MB
        assert!(peak_bytes() >= base + 3_000_000);
    }
    // Dropped, but peak remembers.
    assert!(peak_bytes() >= base + 3_000_000);
    reset_peak();
    assert!(peak_bytes() < base + 3_000_000);
}

#[test]
fn measure_peak_isolates_phases() {
    let (_, peak1) = measure_peak(|| {
        let _v: Vec<u8> = vec![1; 2 << 20];
    });
    let (_, peak2) = measure_peak(|| {
        let _v: Vec<u8> = vec![1; 64];
    });
    assert!(peak1 >= 2 << 20);
    assert!(peak2 < 1 << 20, "second phase must not inherit first peak: {peak2}");
}

#[test]
fn realloc_keeps_accounting_consistent() {
    reset_peak();
    let before = live_bytes();
    let mut v: Vec<u8> = Vec::new();
    for i in 0..100_000u32 {
        v.push((i % 251) as u8); // forces repeated reallocs
    }
    assert!(live_bytes() >= before + 100_000);
    drop(v);
    // All growth returned (within noise from the test harness itself).
    assert!(live_bytes() < before + 100_000);
    assert!(!format_bytes(live_bytes()).is_empty());
}
