//! Breaker determinism: the circuit breaker's trip / half-open / close
//! trajectory must be a pure function of the seeded fault schedule, not of
//! the fetch thread count — and degraded (cache-served) answers must be
//! bit-identical to the fresh answers they stand in for.
//!
//! Scope note: the invariance property is stated over extraction shapes
//! whose compiled var-groups each hold exactly one subquery (single-class
//! NC tasks under `d1h1`/`d2h1`/`d1h2`). For those, pagination through the
//! fault → retry → breaker stack is serialized by construction, so the
//! breaker sees the identical admit/record schedule at any `threads`
//! setting. `d2h2` compiles two subqueries into each var-group, which the
//! fetch pool genuinely runs concurrently; its *outcomes* stay
//! deterministic (the fault schedule keys on query text) but the breaker's
//! transition ordinals depend on interleaving — so it is deliberately
//! excluded here and covered by the loadgen invariants instead.

use std::sync::OnceLock;
use std::time::Instant;

use kgtosa_core::{extract_sparql, ExtractionTask, GraphPattern};
use kgtosa_datagen::Dataset;
use kgtosa_obs::httpd::HttpRequest;
use kgtosa_obs::Json;
use kgtosa_rdf::{
    BreakerPolicy, CircuitBreaker, FaultPlan, FetchConfig, FetchMode, RdfStore, RetryPolicy,
};
use kgtosa_serve::{handle_guarded, ServeConfig, ServeState};
use proptest::prelude::*;

static DS: OnceLock<Dataset> = OnceLock::new();
static STORE: OnceLock<RdfStore<'static>> = OnceLock::new();

fn store() -> &'static RdfStore<'static> {
    let ds = DS.get_or_init(|| kgtosa_datagen::mag(0.02, 7));
    STORE.get_or_init(|| RdfStore::new(&ds.gen.kg))
}

fn nc_task() -> ExtractionTask {
    let t = &DS.get().expect("store() first").nc[0];
    ExtractionTask::node_classification(&t.name, &t.target_class, t.targets())
}

/// Everything the `rdf.breaker.*` counters are derived from, read off one
/// breaker instance.
#[derive(Debug, PartialEq)]
struct Snapshot {
    state: &'static str,
    trips: u64,
    rejections: u64,
    probes: u64,
    closes: u64,
    trajectory: Vec<String>,
}

/// Replays the fixed request schedule (two passes over the serialized
/// patterns) through a fresh breaker at the given thread count.
fn run_schedule(fault_seed: u64, threads: usize) -> Snapshot {
    let store = store();
    let task = nc_task();
    let breaker = CircuitBreaker::new(BreakerPolicy {
        trip_threshold: 2,
        cooldown_requests: 4,
        seed: fault_seed,
    });
    let patterns = [GraphPattern::D1H1, GraphPattern::D2H1, GraphPattern::D1H2];
    for _pass in 0..2 {
        for pattern in &patterns {
            let cfg = FetchConfig {
                batch_size: 256,
                threads,
                retry: Some(RetryPolicy {
                    max_attempts: 2,
                    base_backoff_us: 1,
                    max_backoff_us: 10,
                    jitter_seed: fault_seed,
                    request_deadline: None,
                    fetch_deadline: None,
                }),
                fault: Some(FaultPlan {
                    seed: fault_seed,
                    fault_rate: 0.7,
                    max_burst: 3,
                    fatal_rate: 0.4,
                    latency_rate: 0.0,
                    latency_us: 0,
                }),
                mode: FetchMode::Partial,
                breaker: Some(breaker.clone()),
                ..FetchConfig::default()
            };
            // Partial mode keeps paginating past failures, so the breaker
            // sees the full page schedule either way; an Err here (e.g.
            // breaker open at fetch start) is part of the trajectory.
            let _ = extract_sparql(store, &task, pattern, &cfg);
        }
    }
    Snapshot {
        state: breaker.state().label(),
        trips: breaker.trips(),
        rejections: breaker.rejections(),
        probes: breaker.probes(),
        closes: breaker.closes(),
        trajectory: breaker.trajectory(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same fault seed ⇒ identical breaker counter trajectory at 1, 4, and
    /// 8 fetch threads.
    #[test]
    fn breaker_trajectory_is_a_pure_function_of_the_fault_seed(fault_seed in 0u64..1_000_000) {
        let base = run_schedule(fault_seed, 1);
        for threads in [4usize, 8] {
            let other = run_schedule(fault_seed, threads);
            prop_assert_eq!(
                &base, &other,
                "breaker trajectory diverged between 1 and {} threads", threads
            );
        }
    }
}

/// The property above must not hold vacuously: an all-fatal schedule has to
/// actually trip the breaker and reject work, identically at every thread
/// count.
#[test]
fn all_fatal_schedule_trips_and_rejects_identically() {
    let store = store();
    let task = nc_task();
    let mut snaps = Vec::new();
    for threads in [1usize, 4, 8] {
        let breaker = CircuitBreaker::new(BreakerPolicy {
            trip_threshold: 2,
            cooldown_requests: 4,
            seed: 7,
        });
        for _ in 0..3 {
            let cfg = FetchConfig {
                batch_size: 256,
                threads,
                fault: Some(FaultPlan {
                    seed: 7,
                    fault_rate: 1.0,
                    max_burst: 1,
                    fatal_rate: 1.0,
                    latency_rate: 0.0,
                    latency_us: 0,
                }),
                mode: FetchMode::Partial,
                breaker: Some(breaker.clone()),
                ..FetchConfig::default()
            };
            let _ = extract_sparql(store, &task, &GraphPattern::D2H1, &cfg);
        }
        snaps.push((breaker.trips(), breaker.rejections(), breaker.trajectory()));
    }
    assert!(snaps[0].0 > 0, "all-fatal schedule must trip: {snaps:?}");
    assert!(snaps[0].1 > 0, "open breaker must reject requests: {snaps:?}");
    assert_eq!(snaps[0], snaps[1]);
    assert_eq!(snaps[0], snaps[2]);
}

fn post(state: &ServeState, path: &str, body: &str) -> (u16, Json) {
    let req = HttpRequest {
        method: "POST".into(),
        path: path.into(),
        query: String::new(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    };
    let resp = handle_guarded(state, &req, Instant::now());
    let text = String::from_utf8(resp.body.clone()).expect("utf8 body");
    let json = Json::parse(&text).unwrap_or(Json::Null);
    (resp.status, json)
}

/// A degraded answer (served from the artifact cache while the breaker is
/// open) is bit-identical to the fresh answer: same subgraph fingerprint,
/// flagged `degraded` so the caller knows it may be stale.
#[test]
fn degraded_cache_answers_are_bit_identical_to_fresh() {
    let dir = std::env::temp_dir().join(format!("kgtosa-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let state = ServeState::from_dataset(ServeConfig {
        dataset: "mag".into(),
        scale: 0.02,
        seed: 7,
        cache_dir: Some(dir.clone()),
        breaker: BreakerPolicy { trip_threshold: 2, cooldown_requests: 64, seed: 7 },
        ..ServeConfig::default()
    })
    .expect("serve state");
    let task = state.nc_tasks()[0].name.clone();
    let body = format!("{{\"task\":\"{task}\",\"pattern\":\"d1h1\",\"deadline_ms\":30000}}");

    // Fresh answer, then a healthy cache hit: same fingerprint, not degraded.
    let (status, fresh) = post(&state, "/extract", &body);
    assert_eq!(status, 200, "fresh extract: {fresh:?}");
    assert_eq!(fresh.get("degraded").and_then(Json::as_bool), Some(false));
    let fingerprint = fresh
        .get("subgraph_fingerprint")
        .and_then(Json::as_str)
        .expect("fresh fingerprint")
        .to_string();
    let (status, hit) = post(&state, "/extract", &body);
    assert_eq!(status, 200);
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(hit.get("degraded").and_then(Json::as_bool), Some(false));

    // Storm the backend until the breaker opens (uncached pattern, so every
    // request reaches the endpoint and fails fatally).
    *state.fault.lock().unwrap() = Some(FaultPlan {
        seed: 7,
        fault_rate: 1.0,
        max_burst: 1,
        fatal_rate: 1.0,
        latency_rate: 0.0,
        latency_us: 0,
    });
    let storm = format!("{{\"task\":\"{task}\",\"pattern\":\"d2h1\",\"deadline_ms\":30000}}");
    for _ in 0..20 {
        let _ = post(&state, "/extract", &storm);
        if state.breaker.state() != kgtosa_rdf::BreakerState::Closed {
            break;
        }
    }
    assert_ne!(
        state.breaker.state(),
        kgtosa_rdf::BreakerState::Closed,
        "fault storm must open the breaker"
    );

    // The cached pattern still answers — explicitly degraded, bit-identical.
    let (status, degraded) = post(&state, "/extract", &body);
    assert_eq!(status, 200, "cache-only answer while the breaker is open: {degraded:?}");
    assert_eq!(degraded.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(degraded.get("degraded").and_then(Json::as_bool), Some(true));
    assert_eq!(
        degraded.get("subgraph_fingerprint").and_then(Json::as_str),
        Some(fingerprint.as_str()),
        "degraded answer must be bit-identical to the fresh one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
