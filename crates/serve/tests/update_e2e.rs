//! End-to-end tests for `POST /admin/update`: a live delta swaps the
//! epoch, stale cache entries are repaired (or invalidated with repair
//! off) while untouched ones keep hitting, and the repaired answer is
//! bit-identical to a fresh extraction against the updated graph.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use kgtosa_core::{extract_sparql, ExtractionTask, GraphPattern};
use kgtosa_kg::{apply_delta, DeltaOp, KgDelta, MultisetFingerprint, Vid};
use kgtosa_obs::Json;
use kgtosa_rdf::{FetchConfig, RdfStore};
use kgtosa_serve::client::{get, post_json, HttpReply};
use kgtosa_serve::{DrainReport, ServeConfig, ServeState, Server};

const SCALE: f64 = 0.02;
const SEED: u64 = 7;

fn base_config() -> ServeConfig {
    ServeConfig {
        dataset: "mag".into(),
        scale: SCALE,
        seed: SEED,
        dim: 8,
        workers: 2,
        ..ServeConfig::default()
    }
}

struct Daemon {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<DrainReport>,
}

impl Daemon {
    fn spawn(cfg: ServeConfig) -> Self {
        let state = ServeState::from_dataset(cfg).expect("serve state");
        let server = Server::bind(Arc::clone(&state)).expect("bind");
        let addr = server.addr();
        let thread = std::thread::spawn(move || server.run().expect("serve loop"));
        Daemon { addr, thread }
    }

    fn shutdown(self) -> DrainReport {
        let r = post_json(self.addr, "/admin/shutdown", "", Duration::from_secs(5))
            .expect("shutdown request");
        assert_eq!(r.status, 202);
        self.thread.join().expect("server thread")
    }
}

fn ok_json(reply: &HttpReply) -> Json {
    assert_eq!(reply.status, 200, "expected 200, got {}: {}", reply.status, reply.body);
    Json::parse(&reply.body).expect("response body is JSON")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kgtosa-update-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn extract(addr: SocketAddr, body: &str) -> Json {
    ok_json(&post_json(addr, "/extract", body, Duration::from_secs(30)).unwrap())
}

fn num(json: &Json, path: &[&str]) -> f64 {
    let mut cur = json;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing field {path:?} in {json}"));
    }
    cur.as_f64().unwrap_or_else(|| panic!("field {path:?} is not a number in {json}"))
}

fn str_field<'a>(json: &'a Json, key: &str) -> &'a str {
    json.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string field {key:?} in {json}"))
}

/// The ground-truth side of the differential check: the same dataset the
/// daemon loads, plus the same delta applied locally via `apply_delta`.
struct GroundTruth {
    ops: Vec<DeltaOp>,
    ops_json: String,
    base_fingerprint: u64,
}

impl GroundTruth {
    /// One add (a target paper gains an outgoing `cites` edge to a brand
    /// new node — guaranteed fresh, guaranteed to change the d1h1 TOSG)
    /// and one remove (an existing outgoing edge of a target paper).
    fn build(dataset: &kgtosa_datagen::Dataset) -> Self {
        let kg = &dataset.gen.kg;
        let task = &dataset.nc[0];
        let targets = task.targets();
        let target_set: std::collections::HashSet<Vid> = targets.iter().copied().collect();
        assert!(kg.find_relation("cites").is_some(), "mag has a cites relation");
        let add_s = kg.node_term(targets[0]).to_string();
        let removable = kg
            .triples()
            .iter()
            .copied()
            .find(|t| target_set.contains(&t.s))
            .expect("some target paper has an outgoing edge");
        let (rs, rp, ro) = (
            kg.node_term(removable.s).to_string(),
            kg.relation_term(removable.p).to_string(),
            kg.node_term(removable.o).to_string(),
        );
        let ops = vec![
            DeltaOp::Add {
                s: add_s.clone(),
                s_class: "Paper".into(),
                p: "cites".into(),
                o: "Paper_delta_0".into(),
                o_class: "Paper".into(),
            },
            DeltaOp::Remove {
                s: rs.clone(),
                p: rp.clone(),
                o: ro.clone(),
            },
        ];
        let ops_json = format!(
            "[{{\"op\":\"add\",\"s\":\"{add_s}\",\"s_class\":\"Paper\",\"p\":\"cites\",\
             \"o\":\"Paper_delta_0\",\"o_class\":\"Paper\"}},\
             {{\"op\":\"remove\",\"s\":\"{rs}\",\"p\":\"{rp}\",\"o\":\"{ro}\"}}]"
        );
        GroundTruth {
            ops,
            ops_json,
            base_fingerprint: kgtosa_kg::fingerprint(kg),
        }
    }

    /// Applies the delta locally and freshly extracts the named task at
    /// d1h1, returning (new KG fingerprint, subgraph fingerprint) as the
    /// hex strings the daemon must report.
    fn expected(&self, dataset: &kgtosa_datagen::Dataset) -> (String, String) {
        let kg = &dataset.gen.kg;
        let task = &dataset.nc[0];
        let delta = KgDelta {
            base_fingerprint: self.base_fingerprint,
            ops: self.ops.clone(),
        };
        let app = apply_delta(kg, self.base_fingerprint, MultisetFingerprint::of(kg), &delta)
            .expect("ground-truth delta applies");
        let kg_fp = format!("{:016x}", kgtosa_kg::fingerprint(&app.kg));
        let store = RdfStore::new(&app.kg);
        let etask =
            ExtractionTask::node_classification(&task.name, &task.target_class, task.targets());
        let pattern = GraphPattern::VARIANTS
            .into_iter()
            .find(|p| p.label() == "d1h1")
            .unwrap();
        let fresh = extract_sparql(&store, &etask, &pattern, &FetchConfig::default())
            .expect("fresh extraction on the updated graph");
        let sub_fp = format!("{:016x}", kgtosa_kg::fingerprint(&fresh.subgraph.kg));
        (kg_fp, sub_fp)
    }
}

#[test]
fn live_update_repairs_stale_entries_and_migrates_fresh_ones() {
    let cache_dir = temp_dir("repair-cache");
    let daemon = Daemon::spawn(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..base_config()
    });

    let dataset = kgtosa_datagen::mag(SCALE, SEED);
    let task_name = dataset.nc[0].name.clone();
    let truth = GroundTruth::build(&dataset);
    let (expected_kg_fp, expected_sub_fp) = truth.expected(&dataset);

    // Warm two entries: the named Paper task (the delta will touch it)
    // and the Patent cluster (disjoint from every delta class, so the
    // oracle must keep it fresh).
    let paper_body = format!("{{\"task\":\"{task_name}\",\"pattern\":\"d1h1\",\"deadline_ms\":30000}}");
    let patent_body = "{\"target_class\":\"Patent\",\"pattern\":\"d1h1\",\"deadline_ms\":30000}";
    let paper0 = extract(daemon.addr, &paper_body);
    assert_eq!(paper0.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(num(&paper0, &["epoch"]), 0.0);
    let paper0_fp = str_field(&paper0, "subgraph_fingerprint").to_string();
    let old_kg_fp = str_field(&paper0, "kg_fingerprint").to_string();
    assert_eq!(old_kg_fp, format!("{:016x}", truth.base_fingerprint));
    let patent0 = extract(daemon.addr, patent_body);
    assert_eq!(patent0.get("cached").and_then(Json::as_bool), Some(false));
    let patent0_fp = str_field(&patent0, "subgraph_fingerprint").to_string();

    // Apply the delta (CAS-pinned to the epoch we warmed against).
    let update_body = format!(
        "{{\"base_fingerprint\":\"{old_kg_fp}\",\"ops\":{},\"repair\":true}}",
        truth.ops_json
    );
    let upd = ok_json(&post_json(daemon.addr, "/admin/update", &update_body, Duration::from_secs(60)).unwrap());
    assert_eq!(str_field(&upd, "status"), "ok");
    assert_eq!(num(&upd, &["epoch"]), 1.0);
    assert_eq!(str_field(&upd, "previous_fingerprint"), old_kg_fp);
    assert_eq!(str_field(&upd, "kg_fingerprint"), expected_kg_fp);
    assert_eq!(num(&upd, &["ops"]), 2.0);
    assert_eq!(num(&upd, &["added"]), 1.0);
    assert_eq!(num(&upd, &["removed"]), 1.0);
    assert_eq!(num(&upd, &["new_nodes"]), 1.0);
    // Exactly the Paper entry is stale (and repaired in place); the
    // Patent entry migrates untouched. `migrated` counts every entry
    // re-keyed to the new fingerprint — the repaired one included.
    assert_eq!(num(&upd, &["cache", "scanned"]), 2.0);
    assert_eq!(num(&upd, &["cache", "stale"]), 1.0);
    assert_eq!(num(&upd, &["cache", "repaired"]), 1.0);
    assert_eq!(num(&upd, &["cache", "migrated"]), 2.0);
    assert_eq!(num(&upd, &["cache", "invalidated"]), 0.0);
    assert_eq!(num(&upd, &["cache", "failed"]), 0.0);

    // The repaired entry answers from cache, against the new epoch, with
    // exactly the fingerprint a from-scratch extraction computes.
    let paper1 = extract(daemon.addr, &paper_body);
    assert_eq!(
        paper1.get("cached").and_then(Json::as_bool),
        Some(true),
        "repaired entry must be republished under the new fingerprint: {paper1}"
    );
    assert_eq!(num(&paper1, &["epoch"]), 1.0);
    assert_eq!(str_field(&paper1, "kg_fingerprint"), expected_kg_fp);
    assert_eq!(
        str_field(&paper1, "subgraph_fingerprint"),
        expected_sub_fp,
        "repaired TOSG differs from a fresh extraction on the updated graph"
    );
    assert_ne!(
        str_field(&paper1, "subgraph_fingerprint"),
        paper0_fp,
        "the delta added an outgoing edge to a target, so the TOSG must change"
    );

    // The untouched cluster still cache-hits with an unchanged TOSG.
    let patent1 = extract(daemon.addr, patent_body);
    assert_eq!(patent1.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(str_field(&patent1, "subgraph_fingerprint"), patent0_fp);
    assert_eq!(num(&patent1, &["epoch"]), 1.0);

    // /serve reports the new epoch; /metrics exposes the delta counters.
    let stats = ok_json(&get(daemon.addr, "/serve", Duration::from_secs(5)).unwrap());
    assert_eq!(num(&stats, &["epoch", "version"]), 1.0);
    assert_eq!(str_field(&stats, "kg_fingerprint"), expected_kg_fp);
    let metrics = get(daemon.addr, "/metrics", Duration::from_secs(5)).unwrap();
    assert_eq!(metrics.status, 200);
    for counter in ["kgtosa_delta_applied_total", "kgtosa_delta_ops_total", "kgtosa_delta_repairs_total", "kgtosa_delta_migrations_total"] {
        assert!(metrics.body.contains(counter), "{counter} missing from /metrics");
    }

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn update_validates_requests_and_invalidates_without_repair() {
    let cache_dir = temp_dir("invalidate-cache");
    let daemon = Daemon::spawn(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..base_config()
    });

    let dataset = kgtosa_datagen::mag(SCALE, SEED);
    let task_name = dataset.nc[0].name.clone();
    let target_term = dataset.gen.kg.node_term(dataset.nc[0].targets()[0]).to_string();

    let paper_body = format!("{{\"task\":\"{task_name}\",\"pattern\":\"d1h1\",\"deadline_ms\":30000}}");
    let paper0 = extract(daemon.addr, &paper_body);
    let paper0_fp = str_field(&paper0, "subgraph_fingerprint").to_string();
    let old_kg_fp = str_field(&paper0, "kg_fingerprint").to_string();

    // A new paper citing an existing target: the d1h1 BGP anchors on the
    // whole Paper *class* (`?v0 a Paper`), so the new node's outgoing
    // edge joins the TOSG and the cached entry is genuinely stale.
    let ops = format!(
        "[{{\"op\":\"add\",\"s\":\"Paper_delta_new\",\"s_class\":\"Paper\",\"p\":\"cites\",\
         \"o\":\"{target_term}\",\"o_class\":\"Paper\"}}]"
    );

    // Compare-and-swap against the wrong base fingerprint is refused.
    let stale_cas = format!("{{\"base_fingerprint\":\"0000000000000001\",\"ops\":{ops}}}");
    let r = post_json(daemon.addr, "/admin/update", &stale_cas, Duration::from_secs(10)).unwrap();
    assert_eq!(r.status, 409, "wrong base fingerprint must 409: {}", r.body);
    let cas = Json::parse(&r.body).unwrap();
    assert_eq!(str_field(&cas, "expected"), old_kg_fp);

    // Malformed deltas are 400s, and none of them disturb the epoch.
    for bad in [
        "{}",
        "{\"ops\":[]}",
        "{\"ops\":[{\"op\":\"teleport\"}]}",
        "{\"ops\":[{\"op\":\"add\",\"s\":\"x\"}]}",
        "{\"ops\":[{\"op\":\"remove\",\"s\":\"NoSuchNode\",\"p\":\"cites\",\"o\":\"AlsoMissing\"}]}",
    ] {
        let r = post_json(daemon.addr, "/admin/update", bad, Duration::from_secs(10)).unwrap();
        assert_eq!(r.status, 400, "bad update {bad} must 400: {}", r.body);
    }
    let stats = ok_json(&get(daemon.addr, "/serve", Duration::from_secs(5)).unwrap());
    assert_eq!(num(&stats, &["epoch", "version"]), 0.0, "rejected deltas must not advance the epoch");

    // With repair disabled, the stale entry is dropped instead.
    let upd = ok_json(&post_json(
        daemon.addr,
        "/admin/update",
        &format!("{{\"base_fingerprint\":\"{old_kg_fp}\",\"ops\":{ops},\"repair\":false}}"),
        Duration::from_secs(60),
    )
    .unwrap());
    assert_eq!(num(&upd, &["epoch"]), 1.0);
    assert_eq!(num(&upd, &["cache", "scanned"]), 1.0);
    assert_eq!(num(&upd, &["cache", "stale"]), 1.0);
    assert_eq!(num(&upd, &["cache", "invalidated"]), 1.0);
    assert_eq!(num(&upd, &["cache", "repaired"]), 0.0);
    let new_kg_fp = str_field(&upd, "kg_fingerprint").to_string();
    assert_ne!(new_kg_fp, old_kg_fp);

    // The next extraction pays a miss against the new epoch and sees the
    // new paper's edge in the class-anchored TOSG.
    let paper1 = extract(daemon.addr, &paper_body);
    assert_eq!(paper1.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(num(&paper1, &["epoch"]), 1.0);
    assert_eq!(str_field(&paper1, "kg_fingerprint"), new_kg_fp);
    assert_ne!(str_field(&paper1, "subgraph_fingerprint"), paper0_fp);
    // ... and is republished under the new fingerprint.
    let paper2 = extract(daemon.addr, &paper_body);
    assert_eq!(paper2.get("cached").and_then(Json::as_bool), Some(true));

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
