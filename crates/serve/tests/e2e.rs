//! End-to-end daemon tests over real TCP: extract/infer round trips,
//! admission shedding, deadline budgets, and panic isolation.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use kgtosa_models::{CheckpointConfig, NcDataset, TrainConfig};
use kgtosa_obs::Json;
use kgtosa_serve::client::{call, get, post_json, HttpReply};
use kgtosa_serve::{DrainReport, ServeConfig, ServeState, Server};

const SCALE: f64 = 0.02;
const SEED: u64 = 7;
const DIM: usize = 8;

fn base_config() -> ServeConfig {
    ServeConfig {
        dataset: "mag".into(),
        scale: SCALE,
        seed: SEED,
        dim: DIM,
        workers: 2,
        ..ServeConfig::default()
    }
}

struct Daemon {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<DrainReport>,
}

impl Daemon {
    fn spawn(cfg: ServeConfig) -> Self {
        let state = ServeState::from_dataset(cfg).expect("serve state");
        let server = Server::bind(Arc::clone(&state)).expect("bind");
        let addr = server.addr();
        let thread = std::thread::spawn(move || server.run().expect("serve loop"));
        Daemon { addr, thread }
    }

    fn shutdown(self) -> DrainReport {
        let r = post_json(self.addr, "/admin/shutdown", "", Duration::from_secs(5))
            .expect("shutdown request");
        assert_eq!(r.status, 202);
        self.thread.join().expect("server thread")
    }
}

fn ok_json(reply: &HttpReply) -> Json {
    assert_eq!(reply.status, 200, "expected 200, got {}: {}", reply.status, reply.body);
    Json::parse(&reply.body).expect("response body is JSON")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kgtosa-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a small RGCN checkpoint on the exact dataset + shape the
/// daemon will load, returning (dir, task name, reported metric hash).
fn train_checkpoint(tag: &str) -> (PathBuf, String, u64) {
    let dir = temp_dir(tag);
    let dataset = kgtosa_datagen::mag(SCALE, SEED);
    let task = &dataset.nc[0];
    let (graph, _) = kgtosa_core::transform(&dataset.gen.kg);
    let data = NcDataset {
        kg: &dataset.gen.kg,
        graph: &graph,
        labels: &task.labels,
        num_labels: task.num_labels,
        train: &task.train,
        valid: &task.valid,
        test: &task.test,
    };
    let cfg = TrainConfig {
        epochs: 2,
        dim: DIM,
        lr: 0.02,
        seed: SEED,
        checkpoint: Some(CheckpointConfig::new(&dir)),
        ..Default::default()
    };
    let report = kgtosa_models::train_rgcn_nc(&data, &cfg);
    (dir, task.name.clone(), report.param_hash)
}

#[test]
fn extract_and_infer_round_trip() {
    let (ckpt_dir, task_name, param_hash) = train_checkpoint("roundtrip");
    let cache_dir = temp_dir("roundtrip-cache");
    let daemon = Daemon::spawn(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        checkpoint_dir: Some(ckpt_dir.clone()),
        ..base_config()
    });

    // Index + obs builtin routes answer.
    assert_eq!(get(daemon.addr, "/", Duration::from_secs(5)).unwrap().status, 200);
    assert_eq!(get(daemon.addr, "/metrics", Duration::from_secs(5)).unwrap().status, 200);
    assert_eq!(get(daemon.addr, "/healthz", Duration::from_secs(5)).unwrap().status, 200);
    let stats = ok_json(&get(daemon.addr, "/serve", Duration::from_secs(5)).unwrap());
    assert_eq!(stats.get("dataset").and_then(Json::as_str), Some("mag"));
    assert_eq!(stats.get("checkpoints").and_then(Json::as_f64), Some(1.0));

    // First extraction misses the cache, an identical one hits it —
    // with the same subgraph fingerprint (bit-identity through the cache).
    let body = format!("{{\"task\":\"{task_name}\",\"pattern\":\"d1h1\",\"deadline_ms\":30000}}");
    let first = ok_json(&post_json(daemon.addr, "/extract", &body, Duration::from_secs(30)).unwrap());
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(first.get("degraded").and_then(Json::as_bool), Some(false));
    let fp = first.get("subgraph_fingerprint").and_then(Json::as_str).unwrap().to_string();
    let second = ok_json(&post_json(daemon.addr, "/extract", &body, Duration::from_secs(30)).unwrap());
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(second.get("subgraph_fingerprint").and_then(Json::as_str), Some(fp.as_str()));

    // Inference against the trained checkpoint serves the trainer's
    // exact parameters (param_hash matches the training report).
    let infer = format!("{{\"checkpoint\":\"RGCN\",\"task\":\"{task_name}\",\"deadline_ms\":30000}}");
    let reply = ok_json(&post_json(daemon.addr, "/infer", &infer, Duration::from_secs(30)).unwrap());
    assert_eq!(
        reply.get("param_hash").and_then(Json::as_str),
        Some(format!("{param_hash:016x}").as_str())
    );
    match reply.get("predictions") {
        Some(Json::Arr(preds)) => assert!(!preds.is_empty()),
        other => panic!("predictions missing: {other:?}"),
    }

    // Unknowns are 4xx, not daemon damage.
    let bad_task = post_json(daemon.addr, "/extract", "{\"task\":\"nope\"}", Duration::from_secs(5)).unwrap();
    assert_eq!(bad_task.status, 404);
    let bad_ckpt = post_json(daemon.addr, "/infer", "{\"checkpoint\":\"nope\"}", Duration::from_secs(5)).unwrap();
    assert_eq!(bad_ckpt.status, 404);
    let no_route = get(daemon.addr, "/nope", Duration::from_secs(5)).unwrap();
    assert_eq!(no_route.status, 404);
    let bad_method = call(daemon.addr, "DELETE", "/", &[], b"", Duration::from_secs(5)).unwrap();
    assert_eq!(bad_method.status, 405);

    let report = daemon.shutdown();
    assert!(report.served >= 8);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn handler_panic_is_isolated() {
    let daemon = Daemon::spawn(base_config());
    let reply = post_json(daemon.addr, "/admin/panic", "", Duration::from_secs(5)).unwrap();
    assert_eq!(reply.status, 500);
    assert!(reply.body.contains("panic"), "500 body names the panic: {}", reply.body);
    // The daemon survives and keeps answering.
    let stats = ok_json(&get(daemon.addr, "/serve", Duration::from_secs(5)).unwrap());
    assert!(stats.get("served").and_then(Json::as_f64).unwrap() >= 1.0);
    let report = daemon.shutdown();
    assert!(report.handler_panics >= 1, "panic counted in the drain report");
}

#[test]
fn inflight_byte_budget_sheds_with_429() {
    let daemon = Daemon::spawn(ServeConfig { max_inflight_bytes: 1, ..base_config() });
    let reply = post_json(daemon.addr, "/extract", "{\"task\":\"x\"}", Duration::from_secs(5)).unwrap();
    assert_eq!(reply.status, 429, "body bytes over budget must shed: {}", reply.body);
    // Body-less requests fit the zero budget and still work.
    assert_eq!(get(daemon.addr, "/serve", Duration::from_secs(5)).unwrap().status, 200);
    let report = daemon.shutdown();
    assert!(report.sheds >= 1);
}

#[test]
fn oversized_body_is_413() {
    let daemon = Daemon::spawn(ServeConfig { max_body_bytes: 64, ..base_config() });
    let big = format!("{{\"pad\":\"{}\"}}", "x".repeat(200));
    let reply = post_json(daemon.addr, "/extract", &big, Duration::from_secs(5)).unwrap();
    assert_eq!(reply.status, 413);
    daemon.shutdown();
}

#[test]
fn queued_time_counts_against_the_deadline() {
    let daemon = Daemon::spawn(base_config());
    // The admission timestamp is taken at accept; holding the connection
    // open before sending burns the whole 1ms budget, so the handler must
    // answer 504 without doing any work.
    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let body = "{\"task\":\"x\",\"deadline_ms\":1}";
    write!(
        stream,
        "POST /extract HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut raw = String::new();
    use std::io::Read;
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 504"), "expected 504, got: {raw}");
    let report = daemon.shutdown();
    assert!(report.deadline_expired >= 1);
}
