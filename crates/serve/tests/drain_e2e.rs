//! Drain-semantics e2e: a SIGTERM (via the test latch) mid-traffic must
//! stop new admissions, let in-flight requests complete or
//! deadline-cancel, and leave complete telemetry behind — the JSONL
//! trace parses line-by-line and the Chrome trace validates.
//!
//! This test arms process-global observability sinks and the global
//! signal latch, so it lives alone in its own test binary.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use kgtosa_obs::Json;
use kgtosa_rdf::FaultPlan;
use kgtosa_serve::client::post_json;
use kgtosa_serve::{signal, ServeConfig, ServeState, Server};

#[test]
fn drain_completes_inflight_and_flushes_traces() {
    let dir = std::env::temp_dir().join(format!("kgtosa-drain-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("trace.jsonl");
    let chrome = dir.join("trace.json");
    kgtosa_obs::init_trace_to(jsonl.to_str().unwrap()).expect("arm JSONL trace");
    kgtosa_obs::arm_chrome();

    let state = ServeState::from_dataset(ServeConfig {
        dataset: "mag".into(),
        scale: 0.02,
        seed: 7,
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("serve state");
    let server = Server::bind(Arc::clone(&state)).expect("bind");
    let addr = server.addr();
    let server_thread = std::thread::spawn(move || server.run().expect("serve loop"));

    // Slow every endpoint page down so the in-flight request is still
    // running when the drain signal lands.
    *state.fault.lock().unwrap() = Some(FaultPlan {
        seed: 7,
        latency_rate: 1.0,
        latency_us: 20_000,
        ..FaultPlan::default()
    });
    let task = state.nc_tasks()[0].name.clone();
    let slow_body = format!("{{\"task\":\"{task}\",\"pattern\":\"d2h1\",\"deadline_ms\":30000}}");
    let slow = {
        let body = slow_body.clone();
        std::thread::spawn(move || post_json(addr, "/extract", &body, Duration::from_secs(60)))
    };
    // A second request with an already-hopeless budget: drain must answer
    // it 504, not strand it.
    let doomed = {
        let body = format!("{{\"task\":\"{task}\",\"pattern\":\"d2h2\",\"deadline_ms\":1}}");
        std::thread::spawn(move || post_json(addr, "/extract", &body, Duration::from_secs(60)))
    };
    std::thread::sleep(Duration::from_millis(60));

    // SIGTERM path: the latch the real handler sets.
    signal::trigger_for_test();
    let report = server_thread.join().expect("server thread");

    // In-flight work completed (or deadline-cancelled), never dropped.
    let slow_reply = slow.join().unwrap().expect("in-flight request must get a response");
    assert_eq!(slow_reply.status, 200, "in-flight extract completes during drain: {}", slow_reply.body);
    let doomed_reply = doomed.join().unwrap().expect("doomed request must get a response");
    assert_eq!(doomed_reply.status, 504, "hopeless budget is cancelled, not stranded");
    assert!(report.served >= 2);
    assert!(report.deadline_expired >= 1);

    // No new admissions after drain: the listener is gone.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "post-drain connections must be refused"
    );

    // Telemetry is complete: every JSONL line parses, and the Chrome
    // trace passes the structural validator.
    kgtosa_obs::shutdown();
    let text = std::fs::read_to_string(&jsonl).expect("JSONL trace exists");
    let mut events = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        events += 1;
    }
    assert!(events > 0, "drain left an empty trace");
    kgtosa_obs::write_chrome_trace(chrome.to_str().unwrap()).expect("write chrome trace");
    let chrome_text = std::fs::read_to_string(&chrome).unwrap();
    let stats = kgtosa_obs::validate_chrome_trace(&chrome_text).expect("chrome trace validates");
    assert!(stats.span_events > 0, "chrome trace has span events");
    let _ = std::fs::remove_dir_all(&dir);
}
