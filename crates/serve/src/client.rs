//! A minimal blocking HTTP/1.1 client — just enough to drive the daemon
//! from the loadgen harness, the e2e tests, and health probes. One
//! request per connection (the server answers `Connection: close`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed reply: status code plus the raw body.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Response body (the daemon always answers UTF-8 JSON or text).
    pub body: String,
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<HttpReply> {
    call(addr, "GET", path, &[], b"", timeout)
}

/// `POST path` with a JSON body.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    call(
        addr,
        "POST",
        path,
        &[("Content-Type", "application/json")],
        body.as_bytes(),
        timeout,
    )
}

/// One request/response round trip with connect/read/write timeouts.
pub fn call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let text = String::from_utf8_lossy(raw);
    let mut lines = text.splitn(2, "\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let body = match text.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok(HttpReply { status, body })
}
