//! The accept loop, bounded admission queue, worker pool, and graceful
//! drain.
//!
//! Overload safety is enforced *before* work happens, in two layers:
//!
//! 1. **Queue-depth shedding** — the admission queue holds at most
//!    `queue_cap` connections; the accept loop answers `429` inline for
//!    anything beyond it (`serve.sheds`).
//! 2. **In-flight byte budget** — after a worker reads a request head+body
//!    it charges the body against `max_inflight_bytes`; over budget the
//!    request is shed with `429` before dispatch.
//!
//! Drain (SIGTERM, SIGINT, or `POST /admin/shutdown`) closes the listener
//! immediately, lets workers finish whatever is queued — requests whose
//! deadline expired while queued answer `504`, they are not silently
//! dropped — and then returns so the caller can flush telemetry sinks and
//! exit 0.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kgtosa_obs::httpd::{read_request, write_response, HttpResponse, RequestError, MAX_HEAD_BYTES};

use crate::handlers::handle_guarded;
use crate::signal;
use crate::state::ServeState;

/// What the daemon did over its lifetime, reported after drain completes.
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainReport {
    /// Requests dispatched through a handler (any status).
    pub served: u64,
    /// Connections/requests shed with `429` by admission control.
    pub sheds: u64,
    /// Handler panics caught and converted to `500`.
    pub handler_panics: u64,
    /// Requests answered `504` after their budget ran out.
    pub deadline_expired: u64,
}

type Queue = Arc<(Mutex<VecDeque<(TcpStream, Instant)>>, Condvar)>;
type ShedQueue = Arc<(Mutex<VecDeque<TcpStream>>, Condvar)>;

/// Beyond this many connections waiting for their `429`, further shed
/// connections are dropped without a response (extreme-flood backstop).
const SHED_BACKLOG_CAP: usize = 256;

/// A bound-but-not-yet-running daemon.
pub struct Server {
    state: Arc<ServeState>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Binds the configured address (port `0` picks a free port — read it
    /// back via [`Server::addr`]).
    pub fn bind(state: Arc<ServeState>) -> io::Result<Self> {
        let listener = TcpListener::bind(&state.cfg.addr)?;
        let addr = listener.local_addr()?;
        Ok(Self { state, listener, addr })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared daemon state.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Runs accept → queue → workers until drain, then joins the pool and
    /// reports. Counter deltas are measured against entry so concurrent
    /// servers in one process (tests) do not read each other's totals.
    pub fn run(self) -> io::Result<DrainReport> {
        let Server { state, listener, addr } = self;
        signal::install();
        listener.set_nonblocking(true)?;

        let requests = kgtosa_obs::counter("serve.requests");
        let sheds = kgtosa_obs::counter("serve.sheds");
        let panics = kgtosa_obs::counter("serve.handler_panics");
        let expired = kgtosa_obs::counter("serve.deadline_expired");
        let depth_gauge = kgtosa_obs::gauge("serve.queue_depth");
        let (served0, sheds0, panics0, expired0) =
            (requests.get(), sheds.get(), panics.get(), expired.get());

        let queue: Queue = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        let shed_queue: ShedQueue = Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        let shedder = {
            let state = Arc::clone(&state);
            let shed_queue = Arc::clone(&shed_queue);
            std::thread::Builder::new()
                .name("serve-shedder".into())
                .spawn(move || shedder_loop(state, shed_queue))
                .expect("spawn serve shedder")
        };
        let workers: Vec<_> = (0..state.cfg.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(state, queue))
                    .expect("spawn serve worker")
            })
            .collect();

        kgtosa_obs::info!(
            "serve: listening on {addr} ({} workers, queue cap {}, inflight budget {} B)",
            state.cfg.workers.max(1),
            state.cfg.queue_cap,
            state.cfg.max_inflight_bytes
        );

        loop {
            if signal::triggered() {
                state.draining.store(true, Ordering::SeqCst);
            }
            if state.draining.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let (lock, cvar) = &*queue;
                    let mut q = lock.lock().unwrap();
                    if q.len() >= state.cfg.queue_cap {
                        drop(q);
                        sheds.inc();
                        // O(1) handoff: the shedder thread reads the
                        // request (avoiding a reset racing the response)
                        // and answers 429 off the accept path.
                        let (slock, scvar) = &*shed_queue;
                        let mut sq = slock.lock().unwrap();
                        if sq.len() < SHED_BACKLOG_CAP {
                            sq.push_back(stream);
                            drop(sq);
                            scvar.notify_one();
                        }
                    } else {
                        q.push_back((stream, Instant::now()));
                        depth_gauge.set(q.len() as i64);
                        drop(q);
                        cvar.notify_one();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    kgtosa_obs::info!("serve: accept error: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }

        // Stop taking connections *now*; queued work still drains below.
        drop(listener);
        kgtosa_obs::info!("serve: draining ({} queued)", queue.0.lock().unwrap().len());
        queue.1.notify_all();
        shed_queue.1.notify_all();
        for w in workers {
            let _ = w.join();
        }
        let _ = shedder.join();
        depth_gauge.set(0);

        let report = DrainReport {
            served: requests.get() - served0,
            sheds: sheds.get() - sheds0,
            handler_panics: panics.get() - panics0,
            deadline_expired: expired.get() - expired0,
        };
        kgtosa_obs::info!(
            "serve: drained — {} served, {} shed, {} panics caught, {} deadline-expired",
            report.served,
            report.sheds,
            report.handler_panics,
            report.deadline_expired
        );
        Ok(report)
    }
}

fn worker_loop(state: Arc<ServeState>, queue: Queue) {
    let (lock, cvar) = &*queue;
    loop {
        let job = {
            let mut q = lock.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    kgtosa_obs::gauge("serve.queue_depth").set(q.len() as i64);
                    break Some(job);
                }
                if state.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = cvar.wait_timeout(q, Duration::from_millis(50)).unwrap();
                q = guard;
            }
        };
        match job {
            Some((stream, admitted)) => handle_stream(&state, stream, admitted),
            None => return,
        }
    }
}

/// One connection: read, charge the byte budget, dispatch, respond.
fn handle_stream(state: &ServeState, mut stream: TcpStream, admitted: Instant) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let req = match read_request(&mut stream, MAX_HEAD_BYTES, state.cfg.max_body_bytes) {
        Ok(req) => req,
        Err(RequestError::TooLarge) => {
            let _ = write_response(&mut stream, &HttpResponse::error(413, "request too large"));
            return;
        }
        Err(RequestError::Malformed(m)) => {
            let _ = write_response(&mut stream, &HttpResponse::error(400, format!("malformed request: {m}")));
            return;
        }
        // Peer vanished or socket error — nobody is listening for a reply.
        Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
    };

    let bytes = req.body.len();
    let now_inflight = state.inflight_bytes.fetch_add(bytes, Ordering::SeqCst) + bytes;
    kgtosa_obs::gauge("serve.inflight_bytes").set(now_inflight as i64);
    let response = if now_inflight > state.cfg.max_inflight_bytes {
        kgtosa_obs::counter("serve.sheds").inc();
        HttpResponse::error(429, "in-flight byte budget exceeded")
    } else {
        let resp = handle_guarded(state, &req, admitted);
        kgtosa_obs::counter("serve.requests").inc();
        resp
    };
    let after = state.inflight_bytes.fetch_sub(bytes, Ordering::SeqCst) - bytes;
    kgtosa_obs::gauge("serve.inflight_bytes").set(after as i64);
    let _ = write_response(&mut stream, &response);
}

/// Drains shed connections: reads the request (so closing the socket
/// after the reply does not reset it mid-flight) and answers `429`.
/// Runs on its own thread so the accept loop stays O(1) under flood.
fn shedder_loop(state: Arc<ServeState>, queue: ShedQueue) {
    let (lock, cvar) = &*queue;
    loop {
        let stream = {
            let mut q = lock.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if state.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = cvar.wait_timeout(q, Duration::from_millis(50)).unwrap();
                q = guard;
            }
        };
        let Some(mut stream) = stream else { return };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        let _ = read_request(&mut stream, MAX_HEAD_BYTES, state.cfg.max_body_bytes);
        let _ = write_response(
            &mut stream,
            &HttpResponse::error(429, "admission queue full"),
        );
    }
}
