//! `kgtosa serve` — an overload-safe extraction/inference daemon.
//!
//! Promotes the obs metrics listener into a long-lived service: it loads
//! one KG snapshot and a checkpoint registry at startup, then serves
//! concurrent `POST /extract` (task/pattern → TOSG, through the artifact
//! cache, page cache, retry, and circuit breaker) and `POST /infer`
//! (checkpoint fingerprint → frozen-model predictions), each request in
//! its own telemetry context.
//!
//! The robustness contract, end to end:
//!
//! - **Admission control** — bounded queue + in-flight byte budget; past
//!   either, requests are shed with `429` (`serve.sheds`) instead of
//!   letting latency collapse for everyone ([`daemon`]).
//! - **Deadline budgets** — each request carries a clamped deadline; time
//!   burned queueing is charged against it, and what remains caps the
//!   retry/fetch deadlines via `RetryPolicy::capped_to_budget`
//!   ([`handlers`]).
//! - **Circuit breaking** — consecutive endpoint giveups trip a shared
//!   deterministic breaker; while open, warm artifact-cache extractions
//!   are still answered, marked `"degraded": true`, and misses fail fast
//!   with `503` rather than queue behind a dead backend.
//! - **Panic isolation** — a panicking handler answers `500`
//!   (`serve.handler_panics`); the daemon keeps serving.
//! - **Graceful drain** — SIGTERM/SIGINT/`/admin/shutdown` stops
//!   admission at once, finishes (or deadline-cancels) queued work, joins
//!   the pool, and hands back a [`DrainReport`] so the caller can flush
//!   sinks and exit 0 ([`signal`], [`daemon`]).
//! - **Live updates** — `POST /admin/update` applies a checked triple
//!   delta: the KG epoch (store, adjacency, fingerprints, page cache) is
//!   rebuilt off to the side and swapped atomically, then stale artifact
//!   cache entries are incrementally repaired or invalidated while
//!   untouched ones migrate to the new fingerprint ([`update`],
//!   [`state::KgEpoch`]).

pub mod client;
pub mod config;
pub mod daemon;
pub mod handlers;
pub mod signal;
pub mod state;
pub mod update;

pub use client::HttpReply;
pub use config::ServeConfig;
pub use daemon::{DrainReport, Server};
pub use handlers::handle_guarded;
pub use state::{KgEpoch, ServeState};
